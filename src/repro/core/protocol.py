"""Common base classes for consensus process implementations.

:class:`DecidingProcess` adds the one-shot ``Decide(x)`` callback of the
consensus problem (Section 2.2) to a simulated process; the cluster
harness wires ``decision_hook`` so decisions land in the trace recorder.

:class:`ConsensusProcess` further binds a process to this paper's
protocol configuration and key registry; the baselines (PBFT, FaB, Paxos)
derive from :class:`DecidingProcess` directly with their own parameters.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..crypto.keys import KeyRegistry, Signer
from ..sim.process import Process
from ..sim.trace import ConsistencyViolation
from .config import ProtocolConfig

__all__ = ["DecidingProcess", "ConsensusProcess"]


class DecidingProcess(Process):
    """A process with an input value and a one-shot decision."""

    def __init__(self, pid: int, input_value: Any) -> None:
        super().__init__(pid)
        self.input_value = input_value
        self.decision_hook: Optional[Callable[[Any], None]] = None
        self._decided_value: Optional[Any] = None
        self._has_decided = False

    @property
    def decided(self) -> bool:
        return self._has_decided

    @property
    def decided_value(self) -> Any:
        return self._decided_value

    def decide(self, value: Any) -> None:
        """Trigger the one-shot ``Decide`` callback.

        Further calls with the same value are ignored (a process may keep
        assembling quorums after deciding); a different value indicates a
        protocol bug and raises immediately.
        """
        if self._has_decided:
            if self._decided_value != value:
                raise ConsistencyViolation(
                    f"process {self.pid} decided {self._decided_value!r} "
                    f"then {value!r}"
                )
            return
        self._has_decided = True
        self._decided_value = value
        if self.decision_hook is not None:
            self.decision_hook(value)
        self.on_decide(value)

    def on_decide(self, value: Any) -> None:
        """Subclass hook invoked once, after the decision is recorded."""


class ConsensusProcess(DecidingProcess):
    """A deciding process bound to this paper's (n, f, t) configuration."""

    def __init__(
        self,
        pid: int,
        config: ProtocolConfig,
        registry: KeyRegistry,
        input_value: Any,
    ) -> None:
        if pid not in config.process_ids:
            raise ValueError(f"pid {pid} not in 0..{config.n - 1}")
        super().__init__(pid, input_value)
        self.config = config
        self.registry = registry
        self.signer: Signer = registry.signer(pid)
