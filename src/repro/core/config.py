"""Protocol configuration: the (n, f, t) triple and derived quorum sizes.

The paper's protocols are parameterized by

* ``n`` — total number of processes,
* ``f`` — maximum number of Byzantine processes tolerated (resilience),
* ``t`` — fast-path threshold: the protocol decides in two message delays
  whenever the *actual* number of faults is at most ``t`` (1 <= t <= f).

The requirement is ``n >= max(3f + 2t - 1, 3f + 1)`` (Sections 3 and 3.4).
For ``t = f`` this is the vanilla ``n >= 5f - 1`` protocol; for ``t = 1`` it
is the optimally resilient ``n >= 3f + 1`` protocol that stays fast under a
single Byzantine fault.

``allow_sub_resilient=True`` lets the lower-bound experiments (E4)
instantiate the protocol *below* the bound, which is exactly how we
demonstrate Theorem 4.5 executably: the same adversary that is harmless at
``n = 3f + 2t - 1`` forces disagreement at ``n = 3f + 2t - 2``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .quorums import (
    commit_quorum,
    min_processes_fast_bft,
)

__all__ = [
    "DurabilityConfig",
    "MonitorConfig",
    "ProtocolConfig",
    "ReplicationConfig",
]

ProcessId = int


#: WAL backends understood by :func:`repro.storage.make_storage`.
WAL_BACKENDS = ("memory", "file")


@dataclass(frozen=True)
class DurabilityConfig:
    """Tuning knobs of the durability subsystem (``repro.storage``).

    * ``checkpoint_interval`` — slots between application-state
      checkpoints: after executing slot ``s`` with
      ``(s + 1) % interval == 0`` a replica snapshots its state machine
      and broadcasts a signed checkpoint vote; ``2f + 1`` matching votes
      make the checkpoint *stable*, after which the write-ahead log and
      the replica's execution/result caches are compacted up to it;
    * ``wal_backend`` — ``"memory"`` (deterministic in-simulation
      persistence: survives a crash, wiped by a disk-loss crash) or
      ``"file"`` (JSON-lines on real disk, for out-of-simulation
      restarts; requires ``wal_dir``);
    * ``wal_dir`` — directory for the file backend's WAL and checkpoint
      files;
    * ``catchup_retry`` — how long a recovering replica waits for
      catchup replies before re-broadcasting its request.
    """

    checkpoint_interval: int = 4
    wal_backend: str = "memory"
    wal_dir: Optional[str] = None
    catchup_retry: float = 20.0

    def __post_init__(self) -> None:
        if self.checkpoint_interval < 1:
            raise ValueError(
                f"checkpoint_interval must be >= 1, got {self.checkpoint_interval}"
            )
        if self.wal_backend not in WAL_BACKENDS:
            raise ValueError(
                f"unknown wal_backend {self.wal_backend!r}; "
                f"expected one of {WAL_BACKENDS}"
            )
        if self.wal_backend == "file" and not self.wal_dir:
            raise ValueError("wal_backend='file' requires wal_dir")
        if self.catchup_retry <= 0:
            raise ValueError(
                f"catchup_retry must be > 0, got {self.catchup_retry}"
            )

    def describe(self) -> str:
        return (
            f"interval={self.checkpoint_interval} backend={self.wal_backend} "
            f"retry={self.catchup_retry}"
        )


@dataclass(frozen=True)
class MonitorConfig:
    """Tuning knobs of the leader performance monitor (``repro.obs``).

    * ``window`` — span (simulated time) of the sliding windows over
      observed slot latency and local request queue delay;
    * ``degradation_ratio`` — mean slot latency above ``ratio *
      max(queue-delay baseline, min_drain)`` counts as a degraded
      leader and triggers a demotion vote;
    * ``min_drain`` — floor on the queue-delay baseline, so an idle
      replica (empty queue, baseline ~0) does not declare any nonzero
      latency degraded;
    * ``min_samples`` — latency observations required in the window
      before the detector may fire (no votes off one outlier);
    * ``cooldown`` — quiet period after casting a vote or applying a
      demotion; the anti-flapping guard alongside the adaptive
      baseline.
    """

    window: float = 30.0
    degradation_ratio: float = 4.0
    min_drain: float = 2.0
    min_samples: int = 3
    cooldown: float = 60.0

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ValueError(f"window must be > 0, got {self.window}")
        if self.degradation_ratio <= 1:
            raise ValueError(
                f"degradation_ratio must be > 1, got {self.degradation_ratio}"
            )
        if self.min_drain <= 0:
            raise ValueError(f"min_drain must be > 0, got {self.min_drain}")
        if self.min_samples < 1:
            raise ValueError(
                f"min_samples must be >= 1, got {self.min_samples}"
            )
        if self.cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {self.cooldown}")

    def describe(self) -> str:
        return (
            f"window={self.window} ratio={self.degradation_ratio} "
            f"min_samples={self.min_samples} cooldown={self.cooldown}"
        )


@dataclass(frozen=True)
class ReplicationConfig:
    """Tuning knobs of the SMR replication engine (``repro.smr``).

    * ``batch_size`` — maximum client commands packed into one slot's
      :class:`~repro.smr.replica.Batch` proposal;
    * ``batch_timeout`` — how long a replica may hold an under-full batch
      open waiting for more commands (``0`` proposes immediately, which
      preserves the single-command latency of the unbatched engine);
    * ``pipeline_depth`` — consensus instances a replica keeps in flight
      concurrently; execution stays strictly in slot order regardless;
    * ``max_slots`` — hard cap on the log length (runaway guard).
    """

    batch_size: int = 8
    batch_timeout: float = 0.0
    pipeline_depth: int = 4
    max_slots: int = 10_000

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.batch_timeout < 0:
            raise ValueError(
                f"batch_timeout must be >= 0, got {self.batch_timeout}"
            )
        if self.pipeline_depth < 1:
            raise ValueError(
                f"pipeline_depth must be >= 1, got {self.pipeline_depth}"
            )
        if self.max_slots < 1:
            raise ValueError(f"max_slots must be >= 1, got {self.max_slots}")

    def describe(self) -> str:
        return (
            f"batch={self.batch_size} timeout={self.batch_timeout} "
            f"depth={self.pipeline_depth}"
        )


@dataclass(frozen=True)
class ProtocolConfig:
    """Static parameters shared by every process in a deployment."""

    n: int
    f: int
    t: int = -1  # defaults to f (vanilla 5f - 1 protocol)
    allow_sub_resilient: bool = False

    def __post_init__(self) -> None:
        if self.t == -1:
            object.__setattr__(self, "t", self.f)
        if self.f < 1:
            raise ValueError(f"f must be >= 1, got {self.f}")
        if not (1 <= self.t <= self.f):
            raise ValueError(f"need 1 <= t <= f, got t={self.t}, f={self.f}")
        required = min_processes_fast_bft(self.f, self.t)
        if self.n < required and not self.allow_sub_resilient:
            raise ValueError(
                f"n={self.n} is below the bound max(3f+2t-1, 3f+1)={required} "
                f"for f={self.f}, t={self.t}; pass allow_sub_resilient=True "
                f"only for lower-bound experiments"
            )
        if self.n < self.f + 2:
            raise ValueError(f"n={self.n} too small to even run (f={self.f})")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    @property
    def process_ids(self) -> tuple:
        """All process ids, ``0 .. n-1``."""
        return tuple(range(self.n))

    def leader_of(self, view: int) -> ProcessId:
        """The agreed leader map: round-robin over process ids.

        The paper uses ``leader(v) = p_((v mod n)+1)``; with 0-based ids we
        use the equivalent rotation ``(v - 1) mod n`` so view 1 is led by
        process 0.
        """
        if view < 1:
            raise ValueError(f"views are numbered from 1, got {view}")
        return (view - 1) % self.n

    @property
    def vote_quorum(self) -> int:
        """Votes a new leader collects during view change: ``n - f``."""
        return self.n - self.f

    @property
    def ack_quorum(self) -> int:
        """Acks needed to decide in the vanilla protocol: ``n - f``."""
        return self.n - self.f

    @property
    def fast_quorum(self) -> int:
        """Acks needed for the generalized fast path: ``n - t``."""
        return self.n - self.t

    @property
    def cert_request_targets(self) -> int:
        """Processes the leader asks to certify its selection: ``2f + 1``."""
        return 2 * self.f + 1

    @property
    def cert_quorum(self) -> int:
        """CertAck signatures forming a progress certificate: ``f + 1``."""
        return self.f + 1

    @property
    def commit_quorum(self) -> int:
        """Signatures/commits for the slow path: ``ceil((n + f + 1) / 2)``."""
        return commit_quorum(self.n, self.f)

    @property
    def equivocation_vote_threshold(self) -> int:
        """Votes for one value (excluding the equivocator) that make it the
        unique safe choice: ``2f`` vanilla (Section 3.2), ``f + t``
        generalized (Appendix A.2)."""
        return 2 * self.f if self.t == self.f else self.f + self.t

    @property
    def is_vanilla(self) -> bool:
        """True when t = f, i.e. the Section 3 protocol with n >= 5f - 1."""
        return self.t == self.f

    @property
    def meets_bound(self) -> bool:
        """Whether n satisfies the paper's (tight) lower bound."""
        return self.n >= min_processes_fast_bft(self.f, self.t)

    def describe(self) -> str:
        return (
            f"n={self.n} f={self.f} t={self.t} "
            f"(vote_q={self.vote_quorum}, fast_q={self.fast_quorum}, "
            f"commit_q={self.commit_quorum})"
        )
