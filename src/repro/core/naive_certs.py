"""The *naive* progress-certificate scheme the paper argues against.

Section 3.2 discusses letting the certificate simply be the leader's vote
set: every verifier can re-check the signatures and re-run the selection
locally.  The problem is recursion — each vote embeds the certificate of
an earlier view, which embeds votes, which embed certificates... so the
serialized certificate grows without bound across view changes (linear in
the view number if shared sub-certificates are deduplicated, exponential
if they are not).

This module implements that scheme so experiment E7 can measure the
growth and contrast it with the bounded ``f + 1``-signature certificates
of :mod:`repro.core.certificates`.  The protocol engine switches schemes
via ``cert_scheme="naive"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Set, Tuple

from ..crypto.keys import KeyRegistry, Signature
from .config import ProtocolConfig
from .payloads import propose_payload, vote_payload
from .selection import selection_admits
from .votes import SignedVote, VoteRecord

__all__ = [
    "NaiveProgressCertificate",
    "naive_certificate_valid",
    "naive_signed_vote_valid",
    "naive_vote_record_valid",
    "certificate_signature_count",
    "certificate_distinct_signatures",
]


@dataclass(frozen=True)
class NaiveProgressCertificate:
    """A certificate that *is* the vote set that justified the selection."""

    value: Any
    view: int
    votes: Tuple[SignedVote, ...]

    def signing_fields(self) -> Tuple[Any, ...]:
        return (self.value, self.view, self.votes)

    def size_in_signatures(self) -> int:
        """Serialized size metric: every signature, counted with
        multiplicity (what actually goes on the wire without dedup)."""
        return certificate_signature_count(self)


def naive_certificate_valid(
    cert: Any,
    value: Any,
    view: int,
    registry: KeyRegistry,
    config: ProtocolConfig,
) -> bool:
    """Recursively validate a naive certificate for ``(value, view)``.

    The verifier checks the vote signatures, recursively validates the
    evidence inside each vote, and re-runs the selection algorithm to
    confirm it admits ``value`` — exactly the "simulate the selection
    process locally" idea from Section 3.2.
    """
    if view == 1:
        return cert is None
    if not isinstance(cert, NaiveProgressCertificate):
        return False
    if cert.value != value or cert.view != view:
        return False
    votes_map: Dict[int, SignedVote] = {}
    for signed in cert.votes:
        if signed.voter in votes_map:
            return False
        votes_map[signed.voter] = signed
    if len(votes_map) < config.vote_quorum:
        return False
    for signed in votes_map.values():
        if not naive_signed_vote_valid(signed, view, registry, config):
            return False
    return selection_admits(votes_map, value, config)


def naive_signed_vote_valid(
    signed: SignedVote,
    expected_view: int,
    registry: KeyRegistry,
    config: ProtocolConfig,
) -> bool:
    """Like :func:`repro.core.votes.signed_vote_valid`, with naive-scheme
    recursion into the vote's embedded certificate."""
    if signed.view != expected_view:
        return False
    if signed.phi.signer != signed.voter:
        return False
    if not registry.verify(signed.phi, vote_payload(signed.vote, signed.view)):
        return False
    if signed.vote is None:
        return True
    if signed.vote.view >= expected_view:
        return False
    return naive_vote_record_valid(signed.vote, registry, config)


def naive_vote_record_valid(
    vote: VoteRecord, registry: KeyRegistry, config: ProtocolConfig
) -> bool:
    expected_signer = config.leader_of(vote.view)
    if vote.tau.signer != expected_signer:
        return False
    if not registry.verify(vote.tau, propose_payload(vote.value, vote.view)):
        return False
    return naive_certificate_valid(
        vote.cert, vote.value, vote.view, registry, config
    )


# ----------------------------------------------------------------------
# Size metrics for experiment E7
# ----------------------------------------------------------------------

def certificate_signature_count(cert: Any) -> int:
    """Total signatures in a certificate, counted with multiplicity.

    This models the wire size of a certificate serialized without
    cross-reference sharing — the exponential blow-up the paper warns of.
    """
    if cert is None:
        return 0
    if isinstance(cert, NaiveProgressCertificate):
        total = 0
        for signed in cert.votes:
            total += 1  # phi
            if signed.vote is not None:
                total += 1  # tau
                total += certificate_signature_count(signed.vote.cert)
        return total
    # Bounded certificates expose their own metric.
    return cert.size_in_signatures()


def certificate_distinct_signatures(cert: Any) -> int:
    """Distinct signatures reachable from the certificate.

    This models a careful implementation that deduplicates shared
    sub-certificates — the paper's "linear with respect to the current
    view number" variant.
    """
    seen: Set[Signature] = set()
    _collect_signatures(cert, seen)
    return len(seen)


def _collect_signatures(cert: Any, seen: Set[Signature]) -> None:
    if cert is None:
        return
    if isinstance(cert, NaiveProgressCertificate):
        for signed in cert.votes:
            seen.add(signed.phi)
            if signed.vote is not None:
                seen.add(signed.vote.tau)
                _collect_signatures(signed.vote.cert, seen)
        return
    for sig in getattr(cert, "signatures", ()):  # bounded certificates
        seen.add(sig)
