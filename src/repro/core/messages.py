"""Wire messages of the fast Byzantine consensus protocol.

One frozen dataclass per message type from Figures 1a, 1b and 5:

* :class:`Propose` — leader's proposal (fast path, step 1);
* :class:`Ack` — acknowledgment broadcast by every accepting process
  (fast path, step 2);
* :class:`Vote` — a process's decision estimate sent to the new leader on
  view change;
* :class:`CertRequest` / :class:`CertAck` — the extra round-trip that
  produces a bounded progress certificate;
* :class:`AckSig` — the slow path's signed ack (``sig`` in Figure 5),
  sent alongside :class:`Ack` so signature generation never delays the
  fast path;
* :class:`Commit` — slow-path commit carrying a commit certificate.

Messages are plain values: hashable, comparable, canonically serializable
(via ``signing_fields``), and carried verbatim by the simulated network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from ..crypto.keys import Signature
from .certificates import CommitCertificate, ProgressCertificate
from .votes import SignedVote

__all__ = [
    "Propose",
    "Ack",
    "Vote",
    "CertRequest",
    "CertAck",
    "AckSig",
    "Commit",
]


@dataclass(frozen=True)
class Propose:
    """``propose(x, v, sigma, tau)`` — Section 3.1.

    ``cert`` is the progress certificate proving ``value`` safe in
    ``view`` (``None`` in view 1); ``tau`` is the leader's signature over
    ``(propose, value, view)``.
    """

    value: Any
    view: int
    cert: Optional[ProgressCertificate]
    tau: Signature

    def signing_fields(self) -> Tuple[Any, ...]:
        return (self.value, self.view, self.cert, self.tau)


@dataclass(frozen=True)
class Ack:
    """``ack(x, v)`` — broadcast on accepting a proposal; ``n - f`` of
    these (``n - t`` on the generalized fast path) decide the value."""

    value: Any
    view: int

    def signing_fields(self) -> Tuple[Any, ...]:
        return (self.value, self.view)


@dataclass(frozen=True)
class Vote:
    """``vote(vote_q, phi)`` — sent to the leader of the new view."""

    signed: SignedVote

    def signing_fields(self) -> Tuple[Any, ...]:
        return (self.signed,)

    @property
    def view(self) -> int:
        return self.signed.view


@dataclass(frozen=True)
class CertRequest:
    """``CertReq(x, votes)`` — the leader exhibits its vote set and asks
    for confirmation that selecting ``value`` was correct."""

    value: Any
    view: int
    votes: Tuple[SignedVote, ...]

    def signing_fields(self) -> Tuple[Any, ...]:
        return (self.value, self.view, self.votes)


@dataclass(frozen=True)
class CertAck:
    """``CertAck(phi_ca)`` — a certifier's signature over
    ``(certack, x, v)``; ``f + 1`` of them form the progress certificate."""

    value: Any
    view: int
    phi: Signature

    def signing_fields(self) -> Tuple[Any, ...]:
        return (self.value, self.view, self.phi)


@dataclass(frozen=True)
class AckSig:
    """``sig(phi_ack)`` — Appendix A.1: signed ack for the slow path,
    sent as a separate message so the fast path is never delayed by
    signature generation."""

    value: Any
    view: int
    phi: Signature

    def signing_fields(self) -> Tuple[Any, ...]:
        return (self.value, self.view, self.phi)


@dataclass(frozen=True)
class Commit:
    """``Commit(x, v, cc)`` — Appendix A.1: broadcast once a commit
    certificate ``cc`` has been assembled; a commit quorum of these
    decides ``x`` on the slow path."""

    value: Any
    view: int
    cert: CommitCertificate

    def signing_fields(self) -> Tuple[Any, ...]:
        return (self.value, self.view, self.cert)
