"""Progress and commit certificates.

A *progress certificate* (Section 3.2) proves that a value is safe in a
view: ``f + 1`` signatures over ``(CertAck, x, v)`` from distinct
processes.  Since at most ``f`` processes are Byzantine, at least one
signer is correct and verified the leader's selection before signing.
Crucially its size is *bounded* — independent of the view number — which
is the point of the extra round-trip in the view change (experiment E7
contrasts this with the naive, unbounded scheme in
:mod:`repro.core.naive_certs`).

A *commit certificate* (Appendix A.1) backs the generalized protocol's
slow path: ``ceil((n + f + 1) / 2)`` signatures over ``(ack, x, v)``.

A *checkpoint certificate* is not in the paper: it backs the durability
subsystem (``repro.storage``).  ``2f + 1`` signatures over
``(checkpoint, slot, digest)`` prove that a quorum of replicas executed
every slot up to ``slot`` and arrived at application state ``digest`` —
which is what makes compacting the write-ahead log below ``slot`` safe,
and what lets a recovering replica trust a checkpoint handed to it by a
single (possibly Byzantine) peer during catchup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, Optional, Tuple

from ..crypto.keys import KeyRegistry, Signature
from .payloads import ack_payload, certack_payload, checkpoint_payload

__all__ = [
    "ProgressCertificate",
    "CommitCertificate",
    "CheckpointCertificate",
    "progress_certificate_valid",
    "commit_certificate_valid",
    "checkpoint_certificate_valid",
]


@dataclass(frozen=True)
class ProgressCertificate:
    """``f + 1`` CertAck signatures certifying ``value`` is safe in ``view``."""

    value: Any
    view: int
    signatures: Tuple[Signature, ...]

    def signing_fields(self) -> Tuple[Any, ...]:
        return (self.value, self.view, tuple(sorted(
            (s.signer, s.digest) for s in self.signatures
        )))

    @property
    def signers(self) -> FrozenSet[int]:
        return frozenset(sig.signer for sig in self.signatures)

    def size_in_signatures(self) -> int:
        """Certificate size metric used by experiment E7."""
        return len(self.signatures)

    def verify(self, registry: KeyRegistry, cert_quorum: int) -> bool:
        """Check the certificate: enough *distinct* valid signers."""
        if len(self.signers) < cert_quorum:
            return False
        payload = certack_payload(self.value, self.view)
        return registry.verify_all(self.signatures, payload)


@dataclass(frozen=True)
class CommitCertificate:
    """``ceil((n + f + 1) / 2)`` ack signatures: slow-path commit evidence."""

    value: Any
    view: int
    signatures: Tuple[Signature, ...]

    def signing_fields(self) -> Tuple[Any, ...]:
        return (self.value, self.view, tuple(sorted(
            (s.signer, s.digest) for s in self.signatures
        )))

    @property
    def signers(self) -> FrozenSet[int]:
        return frozenset(sig.signer for sig in self.signatures)

    def size_in_signatures(self) -> int:
        return len(self.signatures)

    def verify(self, registry: KeyRegistry, commit_quorum: int) -> bool:
        if len(self.signers) < commit_quorum:
            return False
        payload = ack_payload(self.value, self.view)
        return registry.verify_all(self.signatures, payload)


@dataclass(frozen=True)
class CheckpointCertificate:
    """``2f + 1`` checkpoint-vote signatures over ``(slot, digest)``.

    At most ``f`` signers are Byzantine, so at least ``f + 1`` correct
    replicas vouch for the state digest — a recovering replica may adopt
    a certified checkpoint from a single responder (after re-hashing the
    accompanying state against ``digest``) without cross-checking.
    """

    slot: int
    digest: str
    signatures: Tuple[Signature, ...]

    def signing_fields(self) -> Tuple[Any, ...]:
        return (self.slot, self.digest, tuple(sorted(
            (s.signer, s.digest) for s in self.signatures
        )))

    @property
    def signers(self) -> FrozenSet[int]:
        return frozenset(sig.signer for sig in self.signatures)

    def size_in_signatures(self) -> int:
        return len(self.signatures)

    def verify(self, registry: KeyRegistry, checkpoint_quorum: int) -> bool:
        if len(self.signers) < checkpoint_quorum:
            return False
        payload = checkpoint_payload(self.slot, self.digest)
        return registry.verify_all(self.signatures, payload)


def progress_certificate_valid(
    cert: Optional[ProgressCertificate],
    value: Any,
    view: int,
    registry: KeyRegistry,
    cert_quorum: int,
) -> bool:
    """Validity of the certificate attached to a proposal or vote.

    In view 1 any value is safe by convention, so the certificate must be
    (and is allowed to be) absent.  In later views the certificate must
    match ``(value, view)`` and carry ``cert_quorum`` valid distinct
    signatures.
    """
    if view == 1:
        return cert is None
    if cert is None:
        return False
    if cert.value != value or cert.view != view:
        return False
    return cert.verify(registry, cert_quorum)


def commit_certificate_valid(
    cert: Optional[CommitCertificate],
    registry: KeyRegistry,
    commit_quorum: int,
) -> bool:
    """Validity of a commit certificate (any value/view it claims)."""
    if cert is None:
        return False
    return cert.verify(registry, commit_quorum)


def checkpoint_certificate_valid(
    cert: Optional[CheckpointCertificate],
    slot: int,
    digest: str,
    registry: KeyRegistry,
    checkpoint_quorum: int,
) -> bool:
    """Validity of a checkpoint certificate for exactly ``(slot, digest)``.

    The claimed slot and digest must match what the certificate's
    signatures actually cover, and ``checkpoint_quorum`` distinct valid
    signers must back it.
    """
    if cert is None:
        return False
    if cert.slot != slot or cert.digest != digest:
        return False
    return cert.verify(registry, checkpoint_quorum)
