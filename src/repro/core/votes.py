"""Votes: the per-process decision estimates exchanged during view change.

Each process ``q`` maintains ``vote_q = (x, u, sigma, tau)`` — value, view,
progress certificate, and the proposing leader's signature (Section 3.2).
Initially the vote is *nil* (modelled as ``None``).  In the generalized
protocol a vote additionally carries the latest commit certificate the
process has collected (Appendix A.2).

On entering view ``v`` a process sends ``vote(vote_q, phi)`` to the new
leader, where ``phi = sign_q((vote, vote_q, v))``; the leader (and later
every certifier re-checking the leader's selection) validates votes with
:func:`signed_vote_valid`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from ..crypto.keys import KeyRegistry, Signature
from .certificates import (
    CommitCertificate,
    ProgressCertificate,
    commit_certificate_valid,
    progress_certificate_valid,
)
from .config import ProtocolConfig
from .payloads import propose_payload, vote_payload

__all__ = ["VoteRecord", "SignedVote", "vote_record_valid", "signed_vote_valid"]


@dataclass(frozen=True)
class VoteRecord:
    """A non-nil vote: "value ``value`` in view ``view``" plus evidence.

    ``cert`` is the progress certificate from the proposal the voter
    acknowledged (``None`` exactly when ``view == 1``); ``tau`` is
    ``sign_{leader(view)}((propose, value, view))``.  ``commit_cert`` is
    the voter's latest collected commit certificate (generalized protocol
    only; ``None`` in the vanilla protocol).
    """

    value: Any
    view: int
    cert: Optional[ProgressCertificate]
    tau: Signature
    commit_cert: Optional[CommitCertificate] = None

    def signing_fields(self) -> Tuple[Any, ...]:
        return (self.value, self.view, self.cert, self.tau, self.commit_cert)


@dataclass(frozen=True)
class SignedVote:
    """A vote message as received by the leader of ``view``.

    ``vote`` is ``None`` for a nil vote.  ``phi`` is the voter's signature
    over ``(vote, vote, view)`` and authenticates both nil and non-nil
    votes — a Byzantine process cannot claim someone else voted nil.
    """

    voter: int
    vote: Optional[VoteRecord]
    view: int
    phi: Signature

    def signing_fields(self) -> Tuple[Any, ...]:
        return (self.voter, self.vote, self.view, self.phi)

    @property
    def is_nil(self) -> bool:
        return self.vote is None


def vote_record_valid(
    vote: VoteRecord, registry: KeyRegistry, config: ProtocolConfig
) -> bool:
    """Check a non-nil vote's evidence.

    Valid iff ``tau`` is ``leader(vote.view)``'s signature over
    ``(propose, value, view)`` and ``cert`` is a valid progress
    certificate for ``(value, view)`` (absent exactly for view 1).  A
    carried commit certificate, if any, must itself verify.
    """
    expected_signer = config.leader_of(vote.view)
    if vote.tau.signer != expected_signer:
        return False
    if not registry.verify(vote.tau, propose_payload(vote.value, vote.view)):
        return False
    if not progress_certificate_valid(
        vote.cert, vote.value, vote.view, registry, config.cert_quorum
    ):
        return False
    if vote.commit_cert is not None and not commit_certificate_valid(
        vote.commit_cert, registry, config.commit_quorum
    ):
        return False
    return True


def signed_vote_valid(
    signed: SignedVote,
    expected_view: int,
    registry: KeyRegistry,
    config: ProtocolConfig,
) -> bool:
    """Full validity check used by the leader and by certifiers.

    The envelope signature must bind voter, vote and the view the vote was
    cast *for*; a nil vote is valid on its own, a non-nil vote must carry
    valid evidence (:func:`vote_record_valid`).
    """
    if signed.view != expected_view:
        return False
    if signed.phi.signer != signed.voter:
        return False
    if not registry.verify(signed.phi, vote_payload(signed.vote, signed.view)):
        return False
    if signed.vote is None:
        return True
    if signed.vote.view >= expected_view:
        # A vote can only reference a proposal from an earlier view.
        return False
    return vote_record_valid(signed.vote, registry, config)
