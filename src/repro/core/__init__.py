"""The paper's contribution: fast Byzantine consensus with n = 5f - 1
(vanilla, Section 3) and n = 3f + 2t - 1 (generalized, Appendix A).
"""

from .certificates import (
    CommitCertificate,
    ProgressCertificate,
    commit_certificate_valid,
    progress_certificate_valid,
)
from .config import ProtocolConfig, ReplicationConfig
from .fastbft import FastBFTProcess, FBFTBase
from .generalized import GeneralizedFBFTProcess
from .messages import Ack, AckSig, CertAck, CertRequest, Commit, Propose, Vote
from .naive_certs import (
    NaiveProgressCertificate,
    certificate_distinct_signatures,
    certificate_signature_count,
)
from .quorums import (
    all_qi_hold,
    min_processes_disjoint_roles,
    min_processes_fab,
    min_processes_fast_bft,
    min_processes_paxos_crash,
    min_processes_pbft,
    qi1_holds,
    qi2_holds,
    qi3_holds,
    quorum_report,
)
from .selection import (
    AnyValueSafe,
    NeedMoreVotes,
    Selected,
    detect_equivocation,
    run_selection,
    selection_admits,
)
from .votes import SignedVote, VoteRecord, signed_vote_valid, vote_record_valid

__all__ = [
    "Ack",
    "AckSig",
    "AnyValueSafe",
    "CertAck",
    "CertRequest",
    "Commit",
    "CommitCertificate",
    "FBFTBase",
    "FastBFTProcess",
    "GeneralizedFBFTProcess",
    "NaiveProgressCertificate",
    "NeedMoreVotes",
    "ProgressCertificate",
    "Propose",
    "ProtocolConfig",
    "ReplicationConfig",
    "Selected",
    "SignedVote",
    "Vote",
    "VoteRecord",
    "all_qi_hold",
    "certificate_distinct_signatures",
    "certificate_signature_count",
    "commit_certificate_valid",
    "detect_equivocation",
    "min_processes_disjoint_roles",
    "min_processes_fab",
    "min_processes_fast_bft",
    "min_processes_paxos_crash",
    "min_processes_pbft",
    "progress_certificate_valid",
    "qi1_holds",
    "qi2_holds",
    "qi3_holds",
    "quorum_report",
    "run_selection",
    "selection_admits",
    "signed_vote_valid",
    "vote_record_valid",
]
