"""The selection algorithm: choosing a safe value during view change.

This is the core novelty of the paper (Section 3.2 and Appendix A.2).  A
new leader collects ``n - f`` valid votes and must pick a value that is
*safe* — no other value was or will be decided in a smaller view.

The interesting case is *equivocation*: two valid votes carry different
values for the same (maximal) view ``w``.  Both carry ``leader(w)``'s
signature, which is undeniable proof that ``leader(w)`` is Byzantine.
The leader then re-collects ``n - f`` votes **excluding the equivocator**
— the trick that buys the two-process resilience improvement over FaB
Paxos, and the reason the bound only drops when proposers are also
acceptors (Section 4.4).  With the equivocator excluded, at most ``f - 1``
Byzantine votes remain, so (QI2)/(QI3) make a ``2f``-vote threshold
(``f + t`` in the generalized protocol) sufficient evidence that a value
may have been decided.

The algorithm is implemented as a *pure, deterministic* function of the
vote set so that certifiers can re-run it verbatim when checking a
``CertReq`` (:func:`selection_admits`): the leader cannot lie about the
outcome without at least one correct certifier noticing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Mapping, Optional, Tuple, Union

from .config import ProtocolConfig
from .votes import SignedVote

__all__ = [
    "Selected",
    "AnyValueSafe",
    "NeedMoreVotes",
    "SelectionOutcome",
    "run_selection",
    "selection_admits",
    "detect_equivocation",
]


@dataclass(frozen=True)
class Selected:
    """Exactly this value must be proposed."""

    value: Any
    rationale: str
    excluded: FrozenSet[int] = frozenset()


@dataclass(frozen=True)
class AnyValueSafe:
    """Any value is safe in the new view; the leader proposes its own input."""

    rationale: str
    excluded: FrozenSet[int] = frozenset()


@dataclass(frozen=True)
class NeedMoreVotes:
    """Not enough usable votes yet (e.g. after excluding a proven
    equivocator); the leader must keep collecting and re-run."""

    excluded: FrozenSet[int]
    rationale: str


SelectionOutcome = Union[Selected, AnyValueSafe, NeedMoreVotes]


def detect_equivocation(
    votes: Mapping[int, SignedVote], view: int
) -> Optional[Tuple[SignedVote, SignedVote]]:
    """Return a pair of valid votes proving equivocation in ``view``.

    Two non-nil votes for different values in the same view ``view`` can
    only coexist if ``leader(view)`` signed both proposals — undeniable
    misbehaviour evidence ``gamma = (m1, m2)`` from Section 3.2.
    """
    seen: Dict[Any, SignedVote] = {}
    for signed in votes.values():
        if signed.vote is None or signed.vote.view != view:
            continue
        other = seen.get(signed.vote.value)
        if other is None:
            seen[signed.vote.value] = signed
    values = list(seen.values())
    if len(values) >= 2:
        return values[0], values[1]
    return None


def run_selection(
    votes: Mapping[int, SignedVote],
    config: ProtocolConfig,
    exclude_equivocator: bool = True,
) -> SelectionOutcome:
    """Run the selection algorithm on a set of *already validated* votes.

    ``votes`` maps voter id to its signed vote; the caller is responsible
    for having checked :func:`~repro.core.votes.signed_vote_valid` on each
    entry (the certifier does the same before re-running this function).

    The loop structure mirrors the paper: compute the maximal vote view
    ``w``; if a single value is voted at ``w`` select it; on equivocation
    exclude ``leader(w)`` and restart over the remaining votes (demanding
    ``n - f`` of them), falling back to the threshold rule and finally to
    "any value safe".

    ``exclude_equivocator=False`` disables the paper's key trick (the
    ablation of experiment E11): the proven equivocator's own vote is
    kept in the pool, at most ``f`` (not ``f - 1``) of the counted votes
    may be Byzantine, and the ``2f``/``f + t`` thresholds are no longer
    sound at ``n = 3f + 2t - 1`` — the splice adversary then wins *at*
    the bound, which is exactly why FaB-style protocols (whose proposer
    is not an acceptor and thus cannot be excluded) need two more
    processes (Section 4.4).
    """
    excluded: set[int] = set()
    while True:
        pool = {pid: sv for pid, sv in votes.items() if pid not in excluded}
        if len(pool) < config.vote_quorum:
            return NeedMoreVotes(
                excluded=frozenset(excluded),
                rationale=(
                    f"have {len(pool)} usable votes, need {config.vote_quorum} "
                    f"(excluding {sorted(excluded)})"
                ),
            )
        non_nil = [sv for sv in pool.values() if sv.vote is not None]
        if not non_nil:
            # Lemma 3.1: n - f nil votes imply nothing was decided earlier.
            return AnyValueSafe(
                rationale="all votes nil", excluded=frozenset(excluded)
            )
        w = max(sv.vote.view for sv in non_nil)
        at_w = [sv for sv in non_nil if sv.vote.view == w]
        values_at_w = {sv.vote.value for sv in at_w}
        if len(values_at_w) == 1:
            # Lemma 3.3: unique value at the maximal view is safe.
            return Selected(
                value=at_w[0].vote.value,
                rationale=f"unique value at max view {w}",
                excluded=frozenset(excluded),
            )
        # Equivocation: leader(w) provably Byzantine (Section 3.2).
        equivocator = config.leader_of(w)
        if exclude_equivocator and equivocator not in excluded:
            excluded.add(equivocator)
            continue  # restart, possibly demanding one more vote
        # leader(w) is already excluded, yet two values survive at view w:
        # votes from processes that *adopted* the equivocating proposals.
        return _resolve_equivocation(pool, w, frozenset(excluded), config)


def _resolve_equivocation(
    pool: Mapping[int, SignedVote],
    w: int,
    excluded: FrozenSet[int],
    config: ProtocolConfig,
) -> SelectionOutcome:
    """Cases (1)-(3) once the equivocator's own vote is excluded."""
    at_w = [sv for sv in pool.values() if sv.vote is not None and sv.vote.view == w]

    if not config.is_vanilla:
        # Generalized case (1): a commit certificate for (x, w) pins x.
        for sv in pool.values():
            cc = sv.vote.commit_cert if sv.vote is not None else None
            if cc is not None and cc.view == w:
                return Selected(
                    value=cc.value,
                    rationale=f"commit certificate for view {w}",
                    excluded=excluded,
                )

    # Vanilla case (1) / generalized case (2): enough votes for one value.
    threshold = config.equivocation_vote_threshold
    counts: Dict[Any, int] = {}
    for sv in at_w:
        counts[sv.vote.value] = counts.get(sv.vote.value, 0) + 1
    winners = [value for value, count in counts.items() if count >= threshold]
    if winners:
        # With exactly n - f votes (the paper's setting) at most one value
        # can reach the threshold (2*threshold > n - f).  A leader may
        # exhibit more votes, where a tie is possible — but only when
        # *neither* value was decided (a decided value's rival can never
        # reach the threshold among genuine votes), so any deterministic
        # pick is safe.  Order by count, then canonical serialization, so
        # leader and certifiers agree independent of dict order.
        from ..crypto.keys import canonical_bytes

        winner = max(winners, key=lambda v: (counts[v], canonical_bytes(v)))
        return Selected(
            value=winner,
            rationale=(
                f"{counts[winner]} >= {threshold} votes at view {w} "
                f"excluding equivocator"
            ),
            excluded=excluded,
        )

    # Vanilla case (2) / generalized case (3): nothing can have been
    # decided in any view < v (Lemma 3.5 / Appendix A.3 case 3).
    return AnyValueSafe(
        rationale=(
            f"equivocation at view {w}, no value reached "
            f"{threshold} votes"
        ),
        excluded=excluded,
    )


def selection_admits(
    votes: Mapping[int, SignedVote],
    value: Any,
    config: ProtocolConfig,
    exclude_equivocator: bool = True,
) -> bool:
    """Would an honest run of the selection algorithm permit proposing
    ``value`` given exactly this vote set?

    This is the certifier's check before signing a ``CertAck``
    (Section 3.2, "creating the progress certificate"): re-run the
    deterministic selection and accept iff the outcome forces ``value`` or
    declares every value safe.
    """
    outcome = run_selection(votes, config, exclude_equivocator)
    if isinstance(outcome, Selected):
        return outcome.value == value
    if isinstance(outcome, AnyValueSafe):
        return True
    return False
