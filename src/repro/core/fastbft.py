"""The fast Byzantine consensus protocol of Section 3 (n >= 5f - 1).

:class:`FBFTBase` implements the complete machinery — fast path, view
change with the two-phase certificate construction, and (optionally) the
Appendix-A slow path — parameterized by :class:`ProtocolConfig`.

:class:`FastBFTProcess` is the vanilla Section-3 protocol: ``t = f``,
``n >= 5f - 1``, no slow path.  The generalized protocol lives in
:mod:`repro.core.generalized`.

Message flow (Figure 1):

* fast path — ``leader: propose(x, v, sigma, tau)`` → everyone validates,
  adopts the vote, broadcasts ``ack(x, v)``; anyone with ``n - t`` matching
  acks decides (``n - f`` in the vanilla protocol where t = f);
* view change — on entering view ``v``, send ``vote(vote_q, phi)`` to
  ``leader(v)``; the leader collects ``n - f`` valid votes, runs the
  selection algorithm (:mod:`repro.core.selection`), asks everyone to
  certify the outcome (``CertReq`` → ``f + 1`` × ``CertAck``), assembles
  the bounded progress certificate and proposes.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, List, Optional, Set, Tuple

from ..crypto.keys import KeyRegistry, Signature
from ..sync.synchronizer import Pacemaker, WishMessage
from .certificates import (
    CommitCertificate,
    ProgressCertificate,
    commit_certificate_valid,
    progress_certificate_valid,
)
from .config import ProtocolConfig
from .messages import Ack, AckSig, CertAck, CertRequest, Commit, Propose, Vote
from .payloads import ack_payload, certack_payload, propose_payload, vote_payload
from .protocol import ConsensusProcess
from .selection import AnyValueSafe, NeedMoreVotes, Selected, run_selection, selection_admits
from .votes import SignedVote, VoteRecord, signed_vote_valid

__all__ = ["FBFTBase", "FastBFTProcess"]

#: Default local timeout before suspecting the leader (simulated units;
#: must exceed the 2-delay fast path by a comfortable margin).
DEFAULT_BASE_TIMEOUT = 12.0


class FBFTBase(ConsensusProcess):
    """Complete protocol engine; see the module docstring."""

    #: Subclasses toggle the Appendix-A slow path.
    slow_path_enabled = False

    def __init__(
        self,
        pid: int,
        config: ProtocolConfig,
        registry: KeyRegistry,
        input_value: Any,
        pacemaker_enabled: bool = True,
        base_timeout: float = DEFAULT_BASE_TIMEOUT,
        cert_scheme: str = "bounded",
        exclude_equivocator: bool = True,
    ) -> None:
        super().__init__(pid, config, registry, input_value)
        if cert_scheme not in ("bounded", "naive"):
            raise ValueError(f"unknown cert_scheme {cert_scheme!r}")
        self.cert_scheme = cert_scheme
        #: The paper's equivocator-exclusion trick (Section 3.2).  Only
        #: disabled by the E11 ablation, which demonstrates that without
        #: it n = 5f - 1 is NOT safe.
        self.exclude_equivocator = exclude_equivocator
        self.view = 1
        #: vote_q from Section 3.2 — the adopted decision estimate.
        self.vote: Optional[VoteRecord] = None
        #: Latest commit certificate collected (generalized protocol).
        self.latest_commit_cert: Optional[CommitCertificate] = None
        #: Views in which we already acknowledged a proposal.
        self._acked_views: Set[int] = set()
        #: (value, view) -> senders of matching acks.
        self._acks: Dict[Tuple[Any, int], Set[int]] = {}
        #: (value, view) -> signer -> slow-path ack signature.
        self._ack_sigs: Dict[Tuple[Any, int], Dict[int, Signature]] = {}
        #: (value, view) pairs for which we already built+sent a commit.
        self._commits_sent: Set[Tuple[Any, int]] = set()
        #: (value, view) -> senders of valid Commit messages.
        self._commit_msgs: Dict[Tuple[Any, int], Set[int]] = {}
        # Leader state, reset on every view entry.
        self._lead_votes: Dict[int, SignedVote] = {}
        self._lead_selected: Any = None
        self._lead_certreq_sent = False
        self._lead_certacks: Dict[int, Signature] = {}
        self._lead_proposed = False
        #: Messages for views we have not entered yet.
        self._future: Dict[int, List[Tuple[int, Any]]] = {}
        self.pacemaker = Pacemaker(
            pid=pid,
            n=config.n,
            f=config.f,
            current_view=lambda: self.view,
            enter_view=self.enter_view,
            broadcast=self.broadcast,
            set_timer=lambda name, delay, cb: self.ctx.set_timer(name, delay, cb),
            cancel_timer=lambda name: self.ctx.cancel_timer(name),
            base_timeout=base_timeout,
            enabled=pacemaker_enabled,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def on_start(self) -> None:
        self.pacemaker.start()
        if self.config.leader_of(1) == self.pid:
            # View 1: any value is safe, the leader proposes its own input
            # with an empty certificate (Section 3.1).
            self._send_proposal(self.input_value, cert=None)

    def on_message(self, sender: int, payload: Any) -> None:
        if isinstance(payload, WishMessage):
            self.pacemaker.on_wish(sender, payload)
        elif isinstance(payload, Propose):
            self._with_view(sender, payload, payload.view, self._handle_propose)
        elif isinstance(payload, Ack):
            self._handle_ack(sender, payload)
        elif isinstance(payload, Vote):
            self._with_view(sender, payload, payload.view, self._handle_vote)
        elif isinstance(payload, CertRequest):
            self._with_view(sender, payload, payload.view, self._handle_certreq)
        elif isinstance(payload, CertAck):
            self._with_view(sender, payload, payload.view, self._handle_certack)
        elif isinstance(payload, AckSig):
            self._handle_ack_sig(sender, payload)
        elif isinstance(payload, Commit):
            self._handle_commit(sender, payload)
        # Unknown payloads are ignored (Byzantine noise).

    def _with_view(self, sender: int, payload: Any, view: int, handler) -> None:
        """Dispatch a view-tagged message: buffer future views, drop stale."""
        if view > self.view:
            self._future.setdefault(view, []).append((sender, payload))
            return
        if view < self.view:
            return
        handler(sender, payload)

    # ------------------------------------------------------------------
    # View entry (driven by the pacemaker or test harnesses)
    # ------------------------------------------------------------------

    def enter_view(self, view: int) -> None:
        """Advance to ``view`` and send our vote to its leader.

        A correct process's view never decreases; entering re-arms no
        protocol state except the per-view leader machinery.
        """
        if view <= self.view:
            return
        self.view = view
        self._lead_votes = {}
        self._lead_selected = None
        self._lead_certreq_sent = False
        self._lead_certacks = {}
        self._lead_proposed = False
        wire_vote = self._wire_vote()
        phi = self.signer.sign(vote_payload(wire_vote, view))
        signed = SignedVote(voter=self.pid, vote=wire_vote, view=view, phi=phi)
        leader = self.config.leader_of(view)
        if leader == self.pid:
            self._lead_votes[self.pid] = signed
        else:
            self.send(leader, Vote(signed=signed))
        # Replay messages buffered for this view; drop older buffers.
        for stale in [v for v in self._future if v < view]:
            del self._future[stale]
        for sender, payload in self._future.pop(view, []):
            self.on_message(sender, payload)
        if leader == self.pid:
            self._leader_try_select()

    def _wire_vote(self) -> Optional[VoteRecord]:
        """The vote as sent on the wire: in the generalized protocol it
        carries the latest collected commit certificate (Appendix A.2)."""
        if self.vote is None:
            return None
        if self.slow_path_enabled:
            return replace(self.vote, commit_cert=self.latest_commit_cert)
        return self.vote

    # ------------------------------------------------------------------
    # Fast path
    # ------------------------------------------------------------------

    def _send_proposal(self, value: Any, cert: Optional[Any]) -> None:
        tau = self.signer.sign(propose_payload(value, self.view))
        self.broadcast(Propose(value=value, view=self.view, cert=cert, tau=tau))

    def _handle_propose(self, sender: int, message: Propose) -> None:
        view = message.view
        leader = self.config.leader_of(view)
        if sender != leader or message.tau.signer != leader:
            return
        if view in self._acked_views:
            return  # only the first proposal per view is acknowledged
        if not self.registry.verify(
            message.tau, propose_payload(message.value, view)
        ):
            return
        if not self._proposal_cert_valid(message.cert, message.value, view):
            return
        # Adopt the vote *before* acknowledging (Section 3.2) — the order
        # the consistency proof depends on.
        self.vote = VoteRecord(
            value=message.value,
            view=view,
            cert=message.cert,
            tau=message.tau,
        )
        self._acked_views.add(view)
        self.broadcast(Ack(value=message.value, view=view))
        if self.slow_path_enabled:
            phi = self.signer.sign(ack_payload(message.value, view))
            self.broadcast(AckSig(value=message.value, view=view, phi=phi))

    def _proposal_cert_valid(self, cert: Any, value: Any, view: int) -> bool:
        if self.cert_scheme == "naive":
            from .naive_certs import naive_certificate_valid

            if view == 1:
                return cert is None
            return naive_certificate_valid(
                cert, value, view, self.registry, self.config
            )
        if cert is not None and not isinstance(cert, ProgressCertificate):
            return False
        return progress_certificate_valid(
            cert, value, view, self.registry, self.config.cert_quorum
        )

    def _handle_ack(self, sender: int, message: Ack) -> None:
        key = (message.value, message.view)
        senders = self._acks.setdefault(key, set())
        senders.add(sender)
        if len(senders) >= self.config.fast_quorum:
            self.decide(message.value)

    # ------------------------------------------------------------------
    # Slow path (Appendix A; enabled by the generalized subclass)
    # ------------------------------------------------------------------

    def _handle_ack_sig(self, sender: int, message: AckSig) -> None:
        if not self.slow_path_enabled:
            return
        if message.phi.signer != sender:
            return
        if not self.registry.verify(
            message.phi, ack_payload(message.value, message.view)
        ):
            return
        key = (message.value, message.view)
        sigs = self._ack_sigs.setdefault(key, {})
        sigs[sender] = message.phi
        if len(sigs) >= self.config.commit_quorum and key not in self._commits_sent:
            self._commits_sent.add(key)
            cert = CommitCertificate(
                value=message.value,
                view=message.view,
                signatures=tuple(sigs[s] for s in sorted(sigs)),
            )
            self._note_commit_cert(cert)
            self.broadcast(Commit(value=message.value, view=message.view, cert=cert))

    def _handle_commit(self, sender: int, message: Commit) -> None:
        if not self.slow_path_enabled:
            return
        cert = message.cert
        if cert.value != message.value or cert.view != message.view:
            return
        if not commit_certificate_valid(
            cert, self.registry, self.config.commit_quorum
        ):
            return
        self._note_commit_cert(cert)
        key = (message.value, message.view)
        senders = self._commit_msgs.setdefault(key, set())
        senders.add(sender)
        if len(senders) >= self.config.commit_quorum:
            self.decide(message.value)

    def _note_commit_cert(self, cert: CommitCertificate) -> None:
        """Track the latest (highest-view) commit certificate collected."""
        if (
            self.latest_commit_cert is None
            or cert.view > self.latest_commit_cert.view
        ):
            self.latest_commit_cert = cert

    # ------------------------------------------------------------------
    # View change: leader side
    # ------------------------------------------------------------------

    def _handle_vote(self, sender: int, message: Vote) -> None:
        if self.config.leader_of(message.view) != self.pid:
            return
        signed = message.signed
        if signed.voter != sender:
            return
        if not self._vote_valid(signed, message.view):
            return
        if sender not in self._lead_votes:
            self._lead_votes[sender] = signed
            self._leader_try_select()

    def _vote_valid(self, signed: SignedVote, view: int) -> bool:
        if self.cert_scheme == "naive":
            from .naive_certs import naive_signed_vote_valid

            return naive_signed_vote_valid(signed, view, self.registry, self.config)
        return signed_vote_valid(signed, view, self.registry, self.config)

    def _leader_try_select(self) -> None:
        """Run the selection algorithm once enough votes are in."""
        if self._lead_certreq_sent or self._lead_proposed:
            return
        if len(self._lead_votes) < self.config.vote_quorum:
            return
        outcome = run_selection(
            self._lead_votes, self.config, self.exclude_equivocator
        )
        if isinstance(outcome, NeedMoreVotes):
            return  # keep collecting; re-run on the next vote
        if isinstance(outcome, Selected):
            value = outcome.value
        else:
            assert isinstance(outcome, AnyValueSafe)
            value = self.input_value
        self._lead_selected = value
        votes = tuple(
            self._lead_votes[voter] for voter in sorted(self._lead_votes)
        )
        if self.cert_scheme == "naive":
            from .naive_certs import NaiveProgressCertificate

            cert = NaiveProgressCertificate(
                value=value, view=self.view, votes=votes
            )
            self._lead_proposed = True
            self._send_proposal(value, cert)
            return
        # Bounded scheme: ask for confirmation signatures (Section 3.2).
        # The paper requires contacting at least 2f + 1 processes; we
        # broadcast, which trivially covers that and tolerates silent ones.
        self._lead_certreq_sent = True
        self.broadcast(CertRequest(value=value, view=self.view, votes=votes))

    def _handle_certack(self, sender: int, message: CertAck) -> None:
        if self.config.leader_of(message.view) != self.pid:
            return
        if not self._lead_certreq_sent or self._lead_proposed:
            return
        if message.value != self._lead_selected:
            return
        if message.phi.signer != sender:
            return
        if not self.registry.verify(
            message.phi, certack_payload(message.value, message.view)
        ):
            return
        self._lead_certacks[sender] = message.phi
        if len(self._lead_certacks) >= self.config.cert_quorum:
            cert = ProgressCertificate(
                value=message.value,
                view=message.view,
                signatures=tuple(
                    self._lead_certacks[s] for s in sorted(self._lead_certacks)
                ),
            )
            self._lead_proposed = True
            self._send_proposal(message.value, cert)

    # ------------------------------------------------------------------
    # View change: certifier side
    # ------------------------------------------------------------------

    def _handle_certreq(self, sender: int, message: CertRequest) -> None:
        if sender != self.config.leader_of(message.view):
            return
        votes_map: Dict[int, SignedVote] = {}
        for signed in message.votes:
            if signed.voter in votes_map:
                return  # duplicate voter: malformed request
            votes_map[signed.voter] = signed
        if len(votes_map) < self.config.vote_quorum:
            return
        for signed in votes_map.values():
            if not self._vote_valid(signed, message.view):
                return
        if not selection_admits(
            votes_map, message.value, self.config, self.exclude_equivocator
        ):
            return
        phi = self.signer.sign(certack_payload(message.value, message.view))
        self.send(
            sender, CertAck(value=message.value, view=message.view, phi=phi)
        )


class FastBFTProcess(FBFTBase):
    """The vanilla Section-3 protocol: t = f, n >= 5f - 1, fast path only."""

    slow_path_enabled = False

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if not self.config.is_vanilla:
            raise ValueError(
                "FastBFTProcess is the vanilla t = f protocol; use "
                "GeneralizedFBFTProcess for t < f"
            )
