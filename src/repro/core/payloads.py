"""Canonical signing payloads for every signature in the protocol.

Each signature in the paper covers a tagged tuple; collecting the tag
constructors here guarantees signers and verifiers agree byte-for-byte and
that payloads of different message kinds can never collide.

Paper notation:

* ``tau   = sign_leader((propose, x, v))``   — Section 3.1
* ``phi_vote = sign_q((vote, vote_q, v))``   — Section 3.2
* ``phi_ca = sign_q((CertAck, x, v))``       — Section 3.2
* ``phi_ack = sign_q((ack, x, v))``          — Appendix A.1 (slow path)
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

__all__ = [
    "propose_payload",
    "vote_payload",
    "certack_payload",
    "ack_payload",
    "wish_payload",
    "checkpoint_payload",
    "demotion_payload",
]


def propose_payload(value: Any, view: int) -> Tuple[Any, ...]:
    """Payload of the leader's proposal signature ``tau``."""
    return ("propose", value, view)


def vote_payload(vote: Optional[Any], view: int) -> Tuple[Any, ...]:
    """Payload of a view-change vote signature ``phi_vote``.

    ``vote`` is a :class:`~repro.core.votes.VoteRecord` or ``None`` (nil).
    """
    return ("vote", vote, view)


def certack_payload(value: Any, view: int) -> Tuple[Any, ...]:
    """Payload of a certificate-acknowledgment signature ``phi_ca``."""
    return ("certack", value, view)


def ack_payload(value: Any, view: int) -> Tuple[Any, ...]:
    """Payload of a slow-path ack signature ``phi_ack`` (Appendix A)."""
    return ("ack", value, view)


def wish_payload(view: int) -> Tuple[Any, ...]:
    """Payload of a view-synchronizer wish (not in the paper's core, but
    the synchronizer is part of the model; see ``repro.sync``)."""
    return ("wish", view)


def checkpoint_payload(slot: int, digest: str) -> Tuple[Any, ...]:
    """Payload of a durability checkpoint vote (not in the paper's core:
    the SMR engine's checkpoint protocol, see ``repro.storage``).  The
    digest is the hex SHA-256 of the application state after executing
    every slot up to and including ``slot``."""
    return ("checkpoint", slot, digest)


def demotion_payload(view: int, target: int) -> Tuple[Any, ...]:
    """Payload of a leader-demotion vote (not in the paper's core: the
    performance monitor of ``repro.obs.monitor``).  ``target`` is the
    leader being demoted, ``view`` the view that replaces it."""
    return ("demote", view, target)
