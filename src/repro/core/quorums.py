"""Quorum arithmetic and the paper's three quorum-intersection properties.

Everything here is a pure function of (n, f, t), which makes this module
the executable form of the paper's counting arguments:

* minimum process counts for each protocol family (our protocol, FaB
  Paxos, PBFT, crash Paxos) — used by experiment E1;
* the properties (QI1), (QI2), (QI3) from Section 3.3 on which the
  consistency proof rests — property-tested in the suite and swept at the
  resilience boundary in experiment E4.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

__all__ = [
    "min_processes_fast_bft",
    "min_processes_fab",
    "min_processes_disjoint_roles",
    "min_processes_pbft",
    "min_processes_paxos_crash",
    "min_suspect_set",
    "one_correct",
    "majority_correct",
    "selection_threshold",
    "commit_quorum",
    "intersection_size",
    "guaranteed_correct_in_intersection",
    "qi1_holds",
    "qi2_holds",
    "qi3_holds",
    "all_qi_hold",
    "QuorumIntersectionReport",
    "quorum_report",
]


# ----------------------------------------------------------------------
# Minimum process counts (experiment E1)
# ----------------------------------------------------------------------

def min_processes_fast_bft(f: int, t: int) -> int:
    """This paper's protocol: ``max(3f + 2t - 1, 3f + 1)`` (Section 3.4).

    For t = f this is ``5f - 1``; for t = 1 it is ``3f + 1``, the optimum
    for any partially synchronous Byzantine consensus.
    """
    _check_ft(f, t)
    return max(3 * f + 2 * t - 1, 3 * f + 1)


def min_processes_fab(f: int, t: int) -> int:
    """FaB Paxos (Martin & Alvisi 2006): ``3f + 2t + 1``; ``5f + 1`` at t=f."""
    _check_ft(f, t)
    return 3 * f + 2 * t + 1


def min_processes_disjoint_roles(f: int, t: int) -> int:
    """Minimum *acceptors* when proposers are disjoint from acceptors:
    ``3f + 2t + 1`` (Section 4.4).

    The two-process saving of this paper hinges on the new leader
    excluding a proven equivocator from the vote count — possible only
    when the equivocating proposer *is* one of the acceptors.  With even
    one proposer outside the acceptor set, the modified Theorem 4.5
    argument (five acceptor groups, the middle three of size ``f``
    instead of ``f - 1``) shows ``3f + 2t`` acceptors are not enough, so
    FaB Paxos's ``3f + 2t + 1`` is optimal *for that model*.  Experiment
    E11's ablation demonstrates the same mechanism executably: disable
    the exclusion trick and ``3f + 2t - 1`` processes no longer suffice.
    """
    _check_ft(f, t)
    return 3 * f + 2 * t + 1


def min_processes_pbft(f: int) -> int:
    """PBFT (Castro & Liskov 1999): ``3f + 1`` — but 3 message delays."""
    if f < 0:
        raise ValueError("f must be >= 0")
    return 3 * f + 1


def min_processes_paxos_crash(f: int) -> int:
    """Crash-fault Paxos / Viewstamped Replication: ``2f + 1``, 2 delays."""
    if f < 0:
        raise ValueError("f must be >= 0")
    return 2 * f + 1


def min_suspect_set(t: int) -> int:
    """``2t + 2``: minimum size of the suspects set M in the weakened
    t-two-step definition (Section 4.3) — just enough for the
    lower-bound proof to pick two disjoint size-``t`` fault sets that
    avoid two distinguished processes."""
    if t < 0:
        raise ValueError("t must be >= 0")
    return 2 * t + 2


def _check_ft(f: int, t: int) -> None:
    if f < 1:
        raise ValueError(f"f must be >= 1, got {f}")
    if not (1 <= t <= f):
        raise ValueError(f"need 1 <= t <= f, got t={t}")


# ----------------------------------------------------------------------
# Quorum sizes
# ----------------------------------------------------------------------

def one_correct(f: int) -> int:
    """``f + 1``: the smallest set guaranteed to contain one correct
    process — matching replies/claims from this many distinct senders
    cannot all be forged (gossip adoption, client reply acceptance,
    catchup cross-checks)."""
    if f < 0:
        raise ValueError("f must be >= 0")
    return f + 1


def majority_correct(f: int) -> int:
    """``2f + 1``: any two such sets share a correct process, and each
    contains a correct majority — the checkpoint/demotion/pacemaker
    quorum used by the SMR layer."""
    if f < 0:
        raise ValueError("f must be >= 0")
    return 2 * f + 1


def commit_quorum(n: int, f: int) -> int:
    """Slow-path quorum ``ceil((n + f + 1) / 2)`` (Appendix A.1).

    Any two such quorums intersect in at least one correct process, and
    any such quorum intersects any fast quorum of ``n - t`` processes in
    at least one correct process.
    """
    return math.ceil((n + f + 1) / 2)


# ----------------------------------------------------------------------
# Intersection counting
# ----------------------------------------------------------------------

def intersection_size(n: int, q1: int, q2: int) -> int:
    """Minimum possible overlap of a ``q1``-set and a ``q2``-set of n ids."""
    return max(0, q1 + q2 - n)


def guaranteed_correct_in_intersection(
    n: int, q1: int, q2: int, byzantine_in_overlap: int
) -> int:
    """Lower bound on *correct* processes in any intersection of a
    ``q1``-set and a ``q2``-set when at most ``byzantine_in_overlap``
    members of the overlap can be Byzantine."""
    return max(0, intersection_size(n, q1, q2) - byzantine_in_overlap)


# ----------------------------------------------------------------------
# The paper's quorum-intersection properties (Section 3.3)
# ----------------------------------------------------------------------

def qi1_holds(n: int, f: int) -> bool:
    """(QI1) Any two ``n - f`` quorums share a correct process.

    Requires ``2(n - f) - n >= f + 1``, i.e. ``n >= 3f + 1``.
    """
    return guaranteed_correct_in_intersection(n, n - f, n - f, f) >= 1


def qi2_holds(n: int, f: int) -> bool:
    """(QI2) If Q1, Q2 are ``n - f`` quorums and Q2 holds at most ``f - 1``
    Byzantine processes, the overlap has at least ``2f`` correct processes.

    Requires ``2(n - f) - n >= (f - 1) + 2f``, i.e. ``n >= 5f - 1``.
    This is the property that lets a leader who has *proof* of one
    equivocator demand ``2f`` matching votes (Lemma 3.5).
    """
    return (
        guaranteed_correct_in_intersection(n, n - f, n - f, f - 1) >= 2 * f
    )


def qi3_holds(n: int, f: int) -> bool:
    """(QI3) An ``n - f`` quorum and a ``2f`` set with at most ``f - 1``
    Byzantine members share a correct process.

    Requires ``(n - f) + 2f - n >= f``, which holds whenever ``n >= 2f``.
    """
    return guaranteed_correct_in_intersection(n, n - f, 2 * f, f - 1) >= 1


def all_qi_hold(n: int, f: int) -> bool:
    """All three properties from Section 3.3 — equivalent to ``n >= 5f - 1``
    for ``f >= 1``."""
    return qi1_holds(n, f) and qi2_holds(n, f) and qi3_holds(n, f)


# ----------------------------------------------------------------------
# Generalized-protocol intersection facts (Appendix A.3)
# ----------------------------------------------------------------------

def selection_threshold(f: int, t: int) -> int:
    """``f + t``: the generalized protocol's vote-selection /
    equivocation threshold (Appendix A.3).  For the vanilla protocol
    (t = f) this is the familiar ``2f``."""
    _check_ft(f, t)
    return f + t


def generalized_fast_vote_overlap(n: int, f: int, t: int) -> int:
    """Minimum *correct* overlap between a fast quorum (``n - t`` ackers)
    and a view-change vote set (``n - f`` voters) given at most ``f - 1``
    Byzantine voters (the equivocator is excluded).

    Appendix A.3 case (3) shows this is at least ``f + t`` whenever
    ``n >= 3f + 2t - 1`` — which is exactly what makes the ``f + t``
    selection threshold sound.
    """
    return guaranteed_correct_in_intersection(n, n - t, n - f, f - 1)


def generalized_commit_overlaps(n: int, f: int, t: int) -> Tuple[int, int, int]:
    """Correct-overlap guarantees for the slow path (Lemma A.2 et al.):

    returns ``(commit_commit, commit_fast, commit_votes)`` — the minimum
    number of correct processes shared by two commit quorums, by a commit
    quorum and a fast quorum, and by a commit quorum and a vote set.
    """
    cq = commit_quorum(n, f)
    return (
        guaranteed_correct_in_intersection(n, cq, cq, f),
        guaranteed_correct_in_intersection(n, cq, n - t, f),
        guaranteed_correct_in_intersection(n, cq, n - f, f),
    )


# ----------------------------------------------------------------------
# Reporting (used by E1/E4 benchmarks)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class QuorumIntersectionReport:
    """All quorum facts for one (n, f, t) point."""

    n: int
    f: int
    t: int
    qi1: bool
    qi2: bool
    qi3: bool
    fast_vote_overlap: int
    commit_commit_overlap: int
    commit_fast_overlap: int
    meets_bound: bool

    @property
    def safe_vanilla(self) -> bool:
        return self.qi1 and self.qi2 and self.qi3

    @property
    def safe_generalized(self) -> bool:
        return (
            self.qi1
            and self.fast_vote_overlap >= self.f + self.t
            and self.commit_commit_overlap >= 1
            and self.commit_fast_overlap >= 1
        )


def quorum_report(n: int, f: int, t: int) -> QuorumIntersectionReport:
    cc, cf, _cv = generalized_commit_overlaps(n, f, t)
    return QuorumIntersectionReport(
        n=n,
        f=f,
        t=t,
        qi1=qi1_holds(n, f),
        qi2=qi2_holds(n, f),
        qi3=qi3_holds(n, f),
        fast_vote_overlap=generalized_fast_vote_overlap(n, f, t),
        commit_commit_overlap=cc,
        commit_fast_overlap=cf,
        meets_bound=n >= min_processes_fast_bft(f, t),
    )
