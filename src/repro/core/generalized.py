"""The generalized protocol (Section 3.4 + Appendix A): n >= 3f + 2t - 1.

Tolerates ``f`` Byzantine faults, decides in two message delays whenever
the actual number of faults is at most ``t``, and in three via the
PBFT-like slow path otherwise:

* fast path — decide on ``n - t`` matching acks;
* slow path — every ack is accompanied by a signed ``AckSig``;
  ``ceil((n + f + 1) / 2)`` of them form a commit certificate, which is
  broadcast in a ``Commit`` message; a commit quorum of valid ``Commit``
  messages decides.

With ``t = 1`` this is (to the paper's knowledge, the first) protocol
with optimal resilience ``n = 3f + 1`` that stays fast in the presence of
a single Byzantine fault.  With ``t = f`` it degenerates to the vanilla
``n >= 5f - 1`` protocol plus a slow path.
"""

from __future__ import annotations

from .fastbft import FBFTBase

__all__ = ["GeneralizedFBFTProcess"]


class GeneralizedFBFTProcess(FBFTBase):
    """Generalized fast Byzantine consensus with the Appendix-A slow path."""

    slow_path_enabled = True
