"""Byzantine behaviours and attack components."""

from .behaviors import (
    ByzantineForge,
    CrashAfter,
    EquivocatingLeader,
    ScriptedByzantine,
    ScriptedSend,
    SilentProcess,
)
from .splice import SpliceCompanion, SpliceViewTwoLeader

__all__ = [
    "ByzantineForge",
    "CrashAfter",
    "EquivocatingLeader",
    "ScriptedByzantine",
    "ScriptedSend",
    "SilentProcess",
    "SpliceCompanion",
    "SpliceViewTwoLeader",
]
