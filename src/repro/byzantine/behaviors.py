"""Byzantine behaviours: the adversary's toolbox.

A Byzantine process may send arbitrary messages — but only ones it can
actually produce: channels are authenticated (it cannot impersonate
others) and it holds only its own signing key (it cannot forge
signatures).  The classes here respect those limits by construction: they
are handed their own :class:`~repro.crypto.keys.Signer` and speak through
the ordinary process context.

* :class:`SilentProcess` — crashes immediately (sends nothing, ever);
* :class:`CrashAfter` — runs an honest protocol instance and stops at a
  chosen time (the failure mode of the lower bound's T-faulty executions);
* :class:`ScriptedByzantine` — replays a fixed schedule of sends;
* :class:`ByzantineForge` — helper that builds arbitrary (self-signed)
  protocol messages for scripts and tests;
* :class:`EquivocatingLeader` — proposes different values to different
  processes in its view (the misbehaviour at the heart of the paper's
  view-change analysis).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional, Sequence, Tuple

from ..crypto.keys import KeyRegistry, Signature
from ..core.certificates import CommitCertificate, ProgressCertificate
from ..core.config import ProtocolConfig
from ..core.messages import Ack, AckSig, CertAck, CertRequest, Propose, Vote
from ..core.payloads import (
    ack_payload,
    certack_payload,
    propose_payload,
    vote_payload,
)
from ..core.votes import SignedVote, VoteRecord
from ..sim.process import Process, ProcessContext
from ..sync.synchronizer import WishMessage

__all__ = [
    "SilentProcess",
    "CrashAfter",
    "ScriptedSend",
    "ScriptedByzantine",
    "ByzantineForge",
    "EquivocatingLeader",
]


class SilentProcess(Process):
    """A process that never takes a step — the simplest Byzantine failure."""

    def on_start(self) -> None:
        self.crash()


class CrashAfter(Process):
    """Run an honest protocol instance, then crash at ``crash_time``.

    The crash fires *before* any message delivery scheduled at the same
    instant (timers are scheduled at start, deliveries later), matching
    the lower bound's "correct through the first round, silent from time
    DELTA on" failure mode (Section 4.1, T-faulty executions).
    """

    def __init__(self, inner: Process, crash_time: float) -> None:
        super().__init__(inner.pid)
        if crash_time < 0:
            raise ValueError("crash_time must be >= 0")
        self.inner = inner
        self.crash_time = crash_time

    def attach(self, ctx: ProcessContext) -> None:
        super().attach(ctx)
        self.inner.attach(ctx)

    def on_start(self) -> None:
        self.ctx.set_timer("byz-crash", self.crash_time - self.ctx.now, self.crash)
        self.inner.on_start()

    def on_message(self, sender: int, payload: Any) -> None:
        self.inner.on_message(sender, payload)


@dataclass(frozen=True)
class ScriptedSend:
    """One step of a Byzantine script: at ``time`` send ``payload`` to
    every process in ``to``."""

    time: float
    to: Tuple[int, ...]
    payload: Any


class ScriptedByzantine(Process):
    """Replays a fixed schedule of sends and otherwise stays silent."""

    def __init__(self, pid: int, script: Sequence[ScriptedSend]) -> None:
        super().__init__(pid)
        self.script = list(script)

    def on_start(self) -> None:
        for index, step in enumerate(self.script):
            self.ctx.set_timer(
                f"script-{index}",
                step.time - self.ctx.now,
                lambda s=step: self._execute(s),
            )

    def _execute(self, step: ScriptedSend) -> None:
        for dst in step.to:
            self.send(dst, step.payload)


class ByzantineForge:
    """Build protocol messages a Byzantine process is *able* to produce.

    Everything is signed with the owner's key only; attempting to fake
    another process's signature is impossible by construction, which is
    exactly the power model of Section 2.1.
    """

    def __init__(self, pid: int, registry: KeyRegistry, config: ProtocolConfig):
        self.pid = pid
        self.registry = registry
        self.config = config
        self.signer = registry.signer(pid)

    # -- fast path ------------------------------------------------------

    def propose(
        self, value: Any, view: int, cert: Optional[ProgressCertificate] = None
    ) -> Propose:
        """A proposal signed by the owner (meaningful when the owner is
        ``leader(view)``; otherwise correct processes will drop it)."""
        tau = self.signer.sign(propose_payload(value, view))
        return Propose(value=value, view=view, cert=cert, tau=tau)

    def ack(self, value: Any, view: int) -> Ack:
        return Ack(value=value, view=view)

    def ack_sig(self, value: Any, view: int) -> AckSig:
        phi = self.signer.sign(ack_payload(value, view))
        return AckSig(value=value, view=view, phi=phi)

    # -- view change ----------------------------------------------------

    def vote_record(
        self,
        value: Any,
        view: int,
        cert: Optional[ProgressCertificate],
        tau: Signature,
        commit_cert: Optional[CommitCertificate] = None,
    ) -> VoteRecord:
        return VoteRecord(
            value=value, view=view, cert=cert, tau=tau, commit_cert=commit_cert
        )

    def signed_vote(self, vote: Optional[VoteRecord], view: int) -> SignedVote:
        phi = self.signer.sign(vote_payload(vote, view))
        return SignedVote(voter=self.pid, vote=vote, view=view, phi=phi)

    def nil_vote(self, view: int) -> SignedVote:
        """A (possibly lying) nil vote for ``view``."""
        return self.signed_vote(None, view)

    def vote_message(self, vote: Optional[VoteRecord], view: int) -> Vote:
        return Vote(signed=self.signed_vote(vote, view))

    def cert_request(
        self, value: Any, view: int, votes: Iterable[SignedVote]
    ) -> CertRequest:
        return CertRequest(value=value, view=view, votes=tuple(votes))

    def cert_ack(self, value: Any, view: int) -> CertAck:
        phi = self.signer.sign(certack_payload(value, view))
        return CertAck(value=value, view=view, phi=phi)

    def wish(self, view: int) -> WishMessage:
        return WishMessage(view=view)

    # -- forgery attempts (for negative tests) --------------------------

    def forged_propose_as(self, impostor_of: int, value: Any, view: int) -> Propose:
        """A proposal whose ``tau`` *claims* to be from another process but
        is produced with the owner's key.  Correct processes must reject
        it; tests use this to check verification paths."""
        tau = self.signer.sign(propose_payload(value, view))
        fake = Signature(signer=impostor_of, digest=tau.digest)
        return Propose(value=value, view=view, cert=None, tau=fake)


class EquivocatingLeader(Process):
    """A Byzantine leader that proposes different values to different
    processes in its view, and acknowledges its preferred value to a
    chosen subset.

    ``assignments`` maps destination pid -> proposed value.  Destinations
    missing from the map receive nothing (selective silence).  At
    ``ack_time`` the leader sends an ack for ``ack_value`` to every pid
    in ``ack_to``.
    """

    def __init__(
        self,
        pid: int,
        registry: KeyRegistry,
        config: ProtocolConfig,
        view: int,
        assignments: Dict[int, Any],
        ack_value: Any = None,
        ack_to: Tuple[int, ...] = (),
        ack_time: float = 1.0,
        wishes: Sequence[Tuple[float, int]] = (),
        extra_script: Sequence[ScriptedSend] = (),
    ) -> None:
        super().__init__(pid)
        self.forge = ByzantineForge(pid, registry, config)
        self.view = view
        self.assignments = dict(assignments)
        self.ack_value = ack_value
        self.ack_to = tuple(ack_to)
        self.ack_time = ack_time
        self.wishes = list(wishes)
        self.extra_script = list(extra_script)

    def on_start(self) -> None:
        proposals: Dict[Any, Propose] = {}
        for dst, value in self.assignments.items():
            if value not in proposals:
                proposals[value] = self.forge.propose(value, self.view)
            self.send(dst, proposals[value])
        if self.ack_to and self.ack_value is not None:
            self.ctx.set_timer(
                "byz-acks",
                self.ack_time - self.ctx.now,
                self._send_acks,
            )
        for index, (time, wish_view) in enumerate(self.wishes):
            self.ctx.set_timer(
                f"byz-wish-{index}",
                time - self.ctx.now,
                lambda v=wish_view: self.broadcast(self.forge.wish(v)),
            )
        for index, step in enumerate(self.extra_script):
            self.ctx.set_timer(
                f"byz-extra-{index}",
                step.time - self.ctx.now,
                lambda s=step: [self.send(dst, s.payload) for dst in s.to],
            )

    def _send_acks(self) -> None:
        ack = self.forge.ack(self.ack_value, self.view)
        for dst in self.ack_to:
            self.send(dst, ack)
