"""The splice adversary: Theorem 4.5 as runnable Byzantine processes.

The lower-bound proof (Figures 2-4) splices together executions in which
an equivocating influential process shows value ``x`` to one part of the
system and value ``y`` to another, and the Byzantine groups relay
whichever face of the equivocation keeps the two halves indistinguishable.

This module provides the two Byzantine roles the executable attack needs
(the full scenario is assembled in
:mod:`repro.lowerbound.splice_attack`):

* :class:`SpliceCompanion` — a Byzantine follower that (a) acknowledges
  the adversary's preferred value ``x`` towards the processes meant to
  decide it fast, (b) lies about its vote (claims nil) to the next
  leader, and (c) rubber-stamps any certificate request;
* :class:`SpliceViewTwoLeader` — a Byzantine leader of view 2 that
  searches the votes it receives for a subset of ``n - f`` votes under
  which the (honest, deterministic) selection algorithm *admits* the
  conflicting value ``y``, then drives the certificate round and proposes
  ``y``.  At ``n = 3f + 2t - 1`` no such subset exists — the selection
  threshold ``f + t`` (``2f`` vanilla) is always reached by ``x`` votes —
  so the attacker can only stay silent and the protocol stays safe; at
  ``n = 3f + 2t - 2`` the subset exists and consistency breaks.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..core.certificates import ProgressCertificate
from ..core.config import ProtocolConfig
from ..core.messages import CertAck, CertRequest, Propose, Vote
from ..core.payloads import certack_payload
from ..core.selection import selection_admits
from ..core.votes import SignedVote, signed_vote_valid
from ..crypto.keys import KeyRegistry
from ..sim.process import Process
from .behaviors import ByzantineForge

__all__ = ["SpliceCompanion", "SpliceViewTwoLeader"]


class SpliceCompanion(Process):
    """Byzantine follower assisting the equivocator (see module docstring)."""

    def __init__(
        self,
        pid: int,
        registry: KeyRegistry,
        config: ProtocolConfig,
        x_value: Any,
        x_group: Tuple[int, ...],
        leader_pid: int,
        ack_time: float,
        vote_time: float,
        wish_time: float,
    ) -> None:
        super().__init__(pid)
        self.forge = ByzantineForge(pid, registry, config)
        self.x_value = x_value
        self.x_group = tuple(x_group)
        self.leader_pid = leader_pid
        self.ack_time = ack_time
        self.vote_time = vote_time
        self.wish_time = wish_time

    def on_start(self) -> None:
        self.ctx.set_timer("splice-ack", self.ack_time, self._send_acks)
        self.ctx.set_timer("splice-vote", self.vote_time, self._send_vote)
        self.ctx.set_timer("splice-wish", self.wish_time, self._send_wish)

    def _send_acks(self) -> None:
        ack = self.forge.ack(self.x_value, 1)
        for dst in self.x_group:
            self.send(dst, ack)

    def _send_vote(self) -> None:
        """Lie to the view-2 leader: claim we never acknowledged anything."""
        if self.pid != self.leader_pid:
            self.send(self.leader_pid, self.forge.vote_message(None, 2))

    def _send_wish(self) -> None:
        self.broadcast(self.forge.wish(2))

    def on_message(self, sender: int, payload: Any) -> None:
        # Rubber-stamp every certificate request, whoever sends it, and
        # acknowledge every post-view-change proposal (the attack needs
        # Byzantine acks to fill the fast quorum when t < f).
        if isinstance(payload, CertRequest):
            self.send(sender, self.forge.cert_ack(payload.value, payload.view))
        elif isinstance(payload, Propose) and payload.view >= 2:
            self.broadcast(self.forge.ack(payload.value, payload.view))


class SpliceViewTwoLeader(Process):
    """Byzantine leader of view 2 pushing the conflicting value ``y``."""

    def __init__(
        self,
        pid: int,
        registry: KeyRegistry,
        config: ProtocolConfig,
        x_value: Any,
        y_value: Any,
        x_group: Tuple[int, ...],
        equivocator: int,
        ack_time: float,
        wish_time: float,
        exclude_equivocator: bool = True,
    ) -> None:
        super().__init__(pid)
        self.registry = registry
        self.config = config
        #: Mirrors the correct processes' selection variant: when the
        #: ablation disables exclusion, the attacker may exploit the
        #: equivocator's own (lying) vote as filler.
        self.exclude_equivocator = exclude_equivocator
        self.forge = ByzantineForge(pid, registry, config)
        self.x_value = x_value
        self.y_value = y_value
        self.x_group = tuple(x_group)
        self.equivocator = equivocator
        self.ack_time = ack_time
        self.wish_time = wish_time
        self._votes: Dict[int, SignedVote] = {}
        self._certacks: Dict[int, Any] = {}
        self._selected_set: Optional[Tuple[SignedVote, ...]] = None
        self._proposed = False

    # ------------------------------------------------------------------
    def on_start(self) -> None:
        # Phase 0: help the equivocator get x decided fast in view 1, and
        # register our own lying nil vote for view 2.
        self.ctx.set_timer("splice-ack", self.ack_time, self._send_acks)
        self.ctx.set_timer("splice-wish", self.wish_time, self._send_wish)
        self._votes[self.pid] = self.forge.nil_vote(2)

    def _send_acks(self) -> None:
        ack = self.forge.ack(self.x_value, 1)
        for dst in self.x_group:
            self.send(dst, ack)

    def _send_wish(self) -> None:
        self.broadcast(self.forge.wish(2))

    # ------------------------------------------------------------------
    def on_message(self, sender: int, payload: Any) -> None:
        if isinstance(payload, Vote) and payload.view == 2:
            signed = payload.signed
            if signed.voter == sender and signed_vote_valid(
                signed, 2, self.registry, self.config
            ):
                self._votes[sender] = signed
                self._try_attack()
        elif isinstance(payload, CertAck) and payload.view == 2:
            if payload.value == self.y_value and payload.phi.signer == sender:
                if self.registry.verify(
                    payload.phi, certack_payload(self.y_value, 2)
                ):
                    self._certacks[sender] = payload.phi
                    self._try_propose()

    # ------------------------------------------------------------------
    def _try_attack(self) -> None:
        """Search for an ``n - f`` vote subset admitting ``y``."""
        if self._selected_set is not None or self._proposed:
            return
        crafted = self.craft_admitting_set(
            self._votes,
            self.y_value,
            self.equivocator,
            self.config,
            self.exclude_equivocator,
        )
        if crafted is None:
            return  # not (yet) possible — at n >= 3f + 2t - 1, never.
        self._selected_set = crafted
        self.broadcast(
            CertRequest(value=self.y_value, view=2, votes=crafted)
        )

    @staticmethod
    def craft_admitting_set(
        votes: Dict[int, SignedVote],
        y_value: Any,
        equivocator: int,
        config: ProtocolConfig,
        exclude_equivocator: bool = True,
    ) -> Optional[Tuple[SignedVote, ...]]:
        """Best-effort subset search, exploiting the attacker's knowledge:
        put nil votes and ``y`` votes first, pad with as few conflicting
        votes as possible, and check the honest selection predicate.

        When the target protocol excludes proven equivocators, including
        the equivocator's vote only stalls selection, so it is dropped;
        under the E11 ablation (no exclusion) it is a free nil filler."""
        preferred: List[SignedVote] = []
        fillers: List[SignedVote] = []
        for voter in sorted(votes):
            if voter == equivocator and exclude_equivocator:
                continue  # including the equivocator only stalls selection
            signed = votes[voter]
            if signed.vote is None or signed.vote.value == y_value:
                preferred.append(signed)
            else:
                fillers.append(signed)
        need = config.vote_quorum
        if len(preferred) + len(fillers) < need:
            return None
        pad = max(0, need - len(preferred))
        candidate = tuple(preferred + fillers[:pad])
        votes_map = {sv.voter: sv for sv in candidate}
        if selection_admits(votes_map, y_value, config, exclude_equivocator):
            return candidate
        return None

    def _try_propose(self) -> None:
        if self._proposed or self._selected_set is None:
            return
        if len(self._certacks) < self.config.cert_quorum:
            return
        cert = ProgressCertificate(
            value=self.y_value,
            view=2,
            signatures=tuple(
                self._certacks[s] for s in sorted(self._certacks)
            ),
        )
        self._proposed = True
        self.broadcast(self.forge.propose(self.y_value, 2, cert))
        # Add our own (Byzantine) ack so the fast quorum n - t can be
        # reached even though only n - f processes are correct.
        self.broadcast(self.forge.ack(self.y_value, 2))
