"""View synchronization: the background protocol electing leaders."""

from .synchronizer import Pacemaker, WishMessage

__all__ = ["Pacemaker", "WishMessage"]
