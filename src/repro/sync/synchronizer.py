"""View synchronization (the "pacemaker").

The paper (Section 3) assumes a background view-synchronization protocol
with three properties:

1. a correct process's view number never decreases;
2. in any infinite execution, a correct leader is elected infinitely often;
3. if a correct leader is elected after GST, no correct process changes
   its view for at least ``5 * DELTA``.

Any synchronizer from the literature qualifies; we implement a compact
wish-amplification synchronizer with exponentially growing timeouts
(Bracha-style double-threshold echo, as used by e.g. Bravo-Chockler-
Gotsman and HotStuff-family pacemakers):

* every process tracks the highest view each peer *wishes* to enter;
* a timeout makes a process wish for ``current_view + 1``;
* seeing ``f + 1`` wishes above its own makes a process adopt and
  re-broadcast the ``(f + 1)``-th highest wish (amplification — at least
  one of those wishers is correct);
* seeing ``2f + 1`` wishes at or above some view makes the process enter
  that view.

Timeouts double every view, so after GST views eventually last long
enough (property 3) and a correct leader is reached (property 2 — the
leader map is round-robin).  Wishes are monotone, so views never decrease
(property 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..core.quorums import majority_correct, one_correct

__all__ = ["WishMessage", "Pacemaker"]


@dataclass(frozen=True)
class WishMessage:
    """``wish(v)``: the sender wants to enter view ``v``."""

    view: int

    def signing_fields(self) -> Tuple[str, int]:
        return ("wish", self.view)


class Pacemaker:
    """Wish-amplification view synchronizer bound to one process.

    The owning process provides the environment through callables so the
    pacemaker stays protocol-agnostic (the baselines reuse it too):
    ``current_view`` reads the process view, ``enter_view`` advances it,
    ``broadcast`` sends a :class:`WishMessage` to everyone, ``set_timer``
    arms the named local timeout.
    """

    TIMER_NAME = "pacemaker"

    def __init__(
        self,
        pid: int,
        n: int,
        f: int,
        current_view: Callable[[], int],
        enter_view: Callable[[int], None],
        broadcast: Callable[[WishMessage], None],
        set_timer: Callable[[str, float, Callable[[], None]], None],
        cancel_timer: Callable[[str], None],
        base_timeout: float = 12.0,
        multiplier: float = 2.0,
        max_timeout: float = 1e9,
        enabled: bool = True,
        entry_quorum: Optional[int] = None,
        amplify_quorum: Optional[int] = None,
    ) -> None:
        self.entry_quorum = (
            entry_quorum if entry_quorum is not None else majority_correct(f)
        )
        self.amplify_quorum = (
            amplify_quorum if amplify_quorum is not None else one_correct(f)
        )
        if n < self.entry_quorum:
            # The entry threshold must fit in n.  We deliberately do not
            # demand n >= 3f + 1 here: the lower-bound experiments run the
            # protocol below its resilience bound on purpose.
            raise ValueError(
                f"pacemaker entry quorum {self.entry_quorum} exceeds n={n}"
            )
        self.pid = pid
        self.n = n
        self.f = f
        self._current_view = current_view
        self._enter_view = enter_view
        self._broadcast = broadcast
        self._set_timer = set_timer
        self._cancel_timer = cancel_timer
        self.base_timeout = base_timeout
        self.multiplier = multiplier
        self.max_timeout = max_timeout
        self.enabled = enabled
        self._wishes: Dict[int, int] = {}
        self._my_wish = 1
        self._stopped = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self.enabled and not self._stopped:
            self._arm()

    def stop(self) -> None:
        """Stop initiating view changes (the process may still follow)."""
        self._stopped = True
        self._cancel_timer(self.TIMER_NAME)

    def _arm(self) -> None:
        view = self._current_view()
        timeout = min(
            self.base_timeout * (self.multiplier ** (view - 1)),
            self.max_timeout,
        )
        self._set_timer(self.TIMER_NAME, timeout, self._on_timeout)

    def _on_timeout(self) -> None:
        if self._stopped:
            return
        self._advocate(self._current_view() + 1)
        self._arm()

    # ------------------------------------------------------------------
    def advocate(self, view: int) -> None:
        """Externally request a view change (e.g. the leader-performance
        monitor demoting a slow leader): wish for ``view`` through the
        normal amplification path, so processes that were asked at
        different times still enter together on ``2f + 1`` wishes."""
        if self._stopped:
            return
        self._advocate(view)

    def _advocate(self, view: int) -> None:
        """Wish for ``view`` (monotone) and tell everyone."""
        if view <= self._my_wish:
            return
        self._my_wish = view
        self._wishes[self.pid] = view
        self._broadcast(WishMessage(view=view))
        self._check_entry()

    def on_wish(self, sender: int, message: WishMessage) -> None:
        """Handle a peer's wish; may amplify and may enter a view."""
        previous = self._wishes.get(sender, 0)
        if message.view <= previous:
            return
        self._wishes[sender] = message.view
        amplify_to = self._kth_highest_wish(self.amplify_quorum)
        if amplify_to > self._my_wish:
            self._advocate(amplify_to)
        self._check_entry()

    # ------------------------------------------------------------------
    def _kth_highest_wish(self, k: int) -> int:
        wishes = sorted(self._wishes.values(), reverse=True)
        if len(wishes) < k:
            return 0
        return wishes[k - 1]

    def _check_entry(self) -> None:
        entry_view = self._kth_highest_wish(self.entry_quorum)
        if entry_view > self._current_view():
            self._enter_view(entry_view)
            if not self._stopped:
                self._arm()

    # ------------------------------------------------------------------
    @property
    def my_wish(self) -> int:
        return self._my_wish

    def wish_of(self, pid: int) -> Optional[int]:
        return self._wishes.get(pid)
