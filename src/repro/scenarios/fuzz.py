"""Seeded scenario fuzzing with shrinking.

:func:`generate_scenario` maps a seed to a random-but-*survivable*
scenario: fault mixes stay within the protocol's budget, partitions heal,
delay rules lift — so a correct protocol must pass every oracle on every
seed.  Any failing seed is therefore a bug (in the protocol, the engine,
or the schedule's assumptions) worth keeping; :func:`shrink_spec` reduces
it to a minimal reproducer by dropping schedule elements while the
failure persists.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .adapters import ADAPTERS
from .runner import ScenarioResult, run_scenario
from .spec import (
    ByzantineRole,
    Crash,
    DelayRuleOff,
    DelayRuleOn,
    DelaySpec,
    FaultEvent,
    PartitionHeal,
    PartitionStart,
    ScenarioSpec,
)

__all__ = [
    "DEFAULT_FUZZ_PROTOCOLS",
    "FuzzFailure",
    "FuzzReport",
    "generate_scenario",
    "run_fuzz",
    "shrink_spec",
]

#: Protocol families the fuzzer exercises by default: ours plus the
#: Byzantine and crash baselines (optimistic's unanimity fast path makes
#: random schedules assert too little, so it is opt-in).
DEFAULT_FUZZ_PROTOCOLS: Tuple[str, ...] = ("fbft", "pbft", "fab", "paxos")

_HORIZON = 60.0  # all scheduled chaos happens inside this window


def generate_scenario(
    seed: int,
    protocols: Sequence[str] = DEFAULT_FUZZ_PROTOCOLS,
) -> ScenarioSpec:
    """Deterministically derive a survivable scenario from ``seed``."""
    from .spec import ScenarioError

    unknown = set(protocols) - set(ADAPTERS)
    if unknown or not protocols:
        raise ScenarioError(
            f"unknown fuzz protocols {sorted(unknown)}; known: {sorted(ADAPTERS)}"
        )
    rng = random.Random(seed)
    protocol = protocols[rng.randrange(len(protocols))]
    adapter = ADAPTERS[protocol]
    f = rng.choice((1, 1, 2))  # bias small: most bugs do not need f = 2
    if protocol == "fbft":
        t = rng.choice((f, 1))
    elif protocol == "fab":
        t = 1  # keep clusters small (n = 3f + 2t + 1)
    else:
        t = f
    n = adapter.min_n(f, t) + rng.choice((0, 0, 1))

    if rng.random() < 0.5:
        delay = DelaySpec(kind=rng.choice(("synchronous", "round")))
    else:
        delay = DelaySpec(
            kind="partial",
            gst=rng.uniform(10.0, 40.0),
            pre_gst_max=rng.uniform(5.0, 20.0),
            seed=seed,
        )

    pids = list(range(n))
    # FaB's only decide path needs n - t acceptances, so a schedule that
    # permanently downs more than t replicas can never decide — a
    # liveness "failure" the protocol never claimed to survive.  Every
    # other family has a slow path (or majority quorum) live under f
    # faults, so f is the right survivability budget there.
    budget = t if protocol == "fab" else f
    byzantine: List[ByzantineRole] = []
    faults: List[FaultEvent] = []
    used: set = set()

    # Byzantine roles (Byzantine-tolerant families only).
    if adapter.byzantine and budget and rng.random() < 0.5:
        pid = rng.choice(pids)
        behavior = "silent"
        if (
            "equivocate" in adapter.behaviors
            and pid == 0
            and n >= 4
            and rng.random() < 0.6
        ):
            behavior = "equivocate"
        if behavior == "equivocate":
            minority = (rng.choice(pids[1:]),)
            byzantine.append(
                ByzantineRole(
                    pid=0, behavior="equivocate", view=1,
                    values=("x", "y"), minority=minority,
                )
            )
        elif rng.random() < 0.5:
            byzantine.append(
                ByzantineRole(
                    pid=pid, behavior="crash_after",
                    at=round(rng.uniform(0.5, _HORIZON / 2), 2),
                )
            )
        else:
            byzantine.append(ByzantineRole(pid=pid, behavior="silent"))
        used.add(byzantine[-1].pid)
        budget -= 1

    # Scheduled crashes within the remaining budget.
    crash_count = rng.randint(0, budget)
    candidates = [pid for pid in pids if pid not in used]
    for pid in rng.sample(candidates, k=min(crash_count, len(candidates))):
        faults.append(Crash(at=round(rng.uniform(0.0, _HORIZON / 2), 2), pid=pid))
        used.add(pid)

    # A healing partition.
    if rng.random() < 0.4 and n >= 3:
        size = rng.randint(1, n - 1)
        left = tuple(sorted(rng.sample(pids, k=size)))
        right = tuple(pid for pid in pids if pid not in left)
        start = round(rng.uniform(0.0, _HORIZON / 3), 2)
        heal = round(start + rng.uniform(5.0, _HORIZON / 2), 2)
        faults.append(PartitionStart(at=start, groups=(left, right)))
        faults.append(PartitionHeal(at=heal))

    # A transient delay rule on a random edge or message type.
    if rng.random() < 0.4:
        start = round(rng.uniform(0.0, _HORIZON / 3), 2)
        stop = round(start + rng.uniform(5.0, _HORIZON / 2), 2)
        name = f"fuzz-delay-{seed}"
        if rng.random() < 0.5:
            rule = DelayRuleOn(
                at=start, name=name,
                extra_delay=round(rng.uniform(0.5, 5.0), 2),
                dst=(rng.choice(pids),),
            )
        else:
            rule = DelayRuleOn(
                at=start, name=name,
                extra_delay=round(rng.uniform(0.5, 5.0), 2),
                src=(rng.choice(pids),),
            )
        faults.append(rule)
        faults.append(DelayRuleOff(at=stop, name=name))

    faults.sort(key=lambda event: event.at)
    return ScenarioSpec(
        name=f"fuzz-{seed}",
        protocol=protocol,
        n=n, f=f, t=t,
        delay=delay,
        faults=tuple(faults),
        byzantine=tuple(byzantine),
        timeout=3000.0,
        description=f"fuzzer seed {seed}",
    )


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------


def _paired_removals(spec: ScenarioSpec) -> List[Tuple[FaultEvent, ...]]:
    """Candidate fault schedules, each with one logical element removed.

    Removals keep the schedule well-formed: a ``PartitionStart`` goes with
    its following ``PartitionHeal``, a ``DelayRuleOn`` with its matching
    ``DelayRuleOff``, a ``Crash`` with the ``Recover`` of the same pid —
    so shrinking never *introduces* a new failure mode (e.g. an unhealed
    partition) that would masquerade as the original bug.
    """
    events = list(spec.faults)
    candidates: List[Tuple[FaultEvent, ...]] = []
    consumed: set = set()
    for index, event in enumerate(events):
        if index in consumed:
            continue
        drop = {index}
        if isinstance(event, PartitionStart):
            for j in range(index + 1, len(events)):
                if isinstance(events[j], PartitionHeal):
                    drop.add(j)
                    break
        elif isinstance(event, DelayRuleOn):
            for j in range(index + 1, len(events)):
                other = events[j]
                if isinstance(other, DelayRuleOff) and other.name == event.name:
                    drop.add(j)
                    break
        elif isinstance(event, Crash):
            from .spec import Recover

            for j in range(index + 1, len(events)):
                other = events[j]
                if isinstance(other, Recover) and other.pid == event.pid:
                    drop.add(j)
                    break
        elif isinstance(event, (PartitionHeal, DelayRuleOff)):
            continue  # only removed together with their opener
        consumed |= drop
        candidates.append(
            tuple(e for k, e in enumerate(events) if k not in drop)
        )
    return candidates


def shrink_spec(
    spec: ScenarioSpec,
    still_fails: Callable[[ScenarioSpec], bool],
    max_attempts: int = 100,
) -> ScenarioSpec:
    """Greedily minimize ``spec`` while ``still_fails`` holds.

    Tries, in order: dropping fault-schedule elements (in matched pairs),
    dropping Byzantine roles, and simplifying the delay model to
    synchronous.  Runs to a fixed point or ``max_attempts`` executions.
    """
    attempts = 0
    current = spec
    progress = True
    while progress and attempts < max_attempts:
        progress = False
        for faults in _paired_removals(current):
            candidate = current.with_(faults=faults)
            attempts += 1
            if still_fails(candidate):
                current = candidate
                progress = True
                break
        if progress:
            continue
        for role in current.byzantine:
            candidate = current.with_(
                byzantine=tuple(r for r in current.byzantine if r is not role)
            )
            attempts += 1
            if still_fails(candidate):
                current = candidate
                progress = True
                break
        if progress:
            continue
        if current.delay.kind != "synchronous":
            candidate = current.with_(
                delay=DelaySpec(kind="synchronous", delta=current.delay.delta)
            )
            attempts += 1
            if still_fails(candidate):
                current = candidate
                progress = True
    return current


# ----------------------------------------------------------------------
# The fuzz loop
# ----------------------------------------------------------------------


@dataclass
class FuzzFailure:
    """One failing seed, with its shrunk reproducer."""

    seed: int
    spec: ScenarioSpec
    shrunk: ScenarioSpec
    failures: Tuple[str, ...]

    def to_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "failures": list(self.failures),
            "reproducer": self.shrunk.to_dict(),
        }


@dataclass
class FuzzReport:
    """Outcome of a fuzzing campaign."""

    seeds_run: int
    by_protocol: Dict[str, int] = field(default_factory=dict)
    failures: List[FuzzFailure] = field(default_factory=list)
    stopped_by: str = "seeds"  #: ``"seeds"`` or ``"max-seconds"``

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> Dict:
        return {
            "seeds_run": self.seeds_run,
            "by_protocol": dict(sorted(self.by_protocol.items())),
            "stopped_by": self.stopped_by,
            "ok": self.ok,
            "failures": [failure.to_dict() for failure in self.failures],
        }

    def summary(self) -> str:
        mix = ", ".join(
            f"{key}: {count}" for key, count in sorted(self.by_protocol.items())
        )
        lines = [
            f"fuzz: {self.seeds_run} seeds ({mix}; {self.stopped_by} limit) — "
            f"{'all oracles passed' if self.ok else f'{len(self.failures)} FAILURES'}"
        ]
        for failure in self.failures:
            lines.append(
                f"  seed {failure.seed}: {'; '.join(failure.failures)}"
            )
            lines.append(f"    reproducer: {failure.shrunk.to_dict()!r}")
        return "\n".join(lines)


def _result_failures(result: ScenarioResult) -> Tuple[str, ...]:
    return tuple(str(verdict) for verdict in result.failures)


def run_fuzz(
    seeds: int,
    start: int = 0,
    protocols: Sequence[str] = DEFAULT_FUZZ_PROTOCOLS,
    shrink: bool = True,
    run: Callable[[ScenarioSpec], ScenarioResult] = run_scenario,
    on_progress: Optional[Callable[[int, ScenarioResult], None]] = None,
    max_seconds: Optional[float] = None,
    clock: Optional[Callable[[], float]] = None,
) -> FuzzReport:
    """Run ``seeds`` consecutive seeds starting at ``start``.

    ``max_seconds`` adds a wall-clock budget on top of the seed budget:
    the loop stops before the next seed once the elapsed time exceeds
    it, and the report's ``stopped_by``/``seeds_run`` record which limit
    fired and how far the sweep actually got.  ``clock`` is injectable
    for tests; by default the wall clock is imported lazily so the
    deterministic path stays free of real-time reads.
    """
    report = FuzzReport(seeds_run=0)
    started_at = None
    if max_seconds is not None:
        if clock is None:
            from ..fuzz.clock import wall_clock as clock
        started_at = clock()
    for seed in range(start, start + seeds):
        if started_at is not None and clock() - started_at >= max_seconds:
            report.stopped_by = "max-seconds"
            break
        report.seeds_run += 1
        spec = generate_scenario(seed, protocols=protocols)
        report.by_protocol[spec.protocol] = (
            report.by_protocol.get(spec.protocol, 0) + 1
        )
        result = run(spec)
        if on_progress is not None:
            on_progress(seed, result)
        if result.ok:
            continue
        shrunk = spec
        if shrink:
            shrunk = shrink_spec(spec, lambda s: not run(s).ok)
        report.failures.append(
            FuzzFailure(
                seed=seed,
                spec=spec,
                shrunk=shrunk,
                failures=_result_failures(result),
            )
        )
    return report
