"""Declarative fault/workload scenarios with invariant oracles and a fuzzer.

The paper's claims — two-step decisions in the common case, safety at
``n >= 5f - 1``, recovery via view change after GST — are statements
about *specific adversarial timings and fault mixes*.  This package turns
such executions from hand-wired test scripts into data:

* :mod:`~repro.scenarios.spec` — :class:`ScenarioSpec`, a declarative
  description of a run: cluster shape, delay model + GST, a timed fault
  schedule (crashes, recoveries, partitions, delay rules), static
  Byzantine roles, and an optional client workload;
* :mod:`~repro.scenarios.adapters` — a small adapter per protocol family
  (ours and all four baselines, plus the SMR stack) so one spec runs
  against any of them;
* :mod:`~repro.scenarios.runner` — materializes a spec on the simulator
  and records a structured :class:`ScenarioResult`;
* :mod:`~repro.scenarios.invariants` — post-hoc oracles (agreement,
  validity, certificate well-formedness, fast-path step count,
  liveness after GST) evaluated from the trace;
* :mod:`~repro.scenarios.library` — ~a dozen named canonical scenarios;
* :mod:`~repro.scenarios.fuzz` — a seeded randomized scenario generator
  with shrinking of failing seeds to minimal reproducers;
* ``python -m repro.scenarios run|fuzz|list`` — the CLI.
"""

from .adapters import ADAPTERS, ScenarioAdapter
from .fuzz import FuzzReport, generate_scenario, run_fuzz, shrink_spec
from .invariants import InvariantVerdict, evaluate_invariants
from .library import SCENARIOS, get_scenario
from .runner import ScenarioResult, run_scenario, run_scenarios
from .spec import (
    ByzantineRole,
    Crash,
    DelayRuleOff,
    DelayRuleOn,
    DelaySpec,
    PartitionHeal,
    PartitionStart,
    Recover,
    ScenarioError,
    ScenarioSpec,
    WorkloadSpec,
)

__all__ = [
    "ADAPTERS",
    "ByzantineRole",
    "Crash",
    "DelayRuleOff",
    "DelayRuleOn",
    "DelaySpec",
    "FuzzReport",
    "InvariantVerdict",
    "PartitionHeal",
    "PartitionStart",
    "Recover",
    "SCENARIOS",
    "ScenarioAdapter",
    "ScenarioError",
    "ScenarioResult",
    "ScenarioSpec",
    "WorkloadSpec",
    "evaluate_invariants",
    "generate_scenario",
    "get_scenario",
    "run_fuzz",
    "run_scenario",
    "run_scenarios",
    "shrink_spec",
]
