"""Execution-coverage facts extracted from a finished scenario run.

The coverage-guided fuzzer (:mod:`repro.fuzz`) steers mutation toward
*novel protocol behavior*, which requires a compact, deterministic
description of what one execution actually exercised: how far each
replica's view advanced, whether the decision took the fast or the slow
path, which partition shapes and delay rules were live, whether
checkpoints and peer catchup fired, and how close each oracle came to a
violation (the graded ``margin`` on :class:`InvariantVerdict`).

Everything here is a *post-hoc read* of state the run already produced —
no hooks, no extra events — so attaching coverage to a result can never
perturb the trace digest.  The returned dict is JSON-safe and fully
deterministic; bucketing into signature features is the fuzzer's job
(:mod:`repro.fuzz.signature`), not ours.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from .adapters import BuiltScenario
from .invariants import InvariantVerdict
from .spec import (
    Crash,
    DelayRuleOn,
    PartitionStart,
    Recover,
    ScenarioSpec,
)

__all__ = ["collect_coverage"]


def _rule_descriptor(event: DelayRuleOn) -> str:
    """A stable label for what a delay rule targets."""
    if event.payload_types:
        target = "payload:" + ",".join(sorted(event.payload_types))
    elif event.src is not None:
        target = "edge:src"
    elif event.dst is not None:
        target = "edge:dst"
    else:
        target = "all"
    if event.hold_until is not None:
        target += ":hold"
    return target


def _schedule_facts(spec: ScenarioSpec) -> Dict[str, Any]:
    partitions: List[str] = []
    crashes = recovers = disk_lost = 0
    rules: List[str] = []
    for event in spec.faults:
        if isinstance(event, Crash):
            crashes += 1
            if event.disk == "lost":
                disk_lost += 1
        elif isinstance(event, Recover):
            recovers += 1
        elif isinstance(event, PartitionStart):
            partitions.append("|".join(str(len(g)) for g in sorted(
                event.groups, key=len
            )))
        elif isinstance(event, DelayRuleOn):
            rules.append(_rule_descriptor(event))
    return {
        "partitions": sorted(partitions),
        "crashes": crashes,
        "recovers": recovers,
        "disk_lost": disk_lost,
        "rules": sorted(rules),
        "byzantine": sorted(role.behavior for role in spec.byzantine),
    }


def _honest_views(built: BuiltScenario) -> List[int]:
    """The highest view each honest participant reached, sorted.

    Consensus processes expose ``view`` (Paxos calls it ``ballot``); SMR
    replicas run one consensus instance per slot, so a replica's view is
    the maximum over its instances, floored by the leader monitor's view
    floor when one is attached.
    """
    views: List[int] = []
    if built.mode == "smr":
        honest = set(built.honest_pids)
        for replica in built.replicas:
            if replica.pid not in honest:
                continue
            view = max(
                (getattr(inst, "view", 1) for inst in replica._instances.values()),
                default=1,
            )
            if replica.leader_monitor is not None:
                view = max(view, replica.leader_monitor.view_floor)
            views.append(int(view))
        return sorted(views)
    for pid in built.honest_pids:
        process = built.process_by_pid(pid)
        view = getattr(process, "view", None)
        if view is None:
            view = getattr(process, "ballot", 1)
        views.append(int(view))
    return sorted(views)


def _path_taken(
    built: BuiltScenario, decided: bool, steps: Optional[int]
) -> str:
    if not decided:
        return "none"
    claimed = built.adapter.claimed_fast_delays
    if steps is not None and steps <= claimed:
        return "fast"
    return "slow"


def collect_coverage(
    spec: ScenarioSpec,
    built: BuiltScenario,
    decided: bool,
    steps: Optional[int],
    messages_by_type: Dict[str, int],
    verdicts: Tuple[InvariantVerdict, ...],
) -> Dict[str, Any]:
    """All execution facts the fuzzer's signature is built from."""
    checkpoint_slot = -1
    if built.mode == "smr":
        checkpoint_slot = max(
            (replica.stable_checkpoint_slot for replica in built.replicas),
            default=-1,
        )
    oracle_status = {True: "pass", False: "fail", None: "na"}
    return {
        "protocol": spec.protocol,
        "n": spec.n,
        "f": spec.f,
        "t": spec.t,
        "delay": spec.delay.kind,
        "decided": decided,
        "steps": steps,
        "path": _path_taken(built, decided, steps),
        "views": _honest_views(built),
        **_schedule_facts(spec),
        "checkpoint_slot": checkpoint_slot,
        "catchup_msgs": messages_by_type.get("CatchupRequest", 0)
        + messages_by_type.get("CatchupReply", 0),
        "msgs": dict(sorted(messages_by_type.items())),
        "oracles": {v.name: oracle_status[v.passed] for v in verdicts},
        "margins": {
            v.name: v.margin for v in verdicts if v.margin is not None
        },
    }
