"""Materialize a :class:`ScenarioSpec` and run it to a structured result.

The runner is deliberately small: the adapter builds the processes, the
spec builds the delay model, the fault schedule becomes simulator events,
and the oracles judge the trace afterwards.  Nothing here knows protocol
internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..sim.digest import cluster_digest
from ..sim.events import SimulationTimeout
from ..sim.network import DelayRule
from ..sim.runner import Cluster
from ..sim.trace import ConsistencyViolation, message_delays
from .adapters import ADAPTERS, BuiltScenario
from .coverage import collect_coverage
from .invariants import (
    InvariantVerdict,
    decisions_of,
    durable_rejoin_sets,
    evaluate_invariants,
)
from .spec import (
    Crash,
    DelayRuleOff,
    DelayRuleOn,
    PartitionHeal,
    PartitionStart,
    Recover,
    ScenarioError,
    ScenarioSpec,
)

__all__ = ["ScenarioResult", "run_scenario", "run_scenarios"]


@dataclass
class ScenarioResult:
    """Everything a finished run produced, ready for reporting."""

    spec: ScenarioSpec
    decided: bool
    decision_value: Any
    decision_time: Optional[float]
    #: Decision latency in message delays (round/synchronous models only).
    steps: Optional[int]
    per_pid_decisions: Dict[int, Any]
    messages_sent: int
    messages_delivered: int
    bytes_sent: int
    messages_by_type: Dict[str, int]
    events_processed: int
    safety_violation: Optional[str]
    verdicts: Tuple[InvariantVerdict, ...] = ()
    #: SMR extras (zero in consensus mode).
    completed_requests: int = 0
    total_requests: int = 0
    applied_slots: int = 0
    #: SHA-256 over sends + decisions + event counters; equal digests mean
    #: equal executions (see :mod:`repro.sim.digest`).
    trace_digest: str = ""
    #: Observability snapshot (registry + per-replica monitor stats); empty
    #: unless a :class:`~repro.obs.metrics.MetricsRegistry` was passed in.
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: Execution-coverage facts (views reached, path taken, fault shapes,
    #: oracle margins) — the raw material for the coverage-guided
    #: fuzzer's signatures; see :mod:`repro.scenarios.coverage`.
    coverage: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """No oracle failed (n/a oracles do not count against the run)."""
        return not any(v.failed for v in self.verdicts)

    @property
    def failures(self) -> Tuple[InvariantVerdict, ...]:
        return tuple(v for v in self.verdicts if v.failed)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.spec.name,
            "protocol": self.spec.protocol,
            "n": self.spec.n,
            "f": self.spec.f,
            "ok": self.ok,
            "decided": self.decided,
            "decision_value": repr(self.decision_value),
            "decision_time": self.decision_time,
            "steps": self.steps,
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "bytes_sent": self.bytes_sent,
            "messages_by_type": dict(sorted(self.messages_by_type.items())),
            "events_processed": self.events_processed,
            "safety_violation": self.safety_violation,
            "completed_requests": self.completed_requests,
            "total_requests": self.total_requests,
            "trace_digest": self.trace_digest,
            "metrics": self.metrics,
            "coverage": self.coverage,
            "invariants": [
                {
                    "name": v.name,
                    "passed": v.passed,
                    "detail": v.detail,
                    "margin": v.margin,
                }
                for v in self.verdicts
            ],
        }

    def summary(self) -> str:
        """A compact multi-line report (CLI output)."""
        lines = [
            f"scenario   : {self.spec.name} [{self.spec.protocol}] "
            f"n={self.spec.n} f={self.spec.f}"
            + (f" t={self.spec.t}" if self.spec.t is not None else ""),
            f"outcome    : {'OK' if self.ok else 'FAIL'}"
            + (
                f" — workload drained at t={self.decision_time}"
                if self.decided and self.total_requests
                else f" — decided {self.decision_value!r} at t={self.decision_time}"
                if self.decided
                else " — no decision"
            ),
        ]
        if self.steps is not None:
            lines.append(f"latency    : {self.steps} message delays")
        if self.total_requests:
            lines.append(
                f"workload   : {self.completed_requests}/{self.total_requests} "
                f"requests completed"
            )
        lines.append(
            f"traffic    : {self.messages_sent} msgs sent, "
            f"{self.messages_delivered} delivered, ~{self.bytes_sent} bytes"
        )
        lines.extend(f"  {verdict}" for verdict in self.verdicts)
        return "\n".join(lines)


def _crash_action(built: BuiltScenario, pid: int, disk: str):
    """Crash ``pid``; a disk-loss crash also wipes its durable storage."""

    def action() -> None:
        process = built.process_by_pid(pid)
        process.crash()
        if disk == "lost":
            wipe = getattr(process, "wipe_storage", None)
            if wipe is not None:
                wipe()

    return action


def _schedule_faults(
    spec: ScenarioSpec,
    built: BuiltScenario,
    cluster: Cluster,
    recorder: Optional[Any] = None,
) -> None:
    network = cluster.network
    for event in spec.faults:
        pid = -1
        if isinstance(event, Crash):
            action = _crash_action(built, event.pid, event.disk)
            kind, pid = "crash", event.pid
        elif isinstance(event, Recover):
            action = lambda pid=event.pid: built.process_by_pid(pid).recover()
            kind, pid = "recover", event.pid
        elif isinstance(event, PartitionStart):
            action = lambda groups=event.groups: network.start_partition(groups)
            kind = "partition-start"
        elif isinstance(event, PartitionHeal):
            action = network.heal_partition
            kind = "partition-heal"
        elif isinstance(event, DelayRuleOn):
            rule = DelayRule(
                name=event.name,
                extra_delay=event.extra_delay,
                hold_until=event.hold_until,
                src=frozenset(event.src) if event.src is not None else None,
                dst=frozenset(event.dst) if event.dst is not None else None,
                payload_types=event.payload_types,
            )
            action = lambda r=rule: network.set_delay_rule(r)
            kind = "delay-on"
        elif isinstance(event, DelayRuleOff):
            action = lambda name=event.name: network.clear_delay_rule(name)
            kind = "delay-off"
        else:  # pragma: no cover - exhaustive over FaultEvent
            raise ScenarioError(f"unknown fault event {event!r}")
        if recorder is not None:
            def action(
                inner=action, kind=kind, pid=pid, detail=str(event)
            ) -> None:
                recorder.record_fault(kind, cluster.sim.now, pid, detail)
                inner()
        cluster.sim.schedule_at(event.at, action, label=f"fault {event}")


def run_scenarios(specs_or_names, on_result=None) -> "list[ScenarioResult]":
    """Batch API: run several scenarios (specs or canonical-library names).

    The experiment framework's workers shard grids of scenario names over
    processes and call this per shard; the CLI and tests use it for whole
    sweeps.  ``on_result(result)`` is invoked after each run (progress
    reporting); results come back in input order.
    """
    from .library import get_scenario

    results = []
    for item in specs_or_names:
        spec = item if isinstance(item, ScenarioSpec) else get_scenario(item)
        result = run_scenario(spec)
        if on_result is not None:
            on_result(result)
        results.append(result)
    return results


def run_scenario(
    spec: ScenarioSpec,
    *,
    metrics: Optional[Any] = None,
    tracer: Optional[Any] = None,
    recorder: Optional[Any] = None,
) -> ScenarioResult:
    """Build, run and judge one scenario.

    ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`),
    ``tracer`` (a :class:`~repro.obs.tracing.CausalTracer`) and
    ``recorder`` (a :class:`~repro.obs.recorder.FlightRecorder`) are
    optional observers; all default to off, and the execution — and its
    trace digest — is byte-identical with or without any of them.
    """
    spec.validate()
    adapter = ADAPTERS.get(spec.protocol)
    if adapter is None:
        raise ScenarioError(
            f"unknown protocol {spec.protocol!r}; known: {sorted(ADAPTERS)}"
        )
    built = adapter.build(spec)
    cluster = Cluster(built.processes, delay_model=spec.delay.build())
    if metrics is not None:
        for replica in built.replicas:
            replica.attach_metrics(metrics)
        cluster.network.add_send_hook(metrics.network_send_hook())
    if recorder is not None:
        from ..obs.recorder import hook_view_changes

        recorder.begin_run(
            scenario=spec.name,
            protocol=spec.protocol,
            n=spec.n,
            f=spec.f,
            t=spec.t,
            mode=built.mode,
            honest_pids=sorted(built.honest_pids),
        )
        for replica in built.replicas:
            replica.attach_recorder(recorder)
        if not built.replicas:
            # Consensus mode: bare instances are processes themselves —
            # hook their view entries directly (no-op for processes
            # without ``enter_view``, e.g. Byzantine wrappers).
            for process in built.processes:
                hook_view_changes(recorder, process)
    if tracer is not None or recorder is not None:
        from ..obs.recorder import attach_observers

        attach_observers(cluster, tracer, recorder)
    _schedule_faults(spec, built, cluster, recorder)

    decided = False
    decision_value: Any = None
    decision_time: Optional[float] = None
    safety_violation: Optional[str] = None
    if built.mode == "smr":
        cluster.start()
        # A client crashed by the schedule (and never recovered) cannot
        # finish its workload; completion is owed only by the others.
        crashed = set(spec.crashed_forever_pids)
        live_clients = [c for c in built.clients if c.pid not in crashed]
        # Durable replicas the schedule recovers owe the cluster a full
        # rejoin: the run is not over until each has finished catchup and
        # executed as far as the healthiest honest replica — that is the
        # state the catchup-consistency oracle judges (same helper, so
        # condition and oracle cannot drift apart).  Legacy (storage-
        # less) recoveries keep the old stop condition untouched.
        rejoining, baseline = durable_rejoin_sets(spec, built)

        def _run_complete() -> bool:
            if not all(c.all_completed for c in live_clients):
                return False
            if not rejoining:
                return True
            target = max((r.executed_upto for r in baseline), default=-1)
            return all(
                not r.crashed
                and not r.catchup_active
                and r.executed_upto >= target
                for r in rejoining
            )

        try:
            decision_time = cluster.sim.run_until(
                _run_complete, timeout=spec.timeout
            )
            decided = True
        except SimulationTimeout:
            decided = False
        except ConsistencyViolation as violation:
            safety_violation = str(violation)
    else:
        try:
            result = cluster.run_until_decided(
                correct_pids=built.live_pids, timeout=spec.timeout
            )
            decided = result.decided
            decision_value = result.decision_value
            decision_time = result.decision_time
        except ConsistencyViolation as violation:
            safety_violation = str(violation)

    steps: Optional[int] = None
    if decided and decision_time is not None and spec.delay.counts_steps:
        steps = message_delays(decision_time, spec.delay.delta)

    verdicts = evaluate_invariants(
        spec, built, cluster, decided, decision_time, safety_violation
    )
    messages_by_type = cluster.trace.messages_by_type()
    coverage = collect_coverage(
        spec, built, decided, steps, messages_by_type, verdicts
    )
    stats = cluster.network.stats
    completed = sum(c.completed_count for c in built.clients)
    total = spec.workload.total_requests if spec.workload is not None else 0
    applied = max(
        (replica.executed_upto + 1 for replica in built.replicas), default=0
    )
    snapshot: Dict[str, Any] = {}
    if metrics is not None:
        metrics.collect_network(cluster.network)
        snapshot["registry"] = metrics.to_dict()
    monitors = {
        replica.pid: replica.monitor_stats()
        for replica in built.replicas
        if replica.leader_monitor is not None
    }
    if monitors:
        snapshot["monitors"] = monitors
    if recorder is not None:
        recorder.finish_run(
            decided=decided,
            decision_time=decision_time,
            safety_violation=safety_violation,
            failures=[v.name for v in verdicts if v.failed],
        )
    return ScenarioResult(
        spec=spec,
        decided=decided,
        decision_value=decision_value,
        decision_time=decision_time,
        steps=steps,
        per_pid_decisions=decisions_of(cluster, built.honest_pids),
        messages_sent=stats.messages_sent,
        messages_delivered=stats.messages_delivered,
        bytes_sent=stats.bytes_sent,
        messages_by_type=messages_by_type,
        events_processed=cluster.sim.events_processed,
        safety_violation=safety_violation,
        verdicts=verdicts,
        completed_requests=completed,
        total_requests=total,
        applied_slots=applied,
        trace_digest=cluster_digest(cluster),
        metrics=snapshot,
        coverage=coverage,
    )
