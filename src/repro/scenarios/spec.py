"""Declarative scenario specifications.

A :class:`ScenarioSpec` is plain data: everything needed to reproduce an
execution — cluster shape, delay model, fault schedule, Byzantine roles,
workload — with a JSON round-trip (:meth:`ScenarioSpec.to_dict` /
:meth:`ScenarioSpec.from_dict`) so failing fuzz seeds can be saved and
replayed as minimal reproducers.

The fault schedule is a sequence of *timed events* applied to the live
simulation; Byzantine roles are *static* (the misbehaving process is
built misbehaving, mirroring the paper's model where the adversary
corrupts processes, not messages).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from random import Random
from typing import Any, Dict, List, Optional, Tuple, Union

from ..sim.network import (
    DelayModel,
    PartialSynchronyDelay,
    RandomDelay,
    RoundSynchronousDelay,
    SynchronousDelay,
)

__all__ = [
    "ByzantineRole",
    "Crash",
    "DelayRuleOff",
    "DelayRuleOn",
    "DelaySpec",
    "FaultEvent",
    "PartitionHeal",
    "PartitionStart",
    "Recover",
    "ScenarioError",
    "ScenarioSpec",
    "WorkloadSpec",
]


class ScenarioError(Exception):
    """An invalid or unsupported scenario specification."""


# ----------------------------------------------------------------------
# Delay model
# ----------------------------------------------------------------------

#: Recognized delay-model kinds and the spec fields each consumes.
DELAY_KINDS = ("synchronous", "round", "partial", "random")


@dataclass(frozen=True)
class DelaySpec:
    """Which :class:`~repro.sim.network.DelayModel` to run under.

    ``gst``/``pre_gst_max``/``seed`` apply to ``kind="partial"``;
    ``min_delay``/``max_delay`` to ``kind="random"``.
    """

    kind: str = "synchronous"
    delta: float = 1.0
    gst: float = 0.0
    pre_gst_max: float = 30.0
    seed: int = 0
    min_delay: float = 0.5
    max_delay: float = 1.5

    def __post_init__(self) -> None:
        if self.kind not in DELAY_KINDS:
            raise ScenarioError(
                f"unknown delay kind {self.kind!r}; expected one of {DELAY_KINDS}"
            )
        if self.delta <= 0:
            raise ScenarioError("delta must be > 0")

    def build(self) -> DelayModel:
        if self.kind == "synchronous":
            return SynchronousDelay(self.delta)
        if self.kind == "round":
            return RoundSynchronousDelay(self.delta)
        if self.kind == "partial":
            return PartialSynchronyDelay(
                delta=self.delta,
                gst=self.gst,
                pre_gst_max=self.pre_gst_max,
                seed=self.seed,
            )
        return RandomDelay(
            min_delay=self.min_delay, max_delay=self.max_delay, seed=self.seed
        )

    @property
    def counts_steps(self) -> bool:
        """Whether decision times convert cleanly to message-delay counts."""
        return self.kind in ("synchronous", "round")


# ----------------------------------------------------------------------
# Timed fault events
# ----------------------------------------------------------------------


#: What a crash does to the process's durable storage (``repro.storage``).
CRASH_DISK_MODES = ("retained", "lost")


@dataclass(frozen=True)
class Crash:
    """Halt process ``pid`` at time ``at`` (no further steps).

    ``disk`` only matters for durable SMR replicas: ``"retained"`` (the
    default) leaves the write-ahead log and stable checkpoint on disk
    for recovery to replay; ``"lost"`` wipes them with the crash, so a
    later :class:`Recover` must rebuild the whole state from peers via
    the catchup protocol.
    """

    at: float
    pid: int
    disk: str = "retained"

    def __post_init__(self) -> None:
        if self.disk not in CRASH_DISK_MODES:
            raise ScenarioError(
                f"unknown crash disk mode {self.disk!r}; "
                f"expected one of {CRASH_DISK_MODES}"
            )


@dataclass(frozen=True)
class Recover:
    """Resume a previously crashed ``pid`` at time ``at`` (state intact,
    missed messages and timers lost)."""

    at: float
    pid: int


@dataclass(frozen=True)
class PartitionStart:
    """Split the network into ``groups`` at time ``at``; crossing messages
    are held (never dropped) until the next :class:`PartitionHeal`."""

    at: float
    groups: Tuple[Tuple[int, ...], ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "groups", tuple(tuple(sorted(g)) for g in self.groups)
        )


@dataclass(frozen=True)
class PartitionHeal:
    """Heal the current partition at time ``at``."""

    at: float


@dataclass(frozen=True)
class DelayRuleOn:
    """Install a named :class:`~repro.sim.network.DelayRule` at time ``at``."""

    at: float
    name: str
    extra_delay: float = 0.0
    hold_until: Optional[float] = None
    src: Optional[Tuple[int, ...]] = None
    dst: Optional[Tuple[int, ...]] = None
    payload_types: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        for attr in ("src", "dst", "payload_types"):
            value = getattr(self, attr)
            if value is not None:
                object.__setattr__(self, attr, tuple(value))


@dataclass(frozen=True)
class DelayRuleOff:
    """Remove the named delay rule at time ``at``."""

    at: float
    name: str


FaultEvent = Union[
    Crash, Recover, PartitionStart, PartitionHeal, DelayRuleOn, DelayRuleOff
]

_EVENT_TYPES = {
    cls.__name__: cls
    for cls in (Crash, Recover, PartitionStart, PartitionHeal, DelayRuleOn, DelayRuleOff)
}


# ----------------------------------------------------------------------
# Byzantine roles
# ----------------------------------------------------------------------

BYZANTINE_BEHAVIORS = (
    "silent",
    "crash_after",
    "equivocate",
    "bad_catchup",
    "throttle_leader",
)


@dataclass(frozen=True)
class ByzantineRole:
    """A statically corrupted process.

    * ``silent`` — never takes a step;
    * ``crash_after`` — runs the honest protocol, halts at ``at``;
    * ``equivocate`` — a Byzantine leader of ``view`` showing
      ``values[0]`` to most processes and ``values[1]`` to ``minority``,
      then acknowledging both sides (only supported by protocol families
      whose adapter knows how to forge the messages);
    * ``bad_catchup`` — an SMR replica that runs the honest replication
      protocol but answers peer catchup requests with forged state
      (bogus checkpoint, corrupted log entries, inflated progress) —
      the adversary the state-transfer validation exists to defeat;
    * ``throttle_leader`` — an SMR replica that runs the honest protocol
      but delays every protocol message it sends by ``at`` (reused as
      the per-message extra delay): slow enough to hurt tail latency,
      live enough that timeouts never fire — the adversary the
      leader-performance monitor exists to demote.
    """

    pid: int
    behavior: str = "silent"
    at: float = 1.0
    view: int = 1
    values: Tuple[Any, Any] = ("x", "y")
    minority: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.behavior not in BYZANTINE_BEHAVIORS:
            raise ScenarioError(
                f"unknown Byzantine behavior {self.behavior!r}; "
                f"expected one of {BYZANTINE_BEHAVIORS}"
            )
        object.__setattr__(self, "minority", tuple(self.minority))
        object.__setattr__(self, "values", tuple(self.values))


# ----------------------------------------------------------------------
# Workload
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class WorkloadSpec:
    """Client workload for SMR scenarios.

    ``rate`` is the inter-batch gap in simulated time; ``0`` means
    closed-loop (up to ``window`` commands in flight, refilled on
    completion).  ``batch_size`` commands are submitted per burst in
    open-loop mode.  Keys are drawn from ``key_space`` uniformly, except
    a ``hot_fraction`` of commands that all hit key 0 (a skewed /
    contended workload).
    """

    clients: int = 1
    requests_per_client: int = 3
    rate: float = 0.0
    batch_size: int = 1
    window: int = 1
    key_space: int = 8
    hot_fraction: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.clients < 1 or self.requests_per_client < 1:
            raise ScenarioError("workload needs >= 1 client and >= 1 request")
        if self.batch_size < 1:
            raise ScenarioError("batch_size must be >= 1")
        if self.window < 1:
            raise ScenarioError("window must be >= 1")
        if not (0.0 <= self.hot_fraction <= 1.0):
            raise ScenarioError("hot_fraction must be in [0, 1]")
        if self.key_space < 1:
            raise ScenarioError("key_space must be >= 1")

    def commands_for(self, client_index: int) -> List[Tuple[Any, ...]]:
        """The deterministic command sequence for one client."""
        rng = Random(f"{self.seed}/{client_index}")
        commands: List[Tuple[Any, ...]] = []
        for i in range(self.requests_per_client):
            if self.hot_fraction and rng.random() < self.hot_fraction:
                key = "k0"
            else:
                key = f"k{rng.randrange(self.key_space)}"
            if rng.random() < 0.25:
                commands.append(("get", key))
            else:
                commands.append(("set", key, f"c{client_index}.{i}"))
        return commands

    @property
    def total_requests(self) -> int:
        return self.clients * self.requests_per_client


# ----------------------------------------------------------------------
# The scenario spec
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete, reproducible execution description."""

    name: str
    protocol: str = "fbft"
    n: int = 4
    f: int = 1
    t: Optional[int] = None
    delay: DelaySpec = field(default_factory=DelaySpec)
    faults: Tuple[FaultEvent, ...] = ()
    byzantine: Tuple[ByzantineRole, ...] = ()
    workload: Optional[WorkloadSpec] = None
    #: Simulated-time budget for the run.
    timeout: float = 600.0
    #: Oracle expectations.
    expect_decision: bool = True
    expect_fast_path: bool = False
    liveness_deadline: Optional[float] = None
    #: Adapter-specific knobs (e.g. ``base_timeout``, or the deliberately
    #: unsafe ``fast_quorum_delta`` used by regression tests).
    protocol_options: Dict[str, Any] = field(default_factory=dict)
    description: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        object.__setattr__(self, "byzantine", tuple(self.byzantine))

    # ------------------------------------------------------------------
    # Derived views of the schedule
    # ------------------------------------------------------------------

    @property
    def byzantine_pids(self) -> Tuple[int, ...]:
        return tuple(sorted(r.pid for r in self.byzantine))

    @property
    def crashed_forever_pids(self) -> Tuple[int, ...]:
        """Pids crashed by the schedule and never recovered."""
        down: set = set()
        for event in sorted(self.faults, key=lambda e: e.at):
            if isinstance(event, Crash):
                down.add(event.pid)
            elif isinstance(event, Recover):
                down.discard(event.pid)
        return tuple(sorted(down))

    @property
    def faulty_pids(self) -> Tuple[int, ...]:
        """Everyone the fault budget must cover: Byzantine + crashed.

        Only protocol participants (pids < n) count — a crashed SMR
        *client* (pid >= n) consumes no replica fault budget.
        """
        crashed = set(self.crashed_forever_pids)
        for event in self.faults:
            if isinstance(event, Crash):
                crashed.add(event.pid)  # even a recovered crash is a fault
        faulty = crashed | set(self.byzantine_pids)
        return tuple(sorted(pid for pid in faulty if pid < self.n))

    def validate(self) -> None:
        """Structural checks independent of the protocol adapter."""
        if self.n < 2:
            raise ScenarioError(f"n={self.n} too small")
        if self.f < 0:
            raise ScenarioError(f"f={self.f} must be >= 0")
        pids = set(range(self.n))
        for role in self.byzantine:
            if role.pid not in pids:
                raise ScenarioError(f"Byzantine pid {role.pid} not in 0..{self.n - 1}")
            if not set(role.minority) <= pids:
                raise ScenarioError(f"equivocation minority {role.minority} outside cluster")
        if len(set(self.byzantine_pids)) != len(self.byzantine):
            raise ScenarioError("duplicate Byzantine role pids")
        crashed_pids = set()
        for event in self.faults:
            if event.at < 0:
                raise ScenarioError(f"fault event before time 0: {event}")
            if isinstance(event, (Crash, Recover)):
                if event.pid not in pids and (
                    self.workload is None
                    or event.pid >= self.n + self.workload.clients
                ):
                    raise ScenarioError(f"fault event pid {event.pid} unknown: {event}")
                if isinstance(event, Crash):
                    crashed_pids.add(event.pid)
            if isinstance(event, PartitionStart):
                for group in event.groups:
                    if not set(group) <= pids:
                        raise ScenarioError(f"partition group {group} outside cluster")
        overlap = set(self.byzantine_pids) & crashed_pids
        if overlap:
            raise ScenarioError(
                f"pids {sorted(overlap)} are both Byzantine and schedule-crashed"
            )
        if len(self.faulty_pids) > self.f:
            raise ScenarioError(
                f"fault budget exceeded: {len(self.faulty_pids)} faulty pids "
                f"{self.faulty_pids} > f={self.f}"
            )

    # ------------------------------------------------------------------
    # Serialization (fuzz reproducers, CLI --json)
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        data["faults"] = [
            {"event": type(e).__name__, **asdict(e)} for e in self.faults
        ]
        data["t"] = self.t
        if self.workload is None:
            data.pop("workload")
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScenarioSpec":
        payload = dict(data)
        payload["delay"] = DelaySpec(**payload.get("delay", {}))
        faults: List[FaultEvent] = []
        for entry in payload.get("faults", ()):
            entry = dict(entry)
            event_cls = _EVENT_TYPES[entry.pop("event")]
            if "groups" in entry:
                entry["groups"] = tuple(tuple(g) for g in entry["groups"])
            faults.append(event_cls(**entry))
        payload["faults"] = tuple(faults)
        payload["byzantine"] = tuple(
            ByzantineRole(**dict(role, values=tuple(role["values"])))
            for role in payload.get("byzantine", ())
        )
        if payload.get("workload") is not None:
            payload["workload"] = WorkloadSpec(**payload["workload"])
        return cls(**payload)

    def with_(self, **changes: Any) -> "ScenarioSpec":
        """A modified copy (``dataclasses.replace`` with a shorter name)."""
        return replace(self, **changes)
