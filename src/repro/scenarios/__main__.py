"""CLI for the scenario engine.

Usage::

    python -m repro.scenarios list
    python -m repro.scenarios run fast-path-clean
    python -m repro.scenarios run --all [--json] [--metrics-out FILE] [--trace-out FILE]
        [--record-out DIR]
    python -m repro.scenarios fuzz --seeds 25 [--start 0] [--protocols fbft,pbft]
        [--json [FILE]] [--max-seconds 60]
    python -m repro.scenarios digest [--check PATH | --update PATH]

Exit status is 0 when every invariant oracle passed, 1 otherwise — so the
commands double as CI smoke checks.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List

from ..analysis.report import format_scenario_results, format_table
from .fuzz import DEFAULT_FUZZ_PROTOCOLS, run_fuzz
from .library import SCENARIOS, get_scenario
from .runner import run_scenario
from .spec import ScenarioError


def _cmd_list(_args: argparse.Namespace) -> int:
    rows = [
        [
            spec.name,
            spec.protocol,
            f"{spec.n}/{spec.f}" + (f"/{spec.t}" if spec.t is not None else ""),
            spec.delay.kind,
            len(spec.faults) + len(spec.byzantine),
            spec.description.split(":")[0][:58],
        ]
        for spec in SCENARIOS.values()
    ]
    print(format_table(
        ["scenario", "protocol", "n/f[/t]", "delay", "faults", "description"], rows
    ))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    names: List[str] = list(SCENARIOS) if args.all else args.names
    if not names:
        print("run: give scenario names or --all (see 'list')", file=sys.stderr)
        return 2
    exit_code = 0
    payloads = []
    results = []
    metrics_accum = {} if args.metrics_out else None
    trace_accum = {} if args.trace_out else None
    record_dir = args.record_out or None
    dumped = []
    for name in names:
        metrics = tracer = recorder = None
        if metrics_accum is not None:
            from ..obs.metrics import MetricsRegistry

            metrics = MetricsRegistry()
        if trace_accum is not None:
            from ..obs.tracing import CausalTracer

            tracer = CausalTracer()
        if record_dir is not None:
            from ..obs.recorder import FlightRecorder

            recorder = FlightRecorder()
        result = run_scenario(
            get_scenario(name), metrics=metrics, tracer=tracer, recorder=recorder
        )
        results.append(result)
        if metrics_accum is not None:
            metrics_accum[name] = result.metrics
        if trace_accum is not None:
            trace_accum[name] = {
                "emitted": tracer.emitted,
                "dropped": tracer.dropped,
                "events": tracer.to_dicts(),
            }
        if recorder is not None and not result.ok:
            # Dump-on-violation: the attached recorder is digest-safe, so
            # the failing run's own record is the artifact — no re-run.
            import os

            os.makedirs(record_dir, exist_ok=True)
            path = os.path.join(record_dir, f"flight-{name}.jsonl")
            recorder.dump(path)
            dumped.append(path)
        if args.json:
            payloads.append(result.to_dict())
        else:
            print(result.summary())
            print()
        if not result.ok:
            exit_code = 1
    if metrics_accum is not None:
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            json.dump(metrics_accum, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote metrics for {len(metrics_accum)} scenario(s) to {args.metrics_out}")
    if trace_accum is not None:
        with open(args.trace_out, "w", encoding="utf-8") as fh:
            json.dump(trace_accum, fh, indent=2)
            fh.write("\n")
        print(f"wrote traces for {len(trace_accum)} scenario(s) to {args.trace_out}")
    for path in dumped:
        print(f"wrote flight record of failing scenario to {path}")
    if args.json:
        print(json.dumps(payloads if args.all or len(names) > 1 else payloads[0],
                         indent=2))
    elif len(results) > 1:
        print(format_scenario_results(results))
    return exit_code


def _cmd_fuzz(args: argparse.Namespace) -> int:
    protocols = tuple(args.protocols.split(",")) if args.protocols else DEFAULT_FUZZ_PROTOCOLS
    def progress(seed: int, result) -> None:
        if not args.quiet:
            status = "ok" if result.ok else "FAIL"
            print(
                f"seed {seed:>4} [{result.spec.protocol:>5}] "
                f"n={result.spec.n} f={result.spec.f} -> {status}"
            )
    report = run_fuzz(
        seeds=args.seeds,
        start=args.start,
        protocols=protocols,
        shrink=not args.no_shrink,
        on_progress=progress,
        max_seconds=args.max_seconds,
    )
    if args.json is not None:
        payload = json.dumps(report.to_dict(), indent=2, sort_keys=True)
        if args.json:
            with open(args.json, "w", encoding="utf-8") as fh:
                fh.write(payload + "\n")
            print(f"wrote fuzz report to {args.json}")
            print(report.summary())
        else:
            print(payload)
    else:
        print(report.summary())
    return 0 if report.ok else 1


def _cmd_digest(args: argparse.Namespace) -> int:
    """Print (or check/update) the canonical library's trace digests.

    Each scenario is run twice; a run-to-run mismatch is reported as
    ``NONDETERMINISTIC`` and fails the command.  ``--check`` additionally
    compares against a recorded golden file (the determinism gate CI
    runs); ``--update`` rewrites that file after a deliberate change to
    the scenario library or the protocols.
    """
    golden = {}
    if args.check:
        with open(args.check, encoding="utf-8") as fh:
            golden = json.load(fh)
    digests = {}
    exit_code = 0
    for name in SCENARIOS:
        first = run_scenario(get_scenario(name)).trace_digest
        second = run_scenario(get_scenario(name)).trace_digest
        digests[name] = first
        status = "ok"
        if first != second:
            status = "NONDETERMINISTIC"
            exit_code = 1
        elif args.check:
            if name not in golden:
                status = "UNRECORDED"
                exit_code = 1
            elif golden[name] != first:
                status = "MISMATCH vs golden"
                exit_code = 1
        print(f"{name:<24} {first[:16]}  {status}")
    if args.check:
        for name in sorted(set(golden) - set(SCENARIOS)):
            print(f"{name:<24} {'-':<16}  MISSING from library")
            exit_code = 1
    if args.update:
        if exit_code != 0:
            print(
                "refusing to write golden digests: fix the failures above "
                "first (a nondeterministic scenario would pin an arbitrary "
                "digest)",
                file=sys.stderr,
            )
            return exit_code
        with open(args.update, "w", encoding="utf-8") as fh:
            json.dump(digests, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {len(digests)} digests to {args.update}")
    return exit_code


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="Run declarative fault/workload scenarios with invariant oracles.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the canonical scenario library")

    run_parser = sub.add_parser("run", help="run named scenarios (or --all)")
    run_parser.add_argument("names", nargs="*", help="scenario names")
    run_parser.add_argument("--all", action="store_true", help="run the whole library")
    run_parser.add_argument("--json", action="store_true", help="machine-readable output")
    run_parser.add_argument(
        "--metrics-out", metavar="FILE", default="",
        help="attach a MetricsRegistry per scenario and write all snapshots "
             "to this JSON file",
    )
    run_parser.add_argument(
        "--trace-out", metavar="FILE", default="",
        help="attach a CausalTracer per scenario and write all trace events "
             "to this JSON file",
    )
    run_parser.add_argument(
        "--record-out", metavar="DIR", default="",
        help="attach a FlightRecorder per scenario and dump failing runs "
             "as DIR/flight-<name>.jsonl (see python -m repro.postmortem)",
    )

    fuzz_parser = sub.add_parser("fuzz", help="run the seeded scenario fuzzer")
    fuzz_parser.add_argument("--seeds", type=int, default=25, help="number of seeds")
    fuzz_parser.add_argument("--start", type=int, default=0, help="first seed")
    fuzz_parser.add_argument(
        "--protocols", default="",
        help=f"comma-separated protocol keys (default {','.join(DEFAULT_FUZZ_PROTOCOLS)})",
    )
    fuzz_parser.add_argument("--no-shrink", action="store_true",
                             help="skip shrinking failing seeds")
    fuzz_parser.add_argument("--quiet", action="store_true",
                             help="no per-seed progress lines")
    fuzz_parser.add_argument(
        "--json", nargs="?", const="", default=None, metavar="FILE",
        help="machine-readable output (to FILE when given, else stdout)",
    )
    fuzz_parser.add_argument(
        "--max-seconds", type=float, default=None,
        help="wall-clock budget; the report records which limit fired",
    )

    digest_parser = sub.add_parser(
        "digest", help="run every canonical scenario twice and report trace digests"
    )
    digest_parser.add_argument(
        "--check", metavar="PATH", default="",
        help="golden digest JSON to compare against (non-zero exit on mismatch)",
    )
    digest_parser.add_argument(
        "--update", metavar="PATH", default="",
        help="write the computed digests to this JSON file",
    )

    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(args)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "digest":
            return _cmd_digest(args)
        return _cmd_fuzz(args)
    except ScenarioError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
