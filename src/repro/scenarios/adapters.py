"""Protocol adapters: one spec, any protocol family.

Each adapter knows how to turn a :class:`~repro.scenarios.spec.ScenarioSpec`
into a list of simulated processes (honest instances plus statically
corrupted ones), which pids the oracles should hold to account, and —
where the family has transferable artifacts — how to audit certificates
found in the trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..baselines.fab import FaBConfig, FaBProcess
from ..baselines.optimistic import OptimisticConfig, OptimisticProcess
from ..baselines.paxos import PaxosConfig, PaxosProcess
from ..baselines.pbft import PBFTConfig, PBFTProcess
from ..byzantine.behaviors import (
    ByzantineForge,
    CrashAfter,
    EquivocatingLeader,
    ScriptedSend,
    SilentProcess,
)
from ..core.certificates import ProgressCertificate, progress_certificate_valid
from ..core.config import (
    DurabilityConfig,
    MonitorConfig,
    ProtocolConfig,
    ReplicationConfig,
)
from ..core.fastbft import FastBFTProcess
from ..core.generalized import GeneralizedFBFTProcess
from ..core.messages import Propose
from ..core.quorums import (
    min_processes_fab,
    min_processes_fast_bft,
    min_processes_paxos_crash,
    min_processes_pbft,
)
from ..crypto.keys import KeyRegistry
from ..sim.network import DelayRule
from ..sim.process import Process
from ..smr.backends import smr_backend
from ..smr.client import SMRClient
from ..smr.kvstore import KVStore
from ..smr.replica import SMRReplica, fbft_instance_factory
from ..storage.catchup import CatchupReply, CatchupRequest
from ..storage.checkpoint import Checkpoint, state_digest
from .spec import ByzantineRole, ScenarioError, ScenarioSpec

__all__ = [
    "ADAPTERS",
    "BuiltScenario",
    "RelaxedFastQuorumConfig",
    "ScenarioAdapter",
]


@dataclass(frozen=True)
class RelaxedFastQuorumConfig(ProtocolConfig):
    """A deliberately *unsafe* configuration for bug-injection tests.

    Decides on ``fast_quorum_delta`` fewer acks than the protocol
    requires.  The scenario engine's agreement oracle must catch the
    resulting disagreement — that is the regression test for the oracles
    themselves, not a supported deployment.
    """

    fast_quorum_delta: int = 0

    @property
    def fast_quorum(self) -> int:
        return super().fast_quorum - self.fast_quorum_delta


@dataclass
class BuiltScenario:
    """Everything the runner and the oracles need about a materialized spec."""

    processes: List[Process]
    #: Pids running honest code (agreement must hold among them, even if
    #: some crash mid-run).
    honest_pids: Tuple[int, ...]
    #: Honest pids never crashed by the schedule — the ones liveness
    #: obliges to decide.
    live_pids: Tuple[int, ...]
    #: Values a decision may legitimately take (None disables the check).
    allowed_values: Optional[Set[Any]]
    adapter: "ScenarioAdapter"
    mode: str = "consensus"  # or "smr"
    registry: Optional[KeyRegistry] = None
    config: Any = None
    replicas: List[SMRReplica] = field(default_factory=list)
    clients: List[SMRClient] = field(default_factory=list)

    def process_by_pid(self, pid: int) -> Process:
        for proc in self.processes:
            if proc.pid == pid:
                return proc
        raise KeyError(pid)


def _split_pids(spec: ScenarioSpec) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    # Precompute both membership sets once; pid order comes from the
    # range() sweep, so the output stays sorted regardless.
    byz = frozenset(spec.byzantine_pids)
    faulty = frozenset(spec.faulty_pids)
    honest = tuple(pid for pid in range(spec.n) if pid not in byz)
    live = tuple(pid for pid in honest if pid not in faulty)
    return honest, live


def _check_options(spec: ScenarioSpec, allowed: Sequence[str]) -> Dict[str, Any]:
    options = dict(spec.protocol_options)
    unknown = set(options) - set(allowed)
    if unknown:
        raise ScenarioError(
            f"protocol {spec.protocol!r} does not understand options {sorted(unknown)}"
        )
    return options


class ScenarioAdapter:
    """Base adapter: generic Byzantine behaviors, no certificate audit."""

    key: str = ""
    #: Whether the family tolerates Byzantine (vs only crash) faults.
    byzantine: bool = True
    #: Common-case decision latency in message delays (the family's claim).
    claimed_fast_delays: int = 2
    behaviors: Tuple[str, ...] = ("silent", "crash_after")
    option_names: Tuple[str, ...] = ("base_timeout",)

    def min_n(self, f: int, t: int) -> int:
        raise NotImplementedError

    def build(self, spec: ScenarioSpec) -> BuiltScenario:
        raise NotImplementedError

    # -- hooks ----------------------------------------------------------

    def make_honest(self, pid: int, spec: ScenarioSpec, options: Dict[str, Any]) -> Process:
        raise NotImplementedError

    def make_byzantine(
        self, role: ByzantineRole, spec: ScenarioSpec, options: Dict[str, Any]
    ) -> Process:
        if role.behavior not in self.behaviors:
            raise ScenarioError(
                f"protocol {self.key!r} does not support Byzantine behavior "
                f"{role.behavior!r} (supported: {self.behaviors})"
            )
        if role.behavior == "silent":
            return SilentProcess(role.pid)
        if role.behavior == "crash_after":
            return CrashAfter(self.make_honest(role.pid, spec, options), role.at)
        raise ScenarioError(
            f"behavior {role.behavior!r} needs a protocol-specific forge"
        )

    def certificate_errors(
        self, built: BuiltScenario, sends: Sequence[Any]
    ) -> Optional[List[str]]:
        """Audit certificates in the trace; None = not applicable."""
        return None

    # -- shared assembly ------------------------------------------------

    def _assemble(self, spec: ScenarioSpec, options: Dict[str, Any]) -> BuiltScenario:
        # The runner validates the spec once before dispatching here.
        if not self.byzantine and spec.byzantine:
            raise ScenarioError(
                f"protocol {self.key!r} is crash-fault only; Byzantine roles "
                f"{spec.byzantine_pids} are not expressible"
            )
        roles = {role.pid: role for role in spec.byzantine}
        processes: List[Process] = []
        for pid in range(spec.n):
            if pid in roles:
                processes.append(self.make_byzantine(roles[pid], spec, options))
            else:
                processes.append(self.make_honest(pid, spec, options))
        honest, live = _split_pids(spec)
        allowed = {f"v{pid}" for pid in honest}
        for role in spec.byzantine:
            if role.behavior == "crash_after":
                allowed.add(f"v{role.pid}")  # honest until the crash
            if role.behavior == "equivocate":
                allowed.update(role.values)
        return BuiltScenario(
            processes=processes,
            honest_pids=honest,
            live_pids=live,
            allowed_values=allowed,
            adapter=self,
        )


# ----------------------------------------------------------------------
# This paper's protocol
# ----------------------------------------------------------------------


class FbftAdapter(ScenarioAdapter):
    """FBFT — vanilla (t = f) or generalized (t < f, slow path on)."""

    key = "fbft"
    byzantine = True
    claimed_fast_delays = 2
    behaviors = ("silent", "crash_after", "equivocate")
    option_names = (
        "base_timeout",
        "cert_scheme",
        "exclude_equivocator",
        "fast_quorum_delta",
    )

    def min_n(self, f: int, t: int) -> int:
        return min_processes_fast_bft(f, t)

    def _config(self, spec: ScenarioSpec, options: Dict[str, Any]) -> ProtocolConfig:
        t = spec.t if spec.t is not None else spec.f
        delta = int(options.get("fast_quorum_delta", 0))
        if delta:
            return RelaxedFastQuorumConfig(
                n=spec.n, f=spec.f, t=t, fast_quorum_delta=delta
            )
        return ProtocolConfig(n=spec.n, f=spec.f, t=t)

    def build(self, spec: ScenarioSpec) -> BuiltScenario:
        options = _check_options(spec, self.option_names)
        config = self._config(spec, options)
        registry = KeyRegistry.for_processes(config.process_ids)
        built = self._assemble_with(spec, options, config, registry)
        built.registry = registry
        built.config = config
        return built

    def _assemble_with(self, spec, options, config, registry) -> BuiltScenario:
        # Stash for make_honest/make_byzantine (called from _assemble).
        self._current = (config, registry)
        try:
            return self._assemble(spec, options)
        finally:
            del self._current

    def make_honest(self, pid: int, spec: ScenarioSpec, options: Dict[str, Any]) -> Process:
        config, registry = self._current
        cls = FastBFTProcess if config.is_vanilla else GeneralizedFBFTProcess
        kwargs: Dict[str, Any] = {}
        if "base_timeout" in options:
            kwargs["base_timeout"] = options["base_timeout"]
        if "cert_scheme" in options:
            kwargs["cert_scheme"] = options["cert_scheme"]
        if "exclude_equivocator" in options:
            kwargs["exclude_equivocator"] = options["exclude_equivocator"]
        return cls(pid, config, registry, f"v{pid}", **kwargs)

    def make_byzantine(
        self, role: ByzantineRole, spec: ScenarioSpec, options: Dict[str, Any]
    ) -> Process:
        if role.behavior != "equivocate":
            return super().make_byzantine(role, spec, options)
        config, registry = self._current
        if config.leader_of(role.view) != role.pid:
            raise ScenarioError(
                f"equivocate: pid {role.pid} does not lead view {role.view}"
            )
        value_a, value_b = role.values
        minority = set(role.minority)
        others = [pid for pid in range(spec.n) if pid != role.pid]
        assignments = {
            pid: (value_b if pid in minority else value_a) for pid in others
        }
        majority = tuple(pid for pid in others if pid not in minority)
        forge = ByzantineForge(role.pid, registry, config)
        ack_time = spec.delay.delta
        extra = (
            (ScriptedSend(
                time=ack_time,
                to=tuple(sorted(minority)),
                payload=forge.ack(value_b, role.view),
            ),)
            if minority
            else ()
        )
        return EquivocatingLeader(
            role.pid,
            registry,
            config,
            view=role.view,
            assignments=assignments,
            ack_value=value_a,
            ack_to=majority,
            ack_time=ack_time,
            extra_script=extra,
        )

    def certificate_errors(
        self, built: BuiltScenario, sends: Sequence[Any]
    ) -> Optional[List[str]]:
        """Every progress certificate attached to an honest proposal must
        be well-formed (enough valid confirmation signatures)."""
        config, registry = built.config, built.registry
        if config is None or registry is None:
            return None
        if built.processes and getattr(
            built.process_by_pid(built.honest_pids[0]), "cert_scheme", "bounded"
        ) != "bounded":
            return None  # the naive scheme has its own validator
        honest = set(built.honest_pids)
        errors: List[str] = []
        for envelope in sends:
            payload = envelope.payload
            if not isinstance(payload, Propose) or envelope.src not in honest:
                continue
            if payload.view == 1:
                if payload.cert is not None:
                    errors.append(
                        f"view-1 proposal from {envelope.src} carries a certificate"
                    )
                continue
            cert = payload.cert
            if not isinstance(cert, ProgressCertificate):
                errors.append(
                    f"honest proposal for view {payload.view} from "
                    f"{envelope.src} lacks a progress certificate"
                )
                continue
            if not progress_certificate_valid(
                cert, payload.value, payload.view, registry, config.cert_quorum
            ):
                errors.append(
                    f"invalid progress certificate on proposal "
                    f"({payload.value!r}, view {payload.view}) from {envelope.src}"
                )
        return errors


# ----------------------------------------------------------------------
# Baselines
# ----------------------------------------------------------------------


class PbftAdapter(ScenarioAdapter):
    key = "pbft"
    byzantine = True
    claimed_fast_delays = 3

    def min_n(self, f: int, t: int) -> int:
        return min_processes_pbft(f)

    def build(self, spec: ScenarioSpec) -> BuiltScenario:
        options = _check_options(spec, self.option_names)
        built = self._assemble(spec, options)
        built.config = PBFTConfig(n=spec.n, f=spec.f)
        return built

    def make_honest(self, pid: int, spec: ScenarioSpec, options: Dict[str, Any]) -> Process:
        config = PBFTConfig(n=spec.n, f=spec.f)
        return PBFTProcess(
            pid, config, f"v{pid}",
            base_timeout=options.get("base_timeout", 12.0),
        )


class FabAdapter(ScenarioAdapter):
    key = "fab"
    byzantine = True
    claimed_fast_delays = 2

    def min_n(self, f: int, t: int) -> int:
        return min_processes_fab(f, t)

    def build(self, spec: ScenarioSpec) -> BuiltScenario:
        options = _check_options(spec, self.option_names)
        built = self._assemble(spec, options)
        built.config = FaBConfig(
            n=spec.n, f=spec.f, t=spec.t if spec.t is not None else spec.f
        )
        return built

    def make_honest(self, pid: int, spec: ScenarioSpec, options: Dict[str, Any]) -> Process:
        config = FaBConfig(
            n=spec.n, f=spec.f, t=spec.t if spec.t is not None else spec.f
        )
        return FaBProcess(
            pid, config, f"v{pid}",
            base_timeout=options.get("base_timeout", 12.0),
        )


class PaxosAdapter(ScenarioAdapter):
    key = "paxos"
    byzantine = False
    claimed_fast_delays = 2
    behaviors = ()

    def min_n(self, f: int, t: int) -> int:
        return min_processes_paxos_crash(f)

    def build(self, spec: ScenarioSpec) -> BuiltScenario:
        options = _check_options(spec, self.option_names)
        built = self._assemble(spec, options)
        built.config = PaxosConfig(n=spec.n, f=spec.f)
        return built

    def make_honest(self, pid: int, spec: ScenarioSpec, options: Dict[str, Any]) -> Process:
        config = PaxosConfig(n=spec.n, f=spec.f)
        return PaxosProcess(
            pid, config, f"v{pid}",
            base_timeout=options.get("base_timeout", 12.0),
        )


class OptimisticAdapter(ScenarioAdapter):
    key = "optimistic"
    byzantine = True
    claimed_fast_delays = 2
    option_names = ("base_timeout", "fallback_timeout")

    def min_n(self, f: int, t: int) -> int:
        return min_processes_pbft(f)

    def build(self, spec: ScenarioSpec) -> BuiltScenario:
        options = _check_options(spec, self.option_names)
        built = self._assemble(spec, options)
        built.config = self._config(spec, options)
        return built

    def _config(self, spec: ScenarioSpec, options: Dict[str, Any]) -> OptimisticConfig:
        return OptimisticConfig(
            n=spec.n, f=spec.f,
            fallback_timeout=options.get("fallback_timeout", 4.0),
        )

    def make_honest(self, pid: int, spec: ScenarioSpec, options: Dict[str, Any]) -> Process:
        return OptimisticProcess(
            pid, self._config(spec, options), f"v{pid}",
            base_timeout=options.get("base_timeout", 12.0),
        )


# ----------------------------------------------------------------------
# State machine replication (workload scenarios)
# ----------------------------------------------------------------------


class PacedSMRClient(SMRClient):
    """An SMR client submitting batches at a fixed rate (open loop)."""

    def __init__(self, *args: Any, gap: float, batch: int, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.gap = gap
        self.batch = batch
        self._planned = 0

    def load_workload(self, commands, closed_loop: bool = False) -> None:
        super().load_workload(list(commands), closed_loop=False)
        self._planned = len(commands)

    def on_start(self) -> None:
        pending, self._workload = self._workload, []
        batches = [
            pending[i : i + self.batch] for i in range(0, len(pending), self.batch)
        ]
        for index, chunk in enumerate(batches):
            self.ctx.set_timer(
                f"paced-{index}",
                index * self.gap,
                lambda c=chunk: [self.submit(command) for command in c],
            )

    @property
    def all_completed(self) -> bool:
        return self.completed_count == self._planned


class LyingCatchupReplica(SMRReplica):
    """A Byzantine replica that runs the honest replication protocol but
    forges its catchup replies: a self-consistent (correctly hashed) but
    uncertified checkpoint full of garbage state, corrupted log entries
    for every requested slot, and a wildly inflated progress report.

    Each forgery targets one validation layer of the catchup protocol:
    the checkpoint must die on certificate validation, the entries must
    die on ``f + 1`` cross-checking, and the inflated ``high_slot`` must
    be neutralized by the ``(f + 1)``-th-highest target rule.
    """

    FORGED_STATE = {"k0": "forged-by-byzantine-responder"}

    def _handle_catchup_request(self, sender: int, request: CatchupRequest) -> None:
        from ..smr.replica import Batch

        state = dict(self.FORGED_STATE)
        forged_checkpoint = Checkpoint(
            slot=request.low_slot + 50,
            state=state,
            digest=state_digest(state),  # hashes fine; has no certificate
            cert=None,
        )
        forged_entries = tuple(
            (
                slot,
                Batch(entries=((999, slot, ("set", "k0", "forged")),)),
            )
            for slot in range(request.low_slot, request.low_slot + 4)
        )
        self.send(
            sender,
            CatchupReply(
                low_slot=request.low_slot,
                high_slot=request.low_slot + 1_000_000,
                checkpoint=forged_checkpoint,
                entries=forged_entries,
            ),
        )


class ThrottlingLeaderReplica(SMRReplica):
    """A Byzantine leader that stays *just* live: it runs the honest
    replication protocol but installs a network delay rule adding
    ``throttle`` to every protocol message it sends, so slots decide —
    slowly.  The pacemaker never fires (the leader is not *silent*), so
    only the performance monitor can rotate it out.
    """

    def __init__(self, *args: Any, throttle: float, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.throttle = throttle

    def on_start(self) -> None:
        self.ctx.network.set_delay_rule(
            DelayRule(
                name=f"throttle-leader-{self.pid}",
                extra_delay=self.throttle,
                src=frozenset({self.pid}),
                payload_types=("SlotMessage",),
            )
        )
        super().on_start()


class SmrAdapter(ScenarioAdapter):
    """The full SMR stack (replicas + clients) over a consensus backend.

    Replicas are pids ``0..n-1``; clients ``n..n+clients-1``.  The spec's
    workload section is mandatory; its commands drive the KV store.  The
    replication engine (batching, pipelining) is tuned through
    ``protocol_options``: ``batch_size``, ``batch_timeout`` and
    ``pipeline_depth`` (see :class:`~repro.core.config.ReplicationConfig`);
    the durability subsystem through ``durability`` (bool),
    ``checkpoint_interval`` and ``catchup_retry`` (see
    :class:`~repro.core.config.DurabilityConfig`); the leader-performance
    monitor through ``monitor`` (bool), ``monitor_window``,
    ``monitor_ratio``, ``monitor_min_samples``, ``monitor_min_drain`` and
    ``monitor_cooldown`` (see :class:`~repro.core.config.MonitorConfig`).
    ``monitor_expect_rotation`` is read by the leader-rotation oracle,
    not by the build.
    """

    byzantine = True
    behaviors = ("silent", "bad_catchup", "throttle_leader")
    option_names = (
        "base_timeout",
        "batch_size",
        "batch_timeout",
        "pipeline_depth",
        "durability",
        "checkpoint_interval",
        "catchup_retry",
        "monitor",
        "monitor_window",
        "monitor_ratio",
        "monitor_min_samples",
        "monitor_min_drain",
        "monitor_cooldown",
        "monitor_expect_rotation",
    )

    # -- backend hooks --------------------------------------------------

    def backend(
        self, spec: ScenarioSpec, options: Dict[str, Any]
    ) -> Tuple[Any, Optional[KeyRegistry], Any]:
        """Return (config, registry-or-None, instance_factory)."""
        raise NotImplementedError

    def _replication(self, options: Dict[str, Any]) -> ReplicationConfig:
        return ReplicationConfig(
            batch_size=int(options.get("batch_size", 8)),
            batch_timeout=float(options.get("batch_timeout", 0.0)),
            pipeline_depth=int(options.get("pipeline_depth", 4)),
        )

    def _durability(self, options: Dict[str, Any]) -> Optional[DurabilityConfig]:
        if not options.get("durability"):
            return None
        return DurabilityConfig(
            checkpoint_interval=int(options.get("checkpoint_interval", 4)),
            catchup_retry=float(options.get("catchup_retry", 20.0)),
        )

    def _monitor(self, options: Dict[str, Any]) -> Optional[MonitorConfig]:
        if not options.get("monitor"):
            return None
        return MonitorConfig(
            window=float(options.get("monitor_window", 30.0)),
            degradation_ratio=float(options.get("monitor_ratio", 4.0)),
            min_samples=int(options.get("monitor_min_samples", 3)),
            min_drain=float(options.get("monitor_min_drain", 2.0)),
            cooldown=float(options.get("monitor_cooldown", 60.0)),
        )

    def build(self, spec: ScenarioSpec) -> BuiltScenario:
        options = _check_options(spec, self.option_names)
        if spec.workload is None:
            raise ScenarioError(
                f"protocol {self.key!r} requires a workload spec"
            )
        config, registry, factory = self.backend(spec, options)
        replication = self._replication(options)
        durability = self._durability(options)
        monitor = self._monitor(options)
        shared_registry = registry if (durability or monitor is not None) else None
        roles = {role.pid: role for role in spec.byzantine}
        processes: List[Process] = []
        replicas: List[SMRReplica] = []
        for pid in range(spec.n):
            if pid in roles:
                role = roles[pid]
                if role.behavior == "bad_catchup":
                    # Honest replication, forged state transfer.  Not in
                    # ``replicas``: the oracles hold honest code to
                    # account, this one only has to fail at corrupting
                    # its recovering peers.
                    processes.append(
                        LyingCatchupReplica(
                            pid, spec.n, spec.f, KVStore(), factory,
                            replication=replication,
                            durability=durability,
                            registry=shared_registry,
                            monitor=monitor,
                        )
                    )
                    continue
                if role.behavior == "throttle_leader":
                    # Honest replication at a crawl (``at`` is reused as
                    # the per-message extra delay).  Not in ``replicas``:
                    # the rotation oracle watches the honest monitors.
                    processes.append(
                        ThrottlingLeaderReplica(
                            pid, spec.n, spec.f, KVStore(), factory,
                            replication=replication,
                            durability=durability,
                            registry=shared_registry,
                            monitor=monitor,
                            throttle=float(role.at),
                        )
                    )
                    continue
                if role.behavior != "silent":
                    raise ScenarioError(
                        f"{self.key} supports only "
                        f"{sorted(self.behaviors)} Byzantine replicas"
                    )
                processes.append(SilentProcess(pid))
                continue
            replica = SMRReplica(
                pid, spec.n, spec.f, KVStore(), factory,
                replication=replication,
                durability=durability,
                registry=shared_registry,
                monitor=monitor,
            )
            replicas.append(replica)
            processes.append(replica)
        workload = spec.workload
        clients: List[SMRClient] = []
        allowed: Set[Any] = set()
        for index in range(workload.clients):
            pid = spec.n + index
            commands = workload.commands_for(index)
            allowed.update(commands)
            if workload.rate > 0:
                client: SMRClient = PacedSMRClient(
                    pid=pid, replica_pids=range(spec.n), f=spec.f,
                    gap=workload.rate, batch=workload.batch_size,
                )
            else:
                client = SMRClient(
                    pid=pid, replica_pids=range(spec.n), f=spec.f,
                    window=workload.window,
                )
            client.load_workload(commands, closed_loop=workload.rate <= 0)
            clients.append(client)
            processes.append(client)
        honest, live = _split_pids(spec)
        return BuiltScenario(
            processes=processes,
            honest_pids=honest,
            live_pids=live,
            allowed_values=allowed,
            adapter=self,
            mode="smr",
            registry=registry,
            config=config,
            replicas=replicas,
            clients=clients,
        )


class SmrFbftAdapter(SmrAdapter):
    """SMR over this paper's (generalized) FBFT instances."""

    key = "fbft-smr"
    claimed_fast_delays = 2

    def min_n(self, f: int, t: int) -> int:
        return min_processes_fast_bft(f, t)

    def backend(self, spec, options):
        t = spec.t if spec.t is not None else spec.f
        return smr_backend(
            "fbft", spec.n, spec.f, t=t,
            base_timeout=options.get("base_timeout", 12.0),
        )


class SmrPbftAdapter(SmrAdapter):
    """SMR over PBFT instances — the throughput comparison baseline."""

    key = "pbft-smr"
    claimed_fast_delays = 3

    def min_n(self, f: int, t: int) -> int:
        return min_processes_pbft(f)

    def backend(self, spec, options):
        return smr_backend(
            "pbft", spec.n, spec.f,
            base_timeout=options.get("base_timeout", 12.0),
        )


ADAPTERS: Dict[str, ScenarioAdapter] = {
    adapter.key: adapter
    for adapter in (
        FbftAdapter(),
        PbftAdapter(),
        FabAdapter(),
        PaxosAdapter(),
        OptimisticAdapter(),
        SmrFbftAdapter(),
        SmrPbftAdapter(),
    )
}
