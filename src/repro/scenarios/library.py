"""The canonical scenario library.

Each entry is a named, self-contained :class:`ScenarioSpec` exercising one
of the paper's claims (or a baseline's behaviour) under a specific fault
mix.  Run them via ``python -m repro.scenarios run <name>`` or from tests
through :func:`get_scenario`.
"""

from __future__ import annotations

from typing import Dict

from .spec import (
    ByzantineRole,
    Crash,
    DelayRuleOff,
    DelayRuleOn,
    DelaySpec,
    PartitionHeal,
    PartitionStart,
    Recover,
    ScenarioError,
    ScenarioSpec,
    WorkloadSpec,
)

__all__ = ["SCENARIOS", "get_scenario"]

#: Shared client load of the ``smr-throughput-*`` family: 2 closed-loop
#: clients, 8 commands each, window 8 — enough concurrency to fill
#: batches and the pipeline, identical across engine configurations.
_THROUGHPUT_WORKLOAD = WorkloadSpec(
    clients=2, requests_per_client=8, window=8, key_space=8, seed=21,
)


def _specs() -> Dict[str, ScenarioSpec]:
    scenarios = [
        ScenarioSpec(
            name="fast-path-clean",
            protocol="fbft",
            n=4, f=1,
            delay=DelaySpec(kind="round"),
            expect_fast_path=True,
            liveness_deadline=2.5,
            timeout=50.0,
            description="The paper's headline: n = 5f - 1 = 4 processes, "
                        "no faults, decision after exactly 2 message delays.",
        ),
        ScenarioSpec(
            name="fast-path-generalized",
            protocol="fbft",
            n=7, f=2, t=1,
            delay=DelaySpec(kind="round"),
            byzantine=(ByzantineRole(pid=6, behavior="silent"),),
            expect_fast_path=True,
            timeout=100.0,
            description="Generalized protocol (t = 1 < f = 2): one silent "
                        "fault is within t, so the 2-step fast path survives.",
        ),
        ScenarioSpec(
            name="slow-path-commit",
            protocol="fbft",
            n=7, f=2, t=1,
            delay=DelaySpec(kind="round"),
            byzantine=(
                ByzantineRole(pid=5, behavior="silent"),
                ByzantineRole(pid=6, behavior="silent"),
            ),
            timeout=200.0,
            description="t < actual faults <= f: the fast quorum n - t is out "
                        "of reach, the Appendix-A slow path decides in 3 delays.",
        ),
        ScenarioSpec(
            name="equivocating-leader",
            protocol="fbft",
            n=4, f=1,
            byzantine=(
                ByzantineRole(
                    pid=0, behavior="equivocate", view=1,
                    values=("x", "y"), minority=(3,),
                ),
            ),
            timeout=400.0,
            description="The misbehaviour at the heart of the paper: the "
                        "view-1 leader shows x to {1,2} and y to {3}; the view "
                        "change must recover the possibly-decided x.",
        ),
        ScenarioSpec(
            name="silent-leader",
            protocol="fbft",
            n=4, f=1,
            byzantine=(ByzantineRole(pid=0, behavior="silent"),),
            timeout=400.0,
            description="The first leader never speaks; the pacemaker elects "
                        "view 2 and consensus completes there.",
        ),
        ScenarioSpec(
            name="pre-gst-chaos",
            protocol="fbft",
            n=4, f=1,
            delay=DelaySpec(kind="partial", gst=40.0, pre_gst_max=25.0, seed=7),
            timeout=2000.0,
            description="Partial synchrony: adversarial (bounded) delays "
                        "before GST = 40, the synchrony bound after; liveness "
                        "must resume once GST passes.",
        ),
        ScenarioSpec(
            name="partition-heal",
            protocol="fbft",
            n=4, f=1,
            faults=(
                PartitionStart(at=0.0, groups=((0, 1), (2, 3))),
                PartitionHeal(at=50.0),
            ),
            timeout=2000.0,
            description="A clean split 2|2 from time 0: no quorum on either "
                        "side, so no decision; healing at t = 50 releases held "
                        "messages and agreement follows.",
        ),
        ScenarioSpec(
            name="cascading-view-change",
            protocol="fbft",
            n=9, f=2,
            faults=(Crash(at=0.0, pid=0), Crash(at=0.0, pid=1)),
            timeout=2000.0,
            description="The leaders of views 1 and 2 are both crashed from "
                        "the start; the pacemaker walks to view 3, whose "
                        "leader completes the two-phase certificate dance.",
        ),
        ScenarioSpec(
            name="crash-quorum-edge",
            protocol="fbft",
            n=9, f=2,
            delay=DelaySpec(kind="round"),
            faults=(Crash(at=0.0, pid=7), Crash(at=0.0, pid=8)),
            expect_fast_path=True,
            timeout=200.0,
            description="Exactly f = 2 crash faults: the surviving n - f = 7 "
                        "processes are precisely a fast quorum, so the 2-step "
                        "path still lands — the edge the bound is about.",
        ),
        ScenarioSpec(
            name="targeted-vote-delay",
            protocol="fbft",
            n=4, f=1,
            byzantine=(ByzantineRole(pid=0, behavior="silent"),),
            faults=(
                DelayRuleOn(
                    at=0.0, name="stall-votes", extra_delay=6.0,
                    payload_types=("Vote",),
                ),
                DelayRuleOff(at=60.0, name="stall-votes"),
            ),
            timeout=600.0,
            description="View-change Vote messages are stalled by a delay "
                        "rule while the rule is active; progress resumes once "
                        "it is lifted (indy-plenum delay_rules idiom).",
        ),
        ScenarioSpec(
            name="pbft-clean",
            protocol="pbft",
            n=4, f=1,
            delay=DelaySpec(kind="round"),
            expect_fast_path=True,  # "fast" = PBFT's claimed 3 delays
            timeout=50.0,
            description="PBFT baseline common case: 3 message delays at "
                        "n = 3f + 1 — the latency comparison point.",
        ),
        ScenarioSpec(
            name="pbft-crash-leader",
            protocol="pbft",
            n=4, f=1,
            faults=(Crash(at=0.5, pid=0),),
            timeout=600.0,
            description="PBFT's primary crashes right after pre-prepare; "
                        "replicas finish the instance (or view-change) anyway.",
        ),
        ScenarioSpec(
            name="fab-fast-path",
            protocol="fab",
            n=6, f=1, t=1,
            delay=DelaySpec(kind="round"),
            expect_fast_path=True,
            timeout=50.0,
            description="FaB Paxos baseline: 2 delays but n = 3f + 2t + 1 = 6 "
                        "processes — two more than this paper needs.",
        ),
        ScenarioSpec(
            name="paxos-partition",
            protocol="paxos",
            n=3, f=1,
            faults=(
                PartitionStart(at=0.0, groups=((0,), (1, 2))),
                PartitionHeal(at=30.0),
            ),
            timeout=600.0,
            description="Crash Paxos with the proposer cut off from the "
                        "majority; healing restores the 2-step path.",
        ),
        ScenarioSpec(
            name="optimistic-fallback",
            protocol="optimistic",
            n=4, f=1,
            byzantine=(ByzantineRole(pid=3, behavior="silent"),),
            timeout=400.0,
            description="Kursawe-style optimistic consensus needs unanimity "
                        "for 2 steps; one silent process forces the fallback.",
        ),
        ScenarioSpec(
            name="smr-open-loop",
            protocol="fbft-smr",
            n=4, f=1, t=1,
            workload=WorkloadSpec(
                clients=2, requests_per_client=4, rate=3.0, batch_size=2,
                key_space=4, hot_fraction=0.5, seed=11,
            ),
            timeout=3000.0,
            description="The full SMR stack: 2 open-loop clients submit "
                        "batched, skewed KV traffic; every request must "
                        "complete and replica logs must agree slot by slot.",
        ),
        ScenarioSpec(
            name="smr-crash-recovery",
            protocol="fbft-smr",
            n=4, f=1, t=1,
            workload=WorkloadSpec(
                clients=1, requests_per_client=6, window=2, seed=5,
            ),
            faults=(Crash(at=3.0, pid=1), Recover(at=40.0, pid=1)),
            timeout=3000.0,
            description="A replica crashes mid-slot and recovers later: its "
                        "per-slot timers must stay silent while down, no "
                        "command may execute twice, and the client's whole "
                        "workload still completes via the live majority.",
        ),
        ScenarioSpec(
            name="durable-recovery",
            protocol="fbft-smr",
            n=4, f=1, t=1,
            workload=WorkloadSpec(
                clients=1, requests_per_client=12, window=2, seed=13,
            ),
            protocol_options={
                "durability": True, "checkpoint_interval": 3,
                "batch_size": 2, "pipeline_depth": 2,
            },
            faults=(
                Crash(at=8.0, pid=1, disk="retained"),
                Recover(at=60.0, pid=1),
            ),
            timeout=3000.0,
            description="Durability: replica 1 crashes with its disk intact "
                        "and recovers by restoring the stable checkpoint, "
                        "replaying its write-ahead log and catching up the "
                        "tail from peers; its rebuilt state must equal a "
                        "never-crashed replica's digest.",
        ),
        ScenarioSpec(
            name="lagging-replica-catchup",
            protocol="fbft-smr",
            n=4, f=1, t=1,
            workload=WorkloadSpec(
                clients=1, requests_per_client=14, window=2, seed=17,
            ),
            protocol_options={
                "durability": True, "checkpoint_interval": 3,
                "batch_size": 2, "pipeline_depth": 2,
            },
            faults=(
                Crash(at=6.0, pid=2, disk="lost"),
                Recover(at=70.0, pid=2),
            ),
            timeout=3000.0,
            description="Catchup from nothing: replica 2 loses its disk with "
                        "the crash, so recovery has no local state at all — "
                        "it must install a certified peer checkpoint plus the "
                        "decided suffix through the state-transfer protocol "
                        "and still match the cluster digest.",
        ),
        ScenarioSpec(
            name="byzantine-catchup-responder",
            protocol="fbft-smr",
            n=7, f=2, t=1,
            workload=WorkloadSpec(
                clients=1, requests_per_client=12, window=2, seed=19,
            ),
            protocol_options={
                "durability": True, "checkpoint_interval": 3,
                "batch_size": 2, "pipeline_depth": 2,
            },
            byzantine=(ByzantineRole(pid=6, behavior="bad_catchup"),),
            faults=(
                Crash(at=6.0, pid=1, disk="lost"),
                Recover(at=70.0, pid=1),
            ),
            timeout=3000.0,
            description="Byzantine state transfer: replica 1 recovers from a "
                        "lost disk while replica 6 answers catchup requests "
                        "with forged checkpoints, corrupted entries and an "
                        "inflated progress report; certificate validation and "
                        "f+1 cross-checking must keep the recovery honest.",
        ),
        ScenarioSpec(
            name="smr-throughput-seed",
            protocol="fbft-smr",
            n=4, f=1, t=1,
            workload=_THROUGHPUT_WORKLOAD,
            protocol_options={"batch_size": 1, "pipeline_depth": 1},
            timeout=5000.0,
            description="Throughput family, seed configuration: one command "
                        "per slot, one slot in flight — the pre-batching "
                        "engine, kept as the speedup denominator.",
        ),
        ScenarioSpec(
            name="smr-throughput-batched",
            protocol="fbft-smr",
            n=4, f=1, t=1,
            workload=_THROUGHPUT_WORKLOAD,
            protocol_options={"batch_size": 8, "pipeline_depth": 4},
            timeout=5000.0,
            description="Throughput family: slots decide 8-command batches "
                        "with 4 consensus instances pipelined; same client "
                        "load as smr-throughput-seed, far fewer slots.",
        ),
        ScenarioSpec(
            name="smr-throughput-pbft",
            protocol="pbft-smr",
            n=4, f=1,
            workload=_THROUGHPUT_WORKLOAD,
            protocol_options={"batch_size": 8, "pipeline_depth": 4},
            timeout=5000.0,
            description="Throughput family, PBFT backend: the 3-delay "
                        "baseline under the identical batched, pipelined "
                        "engine and client load.",
        ),
        ScenarioSpec(
            name="slow-leader",
            protocol="fbft-smr",
            n=4, f=1, t=1,
            workload=WorkloadSpec(
                clients=2, requests_per_client=10, window=4, key_space=8,
                seed=23,
            ),
            protocol_options={
                "batch_size": 2, "pipeline_depth": 4,
                "base_timeout": 60.0,
                "monitor": True, "monitor_expect_rotation": True,
            },
            faults=(
                DelayRuleOn(
                    at=0.0, name="sluggish-leader", extra_delay=8.0,
                    src=(0,), payload_types=("SlotMessage",),
                ),
            ),
            timeout=3000.0,
            description="Leader demotion: replica 0 is honest but every "
                        "protocol message it sends crawls (+8 delay) — too "
                        "slow for good tail latency, too live for the "
                        "pacemaker (timeout 60).  The performance monitor "
                        "must detect the degraded slot latency, gather 2f+1 "
                        "demotion votes and rotate leadership away.",
        ),
        ScenarioSpec(
            name="throttling-byzantine-leader",
            protocol="fbft-smr",
            n=4, f=1, t=1,
            workload=WorkloadSpec(
                clients=2, requests_per_client=10, window=4, key_space=8,
                seed=29,
            ),
            protocol_options={
                "batch_size": 2, "pipeline_depth": 4,
                "base_timeout": 60.0,
                "monitor": True, "monitor_expect_rotation": True,
            },
            byzantine=(
                ByzantineRole(pid=0, behavior="throttle_leader", at=9.0),
            ),
            timeout=3000.0,
            description="Throttling adversary: Byzantine replica 0 runs the "
                        "honest protocol but deliberately delays its own "
                        "messages by 9, staying just under every timeout — "
                        "the performance attack liveness proofs ignore.  The "
                        "honest monitors must demote it without any timer "
                        "firing.",
        ),
        ScenarioSpec(
            name="monitor-flapping",
            protocol="fbft-smr",
            n=4, f=1, t=1,
            workload=WorkloadSpec(
                clients=2, requests_per_client=12, rate=4.0, batch_size=3,
                key_space=8, seed=31,
            ),
            protocol_options={
                "batch_size": 2, "pipeline_depth": 4,
                "monitor": True, "monitor_expect_rotation": False,
            },
            timeout=3000.0,
            description="Monitor stability: a healthy leader under bursty "
                        "open-loop load (3-command spikes every 4 time "
                        "units).  Queue delay rises and falls with the "
                        "bursts; the drain-rate baseline must absorb it and "
                        "cast zero demotion votes — rotation here would be "
                        "flapping.",
        ),
    ]
    return {spec.name: spec for spec in scenarios}


SCENARIOS: Dict[str, ScenarioSpec] = _specs()


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a canonical scenario by name."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ScenarioError(
            f"unknown scenario {name!r}; available: {', '.join(sorted(SCENARIOS))}"
        ) from None
