"""Invariant oracles: what must hold of a finished scenario run.

Oracles are evaluated *post hoc* from the recorded trace, so they are
protocol-independent wherever possible and delegate to the adapter where
they are not (certificate audits).  Each returns an
:class:`InvariantVerdict` with ``passed`` being ``True``, ``False`` or
``None`` (not applicable to this spec/protocol) — a scenario "passes"
when no oracle returns ``False``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from ..sim.runner import Cluster
from ..sim.trace import message_delays
from .adapters import BuiltScenario
from .spec import Recover, ScenarioSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .runner import ScenarioResult

__all__ = [
    "InvariantVerdict",
    "decisions_of",
    "durable_rejoin_sets",
    "evaluate_invariants",
]


def durable_rejoin_sets(spec: ScenarioSpec, built: BuiltScenario):
    """``(rejoining, baseline)`` replica lists for durable recoveries.

    ``rejoining`` — durable replicas the schedule crashes and recovers:
    they owe the cluster a full rejoin.  ``baseline`` — honest,
    never-crashed replicas: the standard the rejoiners are held to.
    One definition shared by the runner's stop condition (the run is not
    over until each rejoiner reaches the baseline's progress) and the
    ``catchup-consistency`` oracle (which then judges exactly that
    state) — the two must never drift apart.
    """
    recovered_pids = {
        event.pid
        for event in spec.faults
        if isinstance(event, Recover) and event.pid < spec.n
    }
    rejoining = [
        replica
        for replica in built.replicas
        if replica.pid in recovered_pids and replica.storage is not None
    ]
    baseline = [
        replica for replica in built.replicas if replica.pid in built.live_pids
    ]
    return rejoining, baseline


@dataclass(frozen=True)
class InvariantVerdict:
    """One oracle's judgement of one run.

    ``margin`` is a graded "distance to violation" where the oracle can
    measure one (votes short of a quorum, slack to the liveness timeout,
    message delays under the fast-path claim, demotions below the
    flapping bound).  Positive margins mean head-room, zero or negative
    means at-or-past the edge; ``None`` means the oracle has no graded
    signal for this run.  The coverage-guided fuzzer uses margins to
    steer schedules toward the edge of the safety envelope instead of
    seeing only a pass/fail bit.
    """

    name: str
    passed: Optional[bool]  # None = not applicable
    detail: str = ""
    margin: Optional[float] = None

    @property
    def failed(self) -> bool:
        return self.passed is False

    def __str__(self) -> str:
        status = {True: "PASS", False: "FAIL", None: "n/a "}[self.passed]
        suffix = f" — {self.detail}" if self.detail else ""
        return f"[{status}] {self.name}{suffix}"


def decisions_of(cluster: Cluster, pids) -> Dict[int, Any]:
    """The recorded decision values of ``pids`` (absent pids undecided)."""
    return {
        pid: decision.value
        for pid in pids
        if (decision := cluster.trace.decision_of(pid)) is not None
    }


# ----------------------------------------------------------------------
# The oracles
# ----------------------------------------------------------------------

#: Payload types whose tallies race toward a named quorum threshold on
#: the protocol's config object.  Used for the agreement near-miss
#: margin: the closest any *incomplete* tally came to its quorum.
_QUORUM_ATTRS = {
    "Ack": "fast_quorum",
    "Vote": "vote_quorum",
    "Commit": "commit_quorum",
    "Prepare": "prepare_quorum",
    "PBFTCommit": "commit_quorum",
    "FabAccept": "fast_quorum",
    "PaxosAccepted": "majority",
    "OptAck": "fast_quorum",
}


def _quorum_shortfall(built: BuiltScenario, cluster: Cluster) -> Optional[float]:
    """Votes-short-of-quorum for the closest incomplete tally.

    Scans the trace for quorum-bound payloads (acks, votes, commits),
    tallies distinct senders per ``(type, view, value)``, and returns the
    smallest shortfall among tallies that never reached their quorum —
    the graded "one more equivocation and this would have been a second
    decision" signal.  ``None`` when every tally completed (or none
    exists): the run never approached the edge.
    """
    config = built.config
    if config is None:
        return None
    tallies: Dict[Tuple[str, Any, str], Tuple[set, int]] = {}
    for envelope in cluster.trace.sends:
        payload = envelope.payload
        attr = _QUORUM_ATTRS.get(type(payload).__name__)
        if attr is None:
            continue
        threshold = getattr(config, attr, None)
        if threshold is None:
            continue
        view = getattr(payload, "view", None)
        if view is None:
            view = getattr(payload, "ballot", None)
        if view is None:
            continue
        key = (type(payload).__name__, view, repr(getattr(payload, "value", None)))
        senders, _ = tallies.setdefault(key, (set(), threshold))
        senders.add(envelope.src)
    shortfalls = [
        threshold - len(senders)
        for senders, threshold in tallies.values()
        if len(senders) < threshold
    ]
    if not shortfalls:
        return None
    return float(min(shortfalls))


def check_agreement(
    spec: ScenarioSpec,
    built: BuiltScenario,
    cluster: Cluster,
    safety_violation: Optional[str],
) -> InvariantVerdict:
    """No two honest processes decide differently (ever, in any view)."""
    if safety_violation is not None:
        return InvariantVerdict("agreement", False, safety_violation)
    if built.mode == "smr":
        return _check_smr_log_agreement(built)
    decided = decisions_of(cluster, built.honest_pids)
    values = set(decided.values())
    if len(values) > 1:
        return InvariantVerdict(
            "agreement", False, f"honest processes decided {decided!r}",
            margin=0.0,
        )
    return InvariantVerdict(
        "agreement", True, f"{len(decided)} honest decisions, all equal",
        margin=_quorum_shortfall(built, cluster),
    )


def _check_smr_log_agreement(built: BuiltScenario) -> InvariantVerdict:
    """Honest replicas never decide different commands for the same slot."""
    by_slot: Dict[int, Dict[Any, List[int]]] = {}
    for replica in built.replicas:
        for slot, command in replica.log:
            by_slot.setdefault(slot, {}).setdefault(command, []).append(replica.pid)
    conflicts = {
        slot: commands for slot, commands in by_slot.items() if len(commands) > 1
    }
    if conflicts:
        return InvariantVerdict(
            "agreement", False, f"conflicting slot decisions: {conflicts!r}"
        )
    return InvariantVerdict(
        "agreement", True, f"{len(by_slot)} slots consistent across replicas"
    )


def check_validity(
    spec: ScenarioSpec, built: BuiltScenario, cluster: Cluster
) -> InvariantVerdict:
    """Decided values come from the set the adversary could legitimately
    put in play (honest inputs plus declared Byzantine proposals)."""
    if built.allowed_values is None:
        return InvariantVerdict("validity", None, "no allowed-value set declared")
    if built.mode == "smr":
        from ..smr.kvstore import NOOP
        from ..smr.replica import commands_of

        allowed = set(built.allowed_values) | {NOOP}
        executed = {
            command
            for replica in built.replicas
            for _slot, value in replica.log
            for command in commands_of(value)
        }
        rogue = executed - allowed
        if rogue:
            return InvariantVerdict(
                "validity", False, f"executed commands nobody submitted: {rogue!r}"
            )
        return InvariantVerdict(
            "validity", True, f"{len(executed)} distinct commands, all submitted"
        )
    decided = decisions_of(cluster, built.honest_pids)
    rogue = set(decided.values()) - set(built.allowed_values)
    if rogue:
        return InvariantVerdict(
            "validity", False, f"decided values outside input set: {rogue!r}"
        )
    return InvariantVerdict("validity", True, "decisions drawn from the input set")


def check_no_duplicate_execution(
    spec: ScenarioSpec, built: BuiltScenario, cluster: Cluster
) -> InvariantVerdict:
    """No replica applies the same ``(client, request_id)`` twice.

    Each replica records every state-machine application tagged by the
    request key (gossip-adopted work included); a duplicate tag means a
    re-proposed command slipped past execution dedup — the
    double-execution bug class this oracle exists to catch.
    """
    name = "no-duplicate-execution"
    if built.mode != "smr":
        return InvariantVerdict(name, None, "consensus mode has no execution")
    duplicates: Dict[int, List[Tuple[Any, ...]]] = {}
    total = 0
    for replica in built.replicas:
        total += len(replica.applied_keys)
        seen: set = set()
        for key in replica.applied_keys:
            if key in seen:
                duplicates.setdefault(replica.pid, []).append(key)
            seen.add(key)
    if duplicates:
        return InvariantVerdict(
            name, False, f"requests applied twice: {duplicates!r}"
        )
    return InvariantVerdict(
        name, True, f"{total} applications across replicas, all distinct"
    )


def check_catchup_consistency(
    spec: ScenarioSpec, built: BuiltScenario, cluster: Cluster
) -> InvariantVerdict:
    """A recovered durable replica must equal a never-crashed one.

    After crash recovery (checkpoint restore + WAL replay, plus peer
    catchup when the disk was lost), the recovered replica's application
    state digest and executed prefix must match the most-advanced
    honest, never-crashed replica — recovery that "works" but rebuilds
    different state is the failure mode this oracle exists to catch.
    Applies only to durable replicas: legacy in-memory recovery makes no
    catchup promise.
    """
    from ..storage.checkpoint import state_digest

    name = "catchup-consistency"
    if built.mode != "smr":
        return InvariantVerdict(name, None, "consensus mode has no replica state")
    rejoining, baseline = durable_rejoin_sets(spec, built)
    if not rejoining:
        return InvariantVerdict(name, None, "no recovered durable replicas")
    if not baseline:
        return InvariantVerdict(name, None, "no never-crashed honest replica to compare")
    reference = max(baseline, key=lambda r: r.executed_upto)
    reference_digest = state_digest(reference.state_machine.snapshot())
    problems = []
    for replica in rejoining:
        digest = state_digest(replica.state_machine.snapshot())
        if replica.executed_upto < reference.executed_upto:
            problems.append(
                f"pid {replica.pid} executed up to {replica.executed_upto}, "
                f"reference pid {reference.pid} reached {reference.executed_upto}"
            )
        elif digest != reference_digest:
            problems.append(
                f"pid {replica.pid} state digest {digest[:16]} != "
                f"reference {reference_digest[:16]}"
            )
    if problems:
        return InvariantVerdict(name, False, "; ".join(problems))
    return InvariantVerdict(
        name, True,
        f"{len(rejoining)} recovered replica(s) match pid {reference.pid} "
        f"at slot {reference.executed_upto}",
    )


def check_certificates(
    spec: ScenarioSpec, built: BuiltScenario, cluster: Cluster
) -> InvariantVerdict:
    """Adapter-specific audit of transferable artifacts in the trace."""
    errors = built.adapter.certificate_errors(built, cluster.trace.sends)
    if errors is None:
        return InvariantVerdict(
            "certificates", None, "protocol has no transferable certificates"
        )
    if errors:
        return InvariantVerdict("certificates", False, "; ".join(errors[:3]))
    return InvariantVerdict("certificates", True, "all traced certificates valid")


def check_fast_path(
    spec: ScenarioSpec,
    built: BuiltScenario,
    cluster: Cluster,
    decided: bool,
    decision_time: Optional[float],
) -> InvariantVerdict:
    """When the spec claims the common case, the decision must land within
    the family's claimed number of message delays."""
    if not spec.expect_fast_path:
        return InvariantVerdict("fast-path-steps", None, "not expected by spec")
    if not spec.delay.counts_steps:
        return InvariantVerdict(
            "fast-path-steps", None, f"delay kind {spec.delay.kind!r} has no step metric"
        )
    if not decided or decision_time is None:
        return InvariantVerdict("fast-path-steps", False, "no decision to measure")
    steps = message_delays(decision_time, spec.delay.delta)
    claimed = built.adapter.claimed_fast_delays
    if steps > claimed:
        return InvariantVerdict(
            "fast-path-steps", False,
            f"decision took {steps} message delays, claimed {claimed}",
            margin=float(claimed - steps),
        )
    return InvariantVerdict(
        "fast-path-steps", True, f"{steps} message delays <= claimed {claimed}",
        margin=float(claimed - steps),
    )


def check_liveness(
    spec: ScenarioSpec,
    built: BuiltScenario,
    cluster: Cluster,
    decided: bool,
    decision_time: Optional[float],
    safety_violation: Optional[str] = None,
) -> InvariantVerdict:
    """After GST (and after every scheduled fault has settled), every
    correct, never-crashed process must decide within the time budget."""
    if not spec.expect_decision:
        return InvariantVerdict("liveness-after-gst", None, "not expected by spec")
    if safety_violation is not None:
        return InvariantVerdict(
            "liveness-after-gst", None, "run aborted by a safety violation"
        )
    if built.mode == "smr":
        crashed = set(spec.crashed_forever_pids)
        live_clients = [c for c in built.clients if c.pid not in crashed]
        incomplete = [c.pid for c in live_clients if not c.all_completed]
        if incomplete:
            return InvariantVerdict(
                "liveness-after-gst", False,
                f"clients {incomplete} did not complete within {spec.timeout}",
            )
        return InvariantVerdict(
            "liveness-after-gst", True,
            f"all {len(live_clients)} live clients completed",
        )
    if not decided:
        missing = [
            pid
            for pid in built.live_pids
            if cluster.trace.decision_of(pid) is None
        ]
        return InvariantVerdict(
            "liveness-after-gst", False,
            f"pids {missing} undecided at timeout {spec.timeout}",
            margin=0.0,
        )
    deadline = spec.liveness_deadline
    if deadline is not None and decision_time is not None and decision_time > deadline:
        return InvariantVerdict(
            "liveness-after-gst", False,
            f"decided at {decision_time}, after the deadline {deadline}",
            margin=0.0,
        )
    detail = f"all live pids decided by {decision_time}"
    if deadline is not None:
        detail += f" (deadline {deadline})"
    # Slack to the timeout as a fraction of the budget: 1.0 = decided
    # instantly, 0.0 = at the wire — the fuzzer's pull toward schedules
    # that nearly exhaust the liveness budget.
    margin = None
    if decision_time is not None and spec.timeout > 0:
        margin = round(max(0.0, 1.0 - decision_time / spec.timeout), 4)
    return InvariantVerdict("liveness-after-gst", True, detail, margin=margin)


def check_leader_rotation(
    spec: ScenarioSpec, built: BuiltScenario, cluster: Cluster
) -> InvariantVerdict:
    """The performance monitor rotates slow leaders — and only those.

    Applies to SMR runs with the ``monitor`` protocol option.  The spec
    declares intent through ``monitor_expect_rotation``: when true, at
    least one honest replica must have observed a completed demotion
    (its view floor rose past the degraded leader); when false, none may
    — a demotion under healthy leadership is flapping, the failure mode
    the drain-rate baseline and cooldown exist to prevent.  Either way,
    no replica may demote more than twice in one run (bounded rotation,
    not oscillation).
    """
    name = "leader-rotation-liveness"
    if built.mode != "smr":
        return InvariantVerdict(name, None, "consensus mode has no monitor")
    monitored = [r for r in built.replicas if r.leader_monitor is not None]
    if not monitored:
        return InvariantVerdict(name, None, "monitor not enabled by spec")
    expect = bool(spec.protocol_options.get("monitor_expect_rotation", False))
    demotions = {r.pid: r.leader_monitor.demotions for r in monitored}
    # Demotions below the flapping bound: 2 = never rotated, 0 = at the
    # oscillation edge, negative = oscillating.
    rotation_margin = float(2 - max(demotions.values(), default=0))
    flapping = {pid: count for pid, count in demotions.items() if count > 2}
    if flapping:
        return InvariantVerdict(
            name, False, f"leader rotation oscillated: {flapping!r} demotions",
            margin=rotation_margin,
        )
    total = sum(demotions.values())
    if expect and total == 0:
        return InvariantVerdict(
            name, False,
            "spec expected the slow leader to be demoted; no replica rotated",
        )
    if not expect and total > 0:
        return InvariantVerdict(
            name, False,
            f"monitor demoted a healthy leader (flapping): {demotions!r}",
        )
    floors = sorted({r.leader_monitor.view_floor for r in monitored})
    if expect:
        return InvariantVerdict(
            name, True,
            f"slow leader demoted; view floors {floors}, "
            f"{total} demotion(s) across {len(monitored)} replicas",
            margin=rotation_margin,
        )
    return InvariantVerdict(
        name, True, f"no spurious demotions across {len(monitored)} replicas",
        margin=rotation_margin,
    )


def evaluate_invariants(
    spec: ScenarioSpec,
    built: BuiltScenario,
    cluster: Cluster,
    decided: bool,
    decision_time: Optional[float],
    safety_violation: Optional[str],
) -> Tuple[InvariantVerdict, ...]:
    """Run every oracle; order is stable (agreement first)."""
    return (
        check_agreement(spec, built, cluster, safety_violation),
        check_validity(spec, built, cluster),
        check_no_duplicate_execution(spec, built, cluster),
        check_catchup_consistency(spec, built, cluster),
        check_certificates(spec, built, cluster),
        check_fast_path(spec, built, cluster, decided, decision_time),
        check_liveness(spec, built, cluster, decided, decision_time, safety_violation),
        check_leader_rotation(spec, built, cluster),
    )
