"""Command-line experiment runner: regenerate the paper's results.

Usage::

    python -m repro.experiments              # everything
    python -m repro.experiments resilience   # one experiment
    python -m repro.experiments --list

Each experiment prints the table from EXPERIMENTS.md.  The benchmark
suite (``pytest benchmarks/``) runs the same computations with timing
and assertions; this module is the quick, dependency-free way to *see*
the results.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List

from .analysis import (
    PROTOCOLS,
    build_protocol,
    cprofile_top,
    format_cprofile_rows,
    format_table,
    repeat_latency,
    run_common_case,
    run_smr_throughput,
    simcore_snapshot,
    write_bench_json,
)
from .core.quorums import min_processes_fast_bft, quorum_report
from .lowerbound import run_splice_attack
from .sim.network import RandomDelay

__all__ = ["EXPERIMENTS", "main"]


def resilience() -> str:
    """E1: minimum process counts per protocol family."""
    rows = []
    for f in (1, 2, 3, 4, 5):
        for t in sorted({1, f}):
            rows.append(
                [f, t]
                + [
                    PROTOCOLS[key].min_n(f, t)
                    for key in ("fbft", "fab", "pbft", "paxos")
                ]
            )
    return format_table(
        ["f", "t", "FBFT (ours)", "FaB", "PBFT", "Paxos"], rows
    )


def latency() -> str:
    """E6: common-case latency at f = 1 (delays + randomized time)."""
    rows = []
    for key in ("fbft", "fab", "pbft", "paxos", "optimistic"):
        spec = PROTOCOLS[key]
        delays = run_common_case(build_protocol(key, f=1)).delays
        stats = repeat_latency(
            lambda key=key: build_protocol(key, f=1),
            runs=15,
            delay_model_factory=lambda run: RandomDelay(0.5, 1.5, seed=run),
        )
        rows.append(
            [spec.name, spec.min_n(1, 1), delays, round(stats.mean, 3)]
        )
    return format_table(["protocol", "n", "delays", "mean latency"], rows)


def lower_bound() -> str:
    """E4: the splice adversary at and below the bound."""
    rows = []
    for f, t in [(2, 2), (3, 2), (2, 1)]:
        bound = min_processes_fast_bft(f, t)
        below = run_splice_attack(f=f, t=t, n=bound - 1)
        at = run_splice_attack(f=f, t=t, n=bound)
        rows.append(
            [
                f, t,
                f"n={bound - 1}",
                "DISAGREEMENT" if below.violated else "safe",
                f"n={bound}",
                "DISAGREEMENT" if at.violated else "safe",
            ]
        )
    return format_table(
        ["f", "t", "below bound", "outcome", "at bound", "outcome"], rows
    )


def ablation() -> str:
    """E11: the equivocator-exclusion trick, on and off, at the bound."""
    rows = []
    for f, t in [(2, 2), (3, 2)]:
        bound = min_processes_fast_bft(f, t)
        on = run_splice_attack(f=f, t=t, n=bound, exclude_equivocator=True)
        off = run_splice_attack(f=f, t=t, n=bound, exclude_equivocator=False)
        rows.append(
            [
                f, t, bound,
                "safe" if on.safe else "DISAGREEMENT",
                "safe" if off.safe else "DISAGREEMENT",
            ]
        )
    return format_table(
        ["f", "t", "n", "with exclusion", "without exclusion"], rows
    )


def quorums() -> str:
    """E4a: quorum-intersection properties around the bound."""
    rows = []
    for f, t in [(1, 1), (2, 2), (3, 2)]:
        bound = min_processes_fast_bft(f, t)
        for n in (bound - 1, bound):
            report = quorum_report(n, f, t)
            rows.append(
                [
                    f, t, n,
                    report.qi1, report.qi2, report.qi3,
                    report.fast_vote_overlap, f + t,
                    "yes" if report.meets_bound else "NO",
                ]
            )
    return format_table(
        ["f", "t", "n", "QI1", "QI2", "QI3", "overlap", "need", "bound?"],
        rows,
    )


def throughput() -> str:
    """E15: batched+pipelined SMR ops/sec vs the single-slot engine."""
    rows = []
    for backend, batch, depth in [
        ("fbft", 1, 1),
        ("fbft", 8, 1),
        ("fbft", 8, 4),
        ("pbft", 1, 1),
        ("pbft", 8, 4),
    ]:
        result = run_smr_throughput(
            backend=backend,
            clients=2,
            requests_per_client=8,
            window=8,
            batch_size=batch,
            pipeline_depth=depth,
        )
        rows.append(result.row())
    return format_table(
        ["backend", "batch", "depth", "done", "slots", "ops/t", "p50", "p95"],
        rows,
    )


def profile(bench_json: str = "") -> str:
    """E16: simulation-core events/sec + current hot functions."""
    snapshot = simcore_snapshot(quick=True)
    rows = [
        [name, round(events_per_sec)]
        for name, events_per_sec in snapshot.items()
    ]
    table = format_table(["workload", "events/sec"], rows)
    result, hot = cprofile_top(
        lambda: run_smr_throughput(
            backend="fbft", clients=2, requests_per_client=8,
            window=8, batch_size=8, pipeline_depth=4,
        ),
        top=8,
    )
    report = (
        table
        + "\n\nhot functions (quick batched+pipelined SMR run, by tottime):\n"
        + format_cprofile_rows(hot)
    )
    if bench_json:
        write_bench_json(
            bench_json,
            "E16_simcore",
            {
                name: {"fast_events_per_sec": eps}
                for name, eps in snapshot.items()
            },
            meta={"source": "experiments profile", "quick": True},
        )
        report += f"\n\nwrote {bench_json}"
    return report


EXPERIMENTS: Dict[str, Callable[[], str]] = {
    "resilience": resilience,
    "latency": latency,
    "lower-bound": lower_bound,
    "ablation": ablation,
    "quorums": quorums,
    "throughput": throughput,
    "profile": profile,
}


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help=f"which experiments to run (default: all of {sorted(EXPERIMENTS)})",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments"
    )
    parser.add_argument(
        "--bench-json", metavar="PATH", default="",
        help="with the 'profile' experiment: write a BENCH_*.json record here",
    )
    args = parser.parse_args(argv)
    if args.list:
        for name, fn in sorted(EXPERIMENTS.items()):
            print(f"{name:<12} {fn.__doc__.strip().splitlines()[0]}")
        return 0
    names = args.experiments or sorted(EXPERIMENTS)
    if args.bench_json and "profile" not in names:
        parser.error("--bench-json only applies to the 'profile' experiment")
    for name in names:
        if name not in EXPERIMENTS:
            parser.error(
                f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}"
            )
        fn = EXPERIMENTS[name]
        title = fn.__doc__.strip().splitlines()[0]
        print(f"\n=== {name}: {title}\n")
        if name == "profile" and args.bench_json:
            print(profile(args.bench_json))
        else:
            print(fn())
    print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
