"""Grid aggregation and run-vs-run comparison for experiment results.

These helpers operate on the JSON-safe payloads the experiment framework
produces (:meth:`repro.experiments.ExperimentResult.to_payload` or a
loaded ``BENCH_*`` schema-2 artifact), so they have no dependency on the
framework itself — ``diff`` works on artifacts from other machines.

The load-bearing one is :func:`compare_grid_payloads`: the
serial-vs-parallel gate.  Two runs of the same grid must agree on every
grid digest (sharded execution is only allowed to be *faster*, never
*different*); for non-deterministic experiments (wall-clock measurement,
e.g. E16) the digests cover workload identity rather than measured
values, so the check stays meaningful without ever failing on timing
noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence

from .report import format_table

__all__ = [
    "GridComparison",
    "compare_grid_payloads",
    "format_experiment_payload",
    "merge_section_rows",
    "payload_sections",
]


def payload_sections(payload: Mapping[str, Any]) -> Dict[str, Dict[str, Any]]:
    """The ``sections`` mapping of a result payload or schema-2 artifact
    (artifacts store it under ``results``)."""
    sections = payload.get("sections")
    if sections is None:
        sections = payload.get("results", {})
    return dict(sections)


def merge_section_rows(
    payloads: Sequence[Mapping[str, Any]]
) -> Dict[str, List[List[Any]]]:
    """Concatenate same-named sections across several experiment payloads
    (e.g. to pool every experiment's rows into one report)."""
    merged: Dict[str, List[List[Any]]] = {}
    for payload in payloads:
        for name, section in payload_sections(payload).items():
            merged.setdefault(name, []).extend(section.get("rows", []))
    return merged


def format_experiment_payload(payload: Mapping[str, Any]) -> str:
    """Render one experiment payload as aligned tables, one per section."""
    exp = payload.get("experiment", payload)
    header = (
        f"{exp.get('id', '?')} ({exp.get('name', '?')}): {exp.get('title', '')}"
    )
    blocks = [header]
    for name, section in payload_sections(payload).items():
        rows = section.get("rows", [])
        if not rows:
            continue
        columns = section.get("columns") or [
            f"col{i}" for i in range(len(rows[0]))
        ]
        title = f"[{name}]" if name != "main" else ""
        table = format_table(list(columns), rows)
        blocks.append(f"{title}\n{table}" if title else table)
    meta = (
        f"tasks={exp.get('tasks_total', '?')}"
        f" cached={exp.get('tasks_cached', 0)}"
        f" compute={exp.get('compute_seconds', '?')}s"
        f" batch-wall={exp.get('wall_seconds', '?')}s"
        f" digest={str(exp.get('grid_digest', ''))[:16]}"
    )
    blocks.append(meta)
    return "\n\n".join(blocks)


@dataclass
class GridComparison:
    """Outcome of comparing two runs of the same experiment set."""

    #: Experiment ids present in exactly one side.
    only_left: List[str] = field(default_factory=list)
    only_right: List[str] = field(default_factory=list)
    #: id -> (left digest, right digest) for mismatching grids.
    digest_mismatches: Dict[str, tuple] = field(default_factory=dict)
    #: id -> list of human-readable row differences (informational).
    row_diffs: Dict[str, List[str]] = field(default_factory=dict)
    compared: int = 0

    @property
    def ok(self) -> bool:
        return not (self.only_left or self.only_right or self.digest_mismatches)

    def summary(self) -> str:
        if self.ok:
            return f"OK: {self.compared} experiment grids agree"
        lines = [f"MISMATCH across {self.compared} compared grids:"]
        for exp_id in self.only_left:
            lines.append(f"  {exp_id}: only in left run")
        for exp_id in self.only_right:
            lines.append(f"  {exp_id}: only in right run")
        for exp_id, (left, right) in sorted(self.digest_mismatches.items()):
            lines.append(
                f"  {exp_id}: grid digest {left[:16]} != {right[:16]}"
            )
            for diff in self.row_diffs.get(exp_id, [])[:6]:
                lines.append(f"      {diff}")
        return "\n".join(lines)


def _index_payloads(
    payloads: Sequence[Mapping[str, Any]]
) -> Dict[str, Mapping[str, Any]]:
    indexed = {}
    for payload in payloads:
        exp = payload.get("experiment", payload)
        indexed[str(exp.get("id"))] = payload
    return indexed


def _row_diffs(
    left: Mapping[str, Any], right: Mapping[str, Any]
) -> List[str]:
    diffs = []
    lsec, rsec = payload_sections(left), payload_sections(right)
    for name in sorted(set(lsec) | set(rsec)):
        lrows = lsec.get(name, {}).get("rows", [])
        rrows = rsec.get(name, {}).get("rows", [])
        if len(lrows) != len(rrows):
            diffs.append(
                f"[{name}] row count {len(lrows)} != {len(rrows)}"
            )
            continue
        for i, (lrow, rrow) in enumerate(zip(lrows, rrows)):
            if lrow != rrow:
                diffs.append(f"[{name}] row {i}: {lrow} != {rrow}")
    return diffs


def compare_grid_payloads(
    left: Sequence[Mapping[str, Any]],
    right: Sequence[Mapping[str, Any]],
) -> GridComparison:
    """Compare two runs (e.g. serial vs parallel, or two commits).

    Digest equality is the gate; row-level differences are collected for
    the report when digests disagree.
    """
    lmap, rmap = _index_payloads(left), _index_payloads(right)
    comparison = GridComparison()
    comparison.only_left = sorted(set(lmap) - set(rmap))
    comparison.only_right = sorted(set(rmap) - set(lmap))
    for exp_id in sorted(set(lmap) & set(rmap)):
        comparison.compared += 1
        lexp = lmap[exp_id].get("experiment", lmap[exp_id])
        rexp = rmap[exp_id].get("experiment", rmap[exp_id])
        ldigest = str(lexp.get("grid_digest", ""))
        rdigest = str(rexp.get("grid_digest", ""))
        if ldigest != rdigest:
            comparison.digest_mismatches[exp_id] = (ldigest, rdigest)
            comparison.row_diffs[exp_id] = _row_diffs(
                lmap[exp_id], rmap[exp_id]
            )
    return comparison
