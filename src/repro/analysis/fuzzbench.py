"""Campaign measurement for the coverage-guided fuzzer (experiment E19).

The claim under test: at an equal seed budget, the coverage-guided
campaign (:func:`repro.fuzz.run_campaign`) discovers strictly more
unique coverage signatures than the blind fuzzer walking fresh
generator seeds.  Both arms share one loop and one signature function
(:func:`repro.fuzz.run_blind` is ``run_campaign`` in ``"blind"`` mode),
so the comparison isolates exactly one variable — whether the corpus
steers generation.

Guidance needs runway: fresh generator draws are near-free novelty
until the generator's input diversity saturates (~200 draws), so below
``MIN_GUIDED_BUDGET`` the two arms are statistically tied and the
strict inequality is not claimed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Sequence, Tuple

from ..fuzz import CampaignConfig, CampaignReport, run_blind, run_campaign
from ..scenarios.fuzz import DEFAULT_FUZZ_PROTOCOLS

__all__ = ["MIN_GUIDED_BUDGET", "FuzzComparison", "compare_campaigns"]

#: Smallest budget at which the guided arm's advantage is asserted.
MIN_GUIDED_BUDGET = 256


@dataclass
class FuzzComparison:
    """Guided and blind campaign reports over the same budget and seeds."""

    budget: int
    start_seed: int
    guided: CampaignReport
    blind: CampaignReport

    @property
    def advantage(self) -> int:
        """Unique signatures guided found beyond blind (positive = win)."""
        return self.guided.unique_signatures - self.blind.unique_signatures

    def compare_rows(self) -> List[List[Any]]:
        """One row per arm for the experiment's ``compare`` section."""
        rows = []
        for report in (self.guided, self.blind):
            rows.append(
                [
                    report.mode,
                    self.budget,
                    self.start_seed,
                    report.executed,
                    report.unique_signatures,
                    report.corpus_stats.get("entries", 0),
                    report.corpus_stats.get("features", 0),
                    len(report.failures),
                ]
            )
        return rows

    def trajectory_rows(self) -> List[List[Any]]:
        """Per-round discovery curves for both arms (``trajectory``)."""
        rows = []
        for report in (self.guided, self.blind):
            for point in report.trajectory:
                rows.append(
                    [
                        report.mode,
                        self.budget,
                        point["round"],
                        point["executed"],
                        point["unique_signatures"],
                        point["corpus_entries"],
                        point["mutants"],
                    ]
                )
        return rows


def compare_campaigns(
    budget: int,
    start_seed: int = 0,
    protocols: Sequence[str] = DEFAULT_FUZZ_PROTOCOLS,
    round_size: int = 8,
) -> FuzzComparison:
    """Run both arms serially over the same budget and seed stream.

    Serial on purpose (``shards=1``): experiment drivers already run in
    pool workers, which are daemonic and cannot nest process pools.
    """
    guided = run_campaign(
        CampaignConfig(
            budget=budget,
            start_seed=start_seed,
            protocols=tuple(protocols),
            round_size=round_size,
            shrink=False,
        )
    )
    blind = run_blind(
        budget, start_seed=start_seed, protocols=tuple(protocols)
    )
    return FuzzComparison(
        budget=budget, start_seed=start_seed, guided=guided, blind=blind
    )
