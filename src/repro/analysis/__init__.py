"""Measurement and reporting utilities for the experiment suite."""

from .comparison import PROTOCOLS, ProtocolSpec, build_protocol
from .metrics import CommonCaseResult, Stats, repeat_latency, run_common_case
from .report import format_markdown_table, format_scenario_results, format_table

__all__ = [
    "CommonCaseResult",
    "PROTOCOLS",
    "ProtocolSpec",
    "Stats",
    "build_protocol",
    "format_markdown_table",
    "format_scenario_results",
    "format_table",
    "repeat_latency",
    "run_common_case",
]
