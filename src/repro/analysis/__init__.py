"""Measurement and reporting utilities for the experiment suite."""

from .comparison import PROTOCOLS, ProtocolSpec, build_protocol
from .profiling import (
    PhaseProfiler,
    broadcast_storm,
    cprofile_top,
    event_churn,
    format_cprofile_rows,
    load_bench_json,
    simcore_snapshot,
    timer_churn,
    write_bench_json,
)
from .fuzzbench import (
    MIN_GUIDED_BUDGET,
    FuzzComparison,
    compare_campaigns,
)
from .grids import (
    GridComparison,
    compare_grid_payloads,
    format_experiment_payload,
    merge_section_rows,
)
from .metrics import (
    CatchupResult,
    CommonCaseResult,
    MonitorTailResult,
    Stats,
    ThroughputResult,
    repeat_latency,
    run_catchup,
    run_common_case,
    run_monitor_tail,
    run_smr_throughput,
    smr_instance_factory,
)
from .report import format_markdown_table, format_scenario_results, format_table

__all__ = [
    "CatchupResult",
    "CommonCaseResult",
    "FuzzComparison",
    "GridComparison",
    "MIN_GUIDED_BUDGET",
    "MonitorTailResult",
    "PROTOCOLS",
    "PhaseProfiler",
    "ProtocolSpec",
    "Stats",
    "ThroughputResult",
    "broadcast_storm",
    "build_protocol",
    "compare_campaigns",
    "compare_grid_payloads",
    "cprofile_top",
    "event_churn",
    "format_cprofile_rows",
    "format_experiment_payload",
    "merge_section_rows",
    "format_markdown_table",
    "format_scenario_results",
    "format_table",
    "load_bench_json",
    "repeat_latency",
    "run_catchup",
    "run_common_case",
    "run_monitor_tail",
    "run_smr_throughput",
    "simcore_snapshot",
    "smr_instance_factory",
    "timer_churn",
    "write_bench_json",
]
