"""Measurement and reporting utilities for the experiment suite."""

from .comparison import PROTOCOLS, ProtocolSpec, build_protocol
from .metrics import (
    CommonCaseResult,
    Stats,
    ThroughputResult,
    repeat_latency,
    run_common_case,
    run_smr_throughput,
    smr_instance_factory,
)
from .report import format_markdown_table, format_scenario_results, format_table

__all__ = [
    "CommonCaseResult",
    "PROTOCOLS",
    "ProtocolSpec",
    "Stats",
    "ThroughputResult",
    "build_protocol",
    "format_markdown_table",
    "format_scenario_results",
    "format_table",
    "repeat_latency",
    "run_common_case",
    "run_smr_throughput",
    "smr_instance_factory",
]
