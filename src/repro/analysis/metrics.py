"""Measurement helpers: latency distributions and run summaries."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..sim.network import DelayModel, RoundSynchronousDelay
from ..sim.process import Process
from ..sim.runner import Cluster
from ..sim.trace import message_delays

__all__ = ["Stats", "CommonCaseResult", "run_common_case", "repeat_latency"]


@dataclass(frozen=True)
class Stats:
    """Summary statistics of a sample (times or delay counts)."""

    count: int
    mean: float
    p50: float
    p95: float
    minimum: float
    maximum: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "Stats":
        if not values:
            raise ValueError("cannot summarize an empty sample")
        array = np.asarray(values, dtype=float)
        return cls(
            count=int(array.size),
            mean=float(array.mean()),
            p50=float(np.percentile(array, 50)),
            p95=float(np.percentile(array, 95)),
            minimum=float(array.min()),
            maximum=float(array.max()),
        )

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return (
            f"n={self.count} mean={self.mean:.3f} p50={self.p50:.3f} "
            f"p95={self.p95:.3f} min={self.minimum:.3f} max={self.maximum:.3f}"
        )


@dataclass(frozen=True)
class CommonCaseResult:
    """One common-case run: decision latency and message cost."""

    decided: bool
    value: Any
    decision_time: Optional[float]
    delays: Optional[int]
    messages: int
    messages_by_type: Dict[str, int]
    #: Estimated bytes put on the wire up to the decision (see
    #: :func:`repro.sim.network.payload_size`).
    bytes_sent: int = 0


def run_common_case(
    processes: Sequence[Process],
    correct_pids: Optional[Iterable[int]] = None,
    delta: float = 1.0,
    delay_model: Optional[DelayModel] = None,
    timeout: float = 1_000.0,
) -> CommonCaseResult:
    """Run a cluster until all correct processes decide; report latency.

    With the default round-synchronous delay model, ``delays`` is the
    decision latency in message delays — the paper's headline metric.
    """
    model = delay_model or RoundSynchronousDelay(delta)
    cluster = Cluster(list(processes), delay_model=model)
    result = cluster.run_until_decided(correct_pids=correct_pids, timeout=timeout)
    delays = None
    if result.decided and isinstance(model, RoundSynchronousDelay):
        delays = message_delays(result.decision_time, delta)
    # Count only messages sent up to the decision (pacemakers keep running).
    from ..sim.network import payload_size

    if result.decided:
        messages = sum(
            1
            for env in cluster.trace.sends
            if env.send_time <= result.decision_time + 1e-9
        )
    else:
        messages = cluster.trace.message_count()
    by_type: Dict[str, int] = {}
    bytes_sent = 0
    for env in cluster.trace.sends:
        if result.decided and env.send_time > result.decision_time + 1e-9:
            continue
        name = type(env.payload).__name__
        by_type[name] = by_type.get(name, 0) + 1
        bytes_sent += payload_size(env.payload)
    return CommonCaseResult(
        decided=result.decided,
        value=result.decision_value,
        decision_time=result.decision_time,
        delays=delays,
        messages=messages,
        messages_by_type=by_type,
        bytes_sent=bytes_sent,
    )


def repeat_latency(
    build_processes,
    runs: int,
    delay_model_factory,
    correct_pids: Optional[Iterable[int]] = None,
    timeout: float = 1_000.0,
) -> Stats:
    """Run ``runs`` independent clusters (fresh delay model per run, e.g.
    different seeds) and summarize the wall-clock decision latency."""
    times: List[float] = []
    for run in range(runs):
        cluster = Cluster(
            list(build_processes()), delay_model=delay_model_factory(run)
        )
        result = cluster.run_until_decided(
            correct_pids=correct_pids, timeout=timeout
        )
        if not result.decided:
            raise RuntimeError(f"run {run} did not decide within {timeout}")
        times.append(result.decision_time)
    return Stats.from_values(times)
