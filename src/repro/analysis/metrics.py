"""Measurement helpers: latency distributions, throughput, run summaries."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..sim.network import DelayModel, RoundSynchronousDelay, SynchronousDelay
from ..sim.process import Process
from ..sim.runner import Cluster
from ..sim.trace import message_delays

__all__ = [
    "Stats",
    "CatchupResult",
    "CommonCaseResult",
    "MonitorTailResult",
    "ThroughputResult",
    "run_catchup",
    "run_common_case",
    "repeat_latency",
    "run_monitor_tail",
    "run_smr_throughput",
    "smr_instance_factory",
]


@dataclass(frozen=True)
class Stats:
    """Summary statistics of a sample (times or delay counts)."""

    count: int
    mean: float
    p50: float
    p95: float
    minimum: float
    maximum: float
    #: Tail percentile (E18's headline metric); defaulted so that older
    #: pickled/recorded Stats and positional callers keep working.
    p99: float = 0.0

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "Stats":
        if not values:
            raise ValueError("cannot summarize an empty sample")
        array = np.asarray(values, dtype=float)
        return cls(
            count=int(array.size),
            mean=float(array.mean()),
            p50=float(np.percentile(array, 50)),
            p95=float(np.percentile(array, 95)),
            minimum=float(array.min()),
            maximum=float(array.max()),
            p99=float(np.percentile(array, 99)),
        )

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return (
            f"n={self.count} mean={self.mean:.3f} p50={self.p50:.3f} "
            f"p95={self.p95:.3f} p99={self.p99:.3f} "
            f"min={self.minimum:.3f} max={self.maximum:.3f}"
        )


@dataclass(frozen=True)
class CommonCaseResult:
    """One common-case run: decision latency and message cost."""

    decided: bool
    value: Any
    decision_time: Optional[float]
    delays: Optional[int]
    messages: int
    messages_by_type: Dict[str, int]
    #: Estimated bytes put on the wire up to the decision (see
    #: :func:`repro.sim.network.payload_size`).
    bytes_sent: int = 0


def run_common_case(
    processes: Sequence[Process],
    correct_pids: Optional[Iterable[int]] = None,
    delta: float = 1.0,
    delay_model: Optional[DelayModel] = None,
    timeout: float = 1_000.0,
) -> CommonCaseResult:
    """Run a cluster until all correct processes decide; report latency.

    With the default round-synchronous delay model, ``delays`` is the
    decision latency in message delays — the paper's headline metric.
    """
    model = delay_model or RoundSynchronousDelay(delta)
    cluster = Cluster(list(processes), delay_model=model)
    result = cluster.run_until_decided(correct_pids=correct_pids, timeout=timeout)
    delays = None
    if result.decided and isinstance(model, RoundSynchronousDelay):
        delays = message_delays(result.decision_time, delta)
    # Count only messages sent up to the decision (pacemakers keep running).
    from ..sim.network import payload_size

    if result.decided:
        messages = sum(
            1
            for env in cluster.trace.sends
            if env.send_time <= result.decision_time + 1e-9
        )
    else:
        messages = cluster.trace.message_count()
    by_type: Dict[str, int] = {}
    bytes_sent = 0
    for env in cluster.trace.sends:
        if result.decided and env.send_time > result.decision_time + 1e-9:
            continue
        name = type(env.payload).__name__
        by_type[name] = by_type.get(name, 0) + 1
        bytes_sent += payload_size(env.payload)
    return CommonCaseResult(
        decided=result.decided,
        value=result.decision_value,
        decision_time=result.decision_time,
        delays=delays,
        messages=messages,
        messages_by_type=by_type,
        bytes_sent=bytes_sent,
    )


@dataclass(frozen=True)
class ThroughputResult:
    """One closed-loop SMR run: sustained ops/sec and latency percentiles."""

    backend: str
    n: int
    f: int
    batch_size: int
    pipeline_depth: int
    clients: int
    window: int
    completed: int
    #: Simulated time from start until every client's workload drained.
    duration: float
    #: Completed commands per unit of simulated time.
    ops_per_sec: float
    #: End-to-end command latency distribution (submit -> f+1 replies).
    latency: Stats
    #: Log slots the replicas actually consumed (batching collapses these).
    slots_used: int
    messages_sent: int

    def row(self) -> List[Any]:
        """The table row the E15 experiment prints."""
        return [
            self.backend,
            self.batch_size,
            self.pipeline_depth,
            self.completed,
            self.slots_used,
            round(self.ops_per_sec, 3),
            round(self.latency.p50, 1),
            round(self.latency.p95, 1),
        ]


def smr_instance_factory(backend: str, n: int, f: int, t: int = 1,
                         base_timeout: float = 12.0):
    """Per-slot consensus factory for an SMR backend (``fbft`` / ``pbft``).

    Thin view over :func:`repro.smr.backends.smr_backend` — the same
    construction the scenario adapters use, so harness and scenarios
    always measure the identical engine.
    """
    from ..smr.backends import smr_backend

    return smr_backend(backend, n, f, t=t, base_timeout=base_timeout)[2]


def run_smr_throughput(
    backend: str = "fbft",
    n: int = 4,
    f: int = 1,
    t: int = 1,
    clients: int = 4,
    requests_per_client: int = 16,
    window: int = 8,
    batch_size: int = 8,
    pipeline_depth: int = 4,
    batch_timeout: float = 0.0,
    delta: float = 1.0,
    base_timeout: float = 12.0,
    timeout: float = 100_000.0,
) -> ThroughputResult:
    """Drive a closed-loop KV workload through a replica group and measure
    sustained throughput and latency percentiles.

    Every client keeps ``window`` commands in flight; the replicas pack
    up to ``batch_size`` commands per slot and keep ``pipeline_depth``
    consensus instances running.  Simulated time is deterministic, so the
    reported ops/sec are exactly reproducible.
    """
    from ..core.config import ReplicationConfig
    from ..smr.client import SMRClient
    from ..smr.kvstore import KVStore
    from ..smr.replica import SMRReplica

    factory = smr_instance_factory(backend, n, f, t=t, base_timeout=base_timeout)
    replication = ReplicationConfig(
        batch_size=batch_size,
        batch_timeout=batch_timeout,
        pipeline_depth=pipeline_depth,
    )
    replicas = [
        SMRReplica(pid, n, f, KVStore(), factory, replication=replication)
        for pid in range(n)
    ]
    client_procs = [
        SMRClient(pid=n + i, replica_pids=range(n), f=f, window=window)
        for i in range(clients)
    ]
    for index, client in enumerate(client_procs):
        client.load_workload(
            [("set", f"k{index}.{i}", i) for i in range(requests_per_client)]
        )
    cluster = Cluster(
        replicas + client_procs, delay_model=SynchronousDelay(delta)
    )
    cluster.start()
    duration = cluster.sim.run_until(
        lambda: all(c.all_completed for c in client_procs), timeout=timeout
    )
    completed = sum(c.completed_count for c in client_procs)
    latencies = [l for c in client_procs for l in c.latencies()]
    slots_used = max(r.executed_upto for r in replicas) + 1
    # Slot-wise agreement (a replica may still be catching up on the very
    # last slot at the instant the workload drains).
    by_slot: Dict[int, set] = {}
    for replica in replicas:
        for slot, value in replica.log:
            by_slot.setdefault(slot, set()).add(value)
    conflicting = {slot for slot, values in by_slot.items() if len(values) > 1}
    assert not conflicting, f"replica logs diverged on slots {sorted(conflicting)}"
    return ThroughputResult(
        backend=backend,
        n=n,
        f=f,
        batch_size=batch_size,
        pipeline_depth=pipeline_depth,
        clients=clients,
        window=window,
        completed=completed,
        duration=duration,
        ops_per_sec=completed / duration,
        latency=Stats.from_values(latencies),
        slots_used=slots_used,
        messages_sent=cluster.network.stats.messages_sent,
    )


@dataclass(frozen=True)
class CatchupResult:
    """One crash-and-rejoin run of the durability subsystem (E17)."""

    backend: str
    n: int
    f: int
    checkpoint_interval: int
    disk: str
    #: Slots the victim was behind at the moment it recovered.
    lag_slots: int
    #: Simulated time from recovery until fully caught up.
    catchup_time: float
    #: CatchupRequest/CatchupReply messages and bytes from recovery on.
    catchup_messages: int
    catchup_bytes: int
    #: Stable-checkpoint slot the victim holds after rejoining.
    stable_slot: int
    #: WAL records the victim retains after rejoining (compaction proof).
    wal_records: int
    #: Whether the rebuilt state digest equals a never-crashed replica's.
    digests_equal: bool


def run_catchup(
    backend: str = "fbft",
    n: int = 4,
    f: int = 1,
    t: int = 1,
    checkpoint_interval: int = 4,
    warmup_requests: int = 4,
    lag_requests: int = 12,
    disk: str = "lost",
    batch_size: int = 2,
    pipeline_depth: int = 2,
    delta: float = 1.0,
    timeout: float = 50_000.0,
) -> CatchupResult:
    """Crash a durable replica, grow a lag, recover it, and measure the
    state transfer: catchup latency and bytes vs lag depth and
    checkpoint interval (experiment E17).

    Three simulated phases — warmup (everyone executes together), lag
    (the victim is down, ``disk`` retained or lost, while
    ``lag_requests`` commands commit without it), recovery (checkpoint
    restore + WAL replay + peer catchup) — all deterministic, so every
    reported number is exactly reproducible.
    """
    from ..core.config import DurabilityConfig, ReplicationConfig
    from ..sim.network import payload_size
    from ..smr.client import SMRClient
    from ..smr.kvstore import KVStore
    from ..smr.replica import SMRReplica
    from ..storage.checkpoint import state_digest

    registry = None
    if backend == "fbft":
        from ..smr.backends import smr_backend

        _config, registry, factory = smr_backend(backend, n, f, t=t)
    else:
        factory = smr_instance_factory(backend, n, f, t=t)
    durability = DurabilityConfig(checkpoint_interval=checkpoint_interval)
    replication = ReplicationConfig(
        batch_size=batch_size, pipeline_depth=pipeline_depth
    )
    replicas = [
        SMRReplica(
            pid, n, f, KVStore(), factory,
            replication=replication, durability=durability, registry=registry,
        )
        for pid in range(n)
    ]
    client = SMRClient(pid=n, replica_pids=range(n), f=f, window=2)
    cluster = Cluster(replicas + [client], delay_model=SynchronousDelay(delta))
    cluster.start()

    for i in range(warmup_requests):
        client.submit(("set", f"warm{i}", i))
    cluster.sim.run_until(
        lambda: client.completed_count == warmup_requests, timeout=timeout
    )

    victim = replicas[n - 1]
    survivors = [r for r in replicas if r is not victim]
    victim.crash()
    if disk == "lost":
        victim.wipe_storage()
    for i in range(lag_requests):
        client.submit(("set", f"lag{i}", i))
    total = warmup_requests + lag_requests
    cluster.sim.run_until(lambda: client.completed_count == total, timeout=timeout)

    lag_slots = max(r.executed_upto for r in survivors) - victim.executed_upto
    recovery_start = cluster.sim.now
    victim.recover()
    cluster.sim.run_until(
        lambda: not victim.catchup_active
        and victim.executed_upto >= max(r.executed_upto for r in survivors),
        timeout=timeout,
    )
    catchup_time = cluster.sim.now - recovery_start
    catchup_messages = 0
    catchup_bytes = 0
    for env in cluster.trace.sends:
        if env.send_time < recovery_start - 1e-9:
            continue
        if type(env.payload).__name__ in ("CatchupRequest", "CatchupReply"):
            catchup_messages += 1
            catchup_bytes += payload_size(env.payload)
    reference = max(survivors, key=lambda r: r.executed_upto)
    digests_equal = state_digest(victim.state_machine.snapshot()) == state_digest(
        reference.state_machine.snapshot()
    )
    return CatchupResult(
        backend=backend,
        n=n,
        f=f,
        checkpoint_interval=checkpoint_interval,
        disk=disk,
        lag_slots=lag_slots,
        catchup_time=catchup_time,
        catchup_messages=catchup_messages,
        catchup_bytes=catchup_bytes,
        stable_slot=victim.stable_checkpoint_slot,
        wal_records=len(victim.storage.wal),
        digests_equal=digests_equal,
    )


@dataclass(frozen=True)
class MonitorTailResult:
    """One throttled-leader SMR run with the performance monitor on or off
    (experiment E18)."""

    severity: float
    window: float
    monitor_on: bool
    completed: int
    #: Simulated time until every client's workload drained.
    duration: float
    #: Steady-state request latency (first ``warmup`` completions per
    #: client excluded: they land while the monitor is still sampling).
    latency: Stats
    #: Completed leader demotions, summed over the honest replicas.
    demotions: int
    votes_cast: int
    #: Highest view floor any replica reached (1 = leader never rotated).
    view_floor: int


def run_monitor_tail(
    severity: float = 8.0,
    window: float = 30.0,
    monitor_on: bool = True,
    n: int = 4,
    f: int = 1,
    t: int = 1,
    clients: int = 2,
    requests_per_client: int = 20,
    client_window: int = 4,
    batch_size: int = 2,
    pipeline_depth: int = 4,
    warmup: int = 4,
    delta: float = 1.0,
    base_timeout: float = 60.0,
    timeout: float = 100_000.0,
) -> MonitorTailResult:
    """Throttle the initial leader and measure the latency tail with the
    performance monitor on vs off (experiment E18).

    Replica 0 stays honest but every protocol message it sends is delayed
    by ``severity`` — the performance attack that never trips a timeout
    (``base_timeout`` is far above any slot latency).  With the monitor
    off the cluster limps at the throttled pace forever; with it on the
    degraded slot latency should cross the drain-rate threshold, gather
    ``2f + 1`` demotion votes and rotate leadership, pulling p99 back
    down.  Both arms share the key registry, workload and delay model, so
    the only difference is the monitor itself.
    """
    from ..core.config import MonitorConfig, ReplicationConfig
    from ..sim.network import DelayRule
    from ..smr.backends import smr_backend
    from ..smr.client import SMRClient
    from ..smr.kvstore import KVStore
    from ..smr.replica import SMRReplica

    _config, registry, factory = smr_backend(
        "fbft", n, f, t=t, base_timeout=base_timeout
    )
    replication = ReplicationConfig(
        batch_size=batch_size, pipeline_depth=pipeline_depth
    )
    monitor = MonitorConfig(window=window) if monitor_on else None
    replicas = [
        SMRReplica(
            pid, n, f, KVStore(), factory,
            replication=replication, registry=registry, monitor=monitor,
        )
        for pid in range(n)
    ]
    client_procs = [
        SMRClient(pid=n + i, replica_pids=range(n), f=f, window=client_window)
        for i in range(clients)
    ]
    for index, client in enumerate(client_procs):
        client.load_workload(
            [("set", f"k{index}.{i}", i) for i in range(requests_per_client)]
        )
    cluster = Cluster(
        replicas + client_procs, delay_model=SynchronousDelay(delta)
    )
    cluster.network.set_delay_rule(
        DelayRule(
            name="throttle-leader",
            extra_delay=severity,
            src=frozenset({0}),
            payload_types=("SlotMessage",),
        )
    )
    cluster.start()
    duration = cluster.sim.run_until(
        lambda: all(c.all_completed for c in client_procs), timeout=timeout
    )
    steady = [
        latency
        for client in client_procs
        for latency in client.latencies()[warmup:]
    ]
    demotions = votes = 0
    floor = 1
    for replica in replicas:
        mon = replica.leader_monitor
        if mon is not None:
            demotions += mon.demotions
            votes += mon.votes_cast
            floor = max(floor, mon.view_floor)
    return MonitorTailResult(
        severity=severity,
        window=window,
        monitor_on=monitor_on,
        completed=sum(c.completed_count for c in client_procs),
        duration=duration,
        latency=Stats.from_values(steady),
        demotions=demotions,
        votes_cast=votes,
        view_floor=floor,
    )


def repeat_latency(
    build_processes,
    runs: int,
    delay_model_factory,
    correct_pids: Optional[Iterable[int]] = None,
    timeout: float = 1_000.0,
) -> Stats:
    """Run ``runs`` independent clusters (fresh delay model per run, e.g.
    different seeds) and summarize the wall-clock decision latency."""
    times: List[float] = []
    for run in range(runs):
        cluster = Cluster(
            list(build_processes()), delay_model=delay_model_factory(run)
        )
        result = cluster.run_until_decided(
            correct_pids=correct_pids, timeout=timeout
        )
        if not result.decided:
            raise RuntimeError(f"run {run} did not decide within {timeout}")
        times.append(result.decision_time)
    return Stats.from_values(times)
