"""Plain-text tables for benchmark output (EXPERIMENTS.md material)."""

from __future__ import annotations

from typing import Any, List, Sequence

__all__ = ["format_table", "format_markdown_table", "format_scenario_results"]


def _stringify(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}".rstrip("0").rstrip(".")
    return str(cell)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Fixed-width aligned table for terminal output."""
    table = [[_stringify(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in table:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    out: List[str] = [line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(row) for row in table)
    return "\n".join(out)


def format_markdown_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]]
) -> str:
    """GitHub-flavoured markdown table (pasteable into EXPERIMENTS.md)."""
    out = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        out.append("| " + " | ".join(_stringify(c) for c in row) + " |")
    return "\n".join(out)


def format_scenario_results(results: Sequence[Any]) -> str:
    """Summary table for a batch of scenario runs.

    Accepts :class:`~repro.scenarios.runner.ScenarioResult` objects (typed
    loosely to keep this module dependency-free).
    """
    rows = []
    for result in results:
        spec = result.spec
        rows.append([
            spec.name,
            spec.protocol,
            "OK" if result.ok else "FAIL",
            result.steps if result.steps is not None else "-",
            result.messages_sent,
            result.bytes_sent,
            ";".join(v.name for v in result.failures) or "-",
        ])
    return format_table(
        ["scenario", "protocol", "verdict", "steps", "msgs", "bytes", "failed oracles"],
        rows,
    )
