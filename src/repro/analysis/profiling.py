"""Profiling the simulation core: events/sec, per-phase wall clock, cProfile.

The repository's experiments are all bounded by the discrete-event core's
per-event constant factor, so this module makes that factor *measurable
and recordable*:

* :class:`PhaseProfiler` — tag spans of work (``with profiler.phase(...)``)
  and get wall-clock seconds plus simulator events/sec per phase;
* :func:`cprofile_top` — run a callable under :mod:`cProfile` and return
  the top-N functions by internal time as structured rows (the quick "what
  is the hot path *now*" answer);
* :func:`write_bench_json` / :func:`load_bench_json` — the ``BENCH_*.json``
  trajectory format: every benchmark run appends a machine-readable record
  of what was measured on which interpreter, so the performance history of
  the repository is data, not folklore.

Wall-clock numbers are hardware-dependent by nature; everything else in
this repository is deterministic.  Keep the two apart: determinism is
asserted by trace digests (:mod:`repro.sim.digest`), speed is *recorded*
here and only ever asserted as a ratio against a reference implementation
measured in the same process (see ``benchmarks/bench_e16_simcore.py``).
"""

from __future__ import annotations

import cProfile
import io
import json
import platform
import pstats
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ..sim.events import Simulator
from ..sim.network import Network, SynchronousDelay

__all__ = [
    "PhaseProfile",
    "PhaseProfiler",
    "ProfileRow",
    "cprofile_top",
    "format_cprofile_rows",
    "write_bench_json",
    "load_bench_json",
    "BENCH_SCHEMA_VERSION",
    "SUPPORTED_BENCH_SCHEMAS",
    "E16_QUICK_PARAMS",
    "E16_FULL_PARAMS",
    "E20_QUICK_SIZES",
    "E20_FULL_SIZES",
    "E21_QUICK_SIZES",
    "E21_FULL_SIZES",
    "E21_SCENARIOS",
    "recorder_sim_net",
    "scenario_obs_rate",
    "event_churn",
    "timer_churn",
    "broadcast_storm",
    "cert_storm",
    "reference_sim_net",
    "crypto_verify_rate",
    "smr_wall_rate",
    "fuzz_seed_rate",
    "simcore_snapshot",
]

#: Bump when the BENCH_*.json layout changes incompatibly.
BENCH_SCHEMA_VERSION = 1

#: Every layout :func:`load_bench_json` can read.  Version 2 adds the
#: experiment-framework block (see :mod:`repro.experiments.store`) on top
#: of the version-1 envelope; readers of v1 fields work unchanged.
SUPPORTED_BENCH_SCHEMAS = (1, 2)


@dataclass(frozen=True)
class PhaseProfile:
    """Wall-clock measurement of one tagged span of work."""

    name: str
    wall_seconds: float
    #: Simulator events executed during the span (0 if no sim was given).
    events: int

    @property
    def events_per_sec(self) -> float:
        if self.wall_seconds <= 0.0 or self.events == 0:
            return 0.0
        return self.events / self.wall_seconds


@dataclass
class PhaseProfiler:
    """Collects :class:`PhaseProfile` spans.

    >>> profiler = PhaseProfiler()
    >>> sim = Simulator()
    >>> _ = sim.schedule(1.0, lambda: None)
    >>> with profiler.phase("drain", sim):
    ...     sim.run()
    >>> profiler.phases[0].events
    1
    """

    phases: List[PhaseProfile] = field(default_factory=list)

    @contextmanager
    def phase(self, name: str, sim: Optional[Simulator] = None) -> Iterator[None]:
        events_before = sim.events_processed if sim is not None else 0
        start = time.perf_counter()
        try:
            yield
        finally:
            wall = time.perf_counter() - start
            events = (
                sim.events_processed - events_before if sim is not None else 0
            )
            self.phases.append(PhaseProfile(name, wall, events))

    def total_seconds(self) -> float:
        return sum(p.wall_seconds for p in self.phases)

    def to_rows(self) -> List[List[Any]]:
        """Table rows: phase, wall seconds, events, events/sec."""
        return [
            [
                p.name,
                round(p.wall_seconds, 4),
                p.events,
                round(p.events_per_sec) if p.events else "-",
            ]
            for p in self.phases
        ]

    def to_dict(self) -> Dict[str, Any]:
        return {
            p.name: {
                "wall_seconds": p.wall_seconds,
                "events": p.events,
                "events_per_sec": p.events_per_sec,
            }
            for p in self.phases
        }


@dataclass(frozen=True)
class ProfileRow:
    """One function from a cProfile run, by internal time."""

    function: str
    ncalls: int
    tottime: float
    cumtime: float


def cprofile_top(
    fn: Callable[[], Any], top: int = 10
) -> Tuple[Any, List[ProfileRow]]:
    """Run ``fn`` under cProfile; return ``(fn(), top-N rows by tottime)``."""
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn()
    finally:
        profiler.disable()
    stats = pstats.Stats(profiler, stream=io.StringIO())
    stats.sort_stats("tottime")
    rows: List[ProfileRow] = []
    for func in stats.fcn_list[:top]:  # type: ignore[attr-defined]
        cc, nc, tt, ct, _callers = stats.stats[func]  # type: ignore[attr-defined]
        filename, lineno, name = func
        if filename == "~":
            where = name  # builtins render as "~:0(<method ...>)"
        else:
            short = filename.rsplit("/", 1)[-1]
            where = f"{short}:{lineno}({name})"
        rows.append(
            ProfileRow(function=where, ncalls=nc, tottime=tt, cumtime=ct)
        )
    return result, rows


def format_cprofile_rows(rows: List[ProfileRow]) -> str:
    """Render :func:`cprofile_top` rows as an aligned text table."""
    lines = [f"{'ncalls':>10}  {'tottime':>8}  {'cumtime':>8}  function"]
    for row in rows:
        lines.append(
            f"{row.ncalls:>10}  {row.tottime:>8.4f}  {row.cumtime:>8.4f}  "
            f"{row.function}"
        )
    return "\n".join(lines)


def write_bench_json(
    path: str,
    bench: str,
    results: Dict[str, Any],
    meta: Optional[Dict[str, Any]] = None,
    schema_version: int = BENCH_SCHEMA_VERSION,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Write one ``BENCH_<name>.json`` perf-trajectory record.

    The envelope is deliberately small and stable: scripts diff the
    ``results`` mapping across commits, and the metadata says what
    hardware/interpreter produced the numbers.  ``extra`` merges
    additional top-level blocks (the experiment framework's schema-2
    ``experiment`` block); ``schema_version`` must be a supported layout.
    """
    if schema_version not in SUPPORTED_BENCH_SCHEMAS:
        raise ValueError(f"unsupported BENCH json schema {schema_version!r}")
    payload: Dict[str, Any] = {
        "schema_version": schema_version,
        "bench": bench,
        "created_unix": time.time(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "results": results,
    }
    if meta:
        payload["meta"] = meta
    if extra:
        payload.update(extra)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return payload


# ---------------------------------------------------------------------------
# Canonical micro-workloads (E16).  Parameterized by core factories so
# ``benchmarks/bench_e16_simcore.py`` can drive its embedded legacy copy of
# the pre-optimization core through the identical code.
# ---------------------------------------------------------------------------


#: E16 workload sizes as ``(event_churn, timer_churn, storm_n, storm_rounds)``.
#: Single source of truth: ``benchmarks/bench_e16_simcore.py`` and
#: :func:`simcore_snapshot` must measure the same workloads or their
#: ``BENCH_E16_simcore.json`` records stop being comparable.
E16_QUICK_PARAMS = (60_000, 40_000, 12, 120)
E16_FULL_PARAMS = (250_000, 200_000, 16, 600)


def _default_sim_net():
    sim = Simulator()
    return sim, Network(sim, delay_model=SynchronousDelay(1.0))


def event_churn(n_events: int, sim_factory: Callable[[], Any] = Simulator) -> float:
    """Self-rescheduling callback chain: pure event-loop overhead.

    Returns sustained events/sec.
    """
    sim = sim_factory()
    count = [0]

    def tick() -> None:
        count[0] += 1
        if count[0] < n_events:
            sim.schedule(1.0, tick)

    sim.schedule(1.0, tick)
    start = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - start
    assert sim.events_processed == n_events
    return n_events / wall


def _noop() -> None:
    return None


def timer_churn(n_timers: int, sim_factory: Callable[[], Any] = Simulator) -> float:
    """Arm-then-cancel storms — the per-slot SMR pacemaker pattern.

    Returns schedule+cancel operations/sec (heap compaction keeps the
    queue from bloating; the legacy core pays for every tombstone).
    """
    sim = sim_factory()
    batch = 1000
    start = time.perf_counter()
    for _ in range(max(1, n_timers // batch)):
        handles = [sim.schedule(10.0, _noop) for _ in range(batch)]
        for handle in handles:
            handle.cancel()
    sim.run()
    wall = time.perf_counter() - start
    return n_timers / wall


def broadcast_storm(
    n: int,
    rounds: int,
    sim_net_factory: Callable[[], Any] = _default_sim_net,
) -> float:
    """n processes broadcast an n-recipient payload every round: the
    network hot path (send → schedule → deliver).  Returns events/sec."""
    sim, net = sim_net_factory()
    remaining = [rounds]

    def handler(src: int, payload: Any) -> None:
        return None

    for pid in range(n):
        net.register(pid, handler)

    def pump() -> None:
        if remaining[0] <= 0:
            return
        remaining[0] -= 1
        for src in range(n):
            net.broadcast(src, ("req", src, remaining[0]))
        sim.schedule(1.0, pump)

    sim.schedule(0.0, pump)
    start = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - start
    expected = n * n * rounds
    assert sim.events_processed >= expected, "storm did not run fully"
    return sim.events_processed / wall


# ---------------------------------------------------------------------------
# E20 workloads: the backend x workload accelerator grid.  Each returns a
# wall-clock rate; each takes a ``reference`` knob that pins the
# pre-optimization path (``fast_paths=False`` networks / legacy crypto
# via ``crypto_reference_mode``) so the reported speedups are ratios
# measured on the same machine, never absolute folklore.
# ---------------------------------------------------------------------------


#: E20 workload sizes, keyed by workload name.  ``benchmarks/
#: bench_e20_accel.py`` and the E20 registry entry share these so the
#: BENCH_E20 trajectory and the experiment CLI always measure the same
#: thing.
E20_QUICK_SIZES: Dict[str, Tuple[int, ...]] = {
    "broadcast_storm": (12, 200),  # (n, rounds)
    "cert_broadcast": (12, 200),  # (n, rounds)
    "timer_churn": (40_000,),  # (n_timers,)
    "smr_throughput": (4, 16),  # (clients, requests_per_client)
    "fuzz_seeds": (24,),  # (budget,)
    "crypto_verify": (300,),  # (batches,)
}
E20_FULL_SIZES: Dict[str, Tuple[int, ...]] = {
    "broadcast_storm": (16, 600),
    "cert_broadcast": (16, 600),
    "timer_churn": (200_000,),
    "smr_throughput": (6, 32),
    "fuzz_seeds": (96,),
    "crypto_verify": (1500,),
}


def reference_sim_net():
    """A :func:`broadcast_storm` factory pinned to the pre-optimization
    network paths (the E20 ``reference`` variant)."""
    sim = Simulator()
    return sim, Network(
        sim, delay_model=SynchronousDelay(1.0), fast_paths=False
    )


def cert_storm(n: int, rounds: int, reference: bool = False) -> float:
    """Broadcast storm with *reused* quorum-cert payloads — the
    retransmission pattern real protocols exhibit (the same signed
    certificate object is re-broadcast every round).  Exercises the
    identity-keyed payload-size memo and the prebound delivery path;
    ``reference=True`` pins the pre-optimization network paths
    (``fast_paths=False``).  Returns events/sec.
    """
    from ..crypto.keys import KeyRegistry

    registry = KeyRegistry.for_processes(range(n))
    sim = Simulator()
    net = Network(
        sim,
        delay_model=SynchronousDelay(1.0),
        fast_paths=not reference,
    )
    payloads = []
    for src in range(n):
        proposal = ("commit", 7, f"value-{src}" * 8)
        cert = tuple(registry.signer(pid).sign(proposal) for pid in range(n))
        payloads.append(("cert", proposal, cert))

    def handler(src: int, payload: Any) -> None:
        return None

    for pid in range(n):
        net.register(pid, handler)
    remaining = [rounds]

    def pump() -> None:
        if remaining[0] <= 0:
            return
        remaining[0] -= 1
        for src in range(n):
            net.broadcast(src, payloads[src])
        sim.schedule(1.0, pump)

    sim.schedule(0.0, pump)
    start = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - start
    assert sim.events_processed >= n * n * rounds, "storm did not run fully"
    return sim.events_processed / wall


def crypto_verify_rate(batches: int, reference: bool = False) -> float:
    """Quorum-certificate verification: ``verify_all`` over 3-signature
    certificates drawn from a 32-payload pool, ``batches`` passes over
    the pool.  ``reference=True`` disables the canonicalization memo and
    batched hashing (per-signature serialization, the legacy loop).
    Returns signature verifications/sec.
    """
    from ..crypto.keys import KeyRegistry, crypto_reference_mode
    from contextlib import nullcontext

    with crypto_reference_mode() if reference else nullcontext():
        registry = KeyRegistry.for_processes(range(4))
        pool = [("decide", f"v{i}", i) for i in range(32)]
        certs = [
            [registry.signer(pid).sign(payload) for pid in range(3)]
            for payload in pool
        ]
        verified = 0
        start = time.perf_counter()
        for _ in range(batches):
            for payload, cert in zip(pool, certs):
                assert registry.verify_all(cert, payload)
                verified += len(cert)
        wall = time.perf_counter() - start
    return verified / wall


def smr_wall_rate(
    clients: int, requests_per_client: int, reference: bool = False
) -> float:
    """Wall-clock commands/sec of a closed-loop fbft SMR run (simulated
    ops/sec is E15's deterministic metric; this measures how fast the
    whole engine *executes*).  ``reference=True`` pins legacy crypto.
    """
    from contextlib import nullcontext

    from ..crypto.keys import crypto_reference_mode
    from .metrics import run_smr_throughput

    with crypto_reference_mode() if reference else nullcontext():
        start = time.perf_counter()
        result = run_smr_throughput(
            backend="fbft",
            clients=clients,
            requests_per_client=requests_per_client,
        )
        wall = time.perf_counter() - start
    return result.completed / wall


def fuzz_seed_rate(budget: int, reference: bool = False) -> float:
    """Fault-schedule fuzzing seeds/sec: one campaign round-tripping
    ``budget`` scenario executions through the coverage-guided harness.
    ``reference=True`` pins legacy crypto for every registry the
    scenarios build.
    """
    from contextlib import nullcontext

    from ..crypto.keys import crypto_reference_mode
    from ..fuzz.campaign import CampaignConfig, run_campaign

    with crypto_reference_mode() if reference else nullcontext():
        config = CampaignConfig(budget=budget, round_size=8)
        start = time.perf_counter()
        report = run_campaign(config)
        wall = time.perf_counter() - start
    assert report.executed == budget, "campaign stopped early"
    return report.executed / wall


# ---------------------------------------------------------------------------
# E21 workloads: observability overhead.  Each workload runs in two
# variants — recorder off and a FlightRecorder attached — and E21 reports
# the on/off ratio.  The broadcast storm measures the selective tracer's
# cost on *unwanted* payloads (the network hot path: one memoized
# ``wants`` verdict, then the fast delivery post); the scenario sweep
# measures the cost on real protocol traffic (classified events, causal
# buckets, replica hooks).
# ---------------------------------------------------------------------------


#: E21 workload sizes.  ``broadcast_storm`` is ``(n, rounds)`` (the E16
#: storm, so the off-variant numbers are comparable across BENCH files);
#: ``scenario_sweep`` is ``(repeats,)`` over :data:`E21_SCENARIOS`.
E21_QUICK_SIZES: Dict[str, Tuple[int, ...]] = {
    "broadcast_storm": (12, 200),
    "scenario_sweep": (2,),
}
E21_FULL_SIZES: Dict[str, Tuple[int, ...]] = {
    "broadcast_storm": (16, 600),
    "scenario_sweep": (6,),
}

#: Scenario names the E21 sweep executes — one fast-path run, one
#: view-change-heavy run, one durable (WAL + checkpoint) run, so the
#: recorder's classified-event and causal-bucket paths all get exercised.
E21_SCENARIOS: Tuple[str, ...] = (
    "fast-path-clean",
    "slow-leader",
    "durable-recovery",
)


def recorder_sim_net():
    """A :func:`broadcast_storm` factory with a flight recorder attached
    (the E21 ``recorder`` variant of the network hot path)."""
    from ..obs.recorder import FlightRecorder

    sim = Simulator()
    net = Network(sim, delay_model=SynchronousDelay(1.0))
    net.install_tracer(FlightRecorder())
    return sim, net


def scenario_obs_rate(repeats: int, recorder: bool = False) -> float:
    """Wall-clock scenario executions/sec over :data:`E21_SCENARIOS`,
    optionally with a fresh :class:`~repro.obs.recorder.FlightRecorder`
    attached to every run.  Every run must pass its oracles — a recorder
    that perturbed a scenario would invalidate the measurement."""
    from ..scenarios.library import get_scenario
    from ..scenarios.runner import run_scenario

    if recorder:
        from ..obs.recorder import FlightRecorder

    executed = 0
    start = time.perf_counter()
    for _ in range(max(1, repeats)):
        for name in E21_SCENARIOS:
            rec = FlightRecorder() if recorder else None
            result = run_scenario(get_scenario(name), recorder=rec)
            assert result.ok, f"E21 sweep scenario {name} failed its oracles"
            executed += 1
    wall = time.perf_counter() - start
    return executed / wall


def simcore_snapshot(quick: bool = True, repeats: int = 2) -> Dict[str, float]:
    """Events/sec of the current core on the three E16 workloads."""
    churn, timers, n, rounds = E16_QUICK_PARAMS if quick else E16_FULL_PARAMS
    workloads: Dict[str, Callable[[], float]] = {
        "event_churn": lambda: event_churn(churn),
        "timer_churn": lambda: timer_churn(timers),
        "broadcast_storm": lambda: broadcast_storm(n, rounds),
    }
    return {
        name: max(fn() for _ in range(repeats))
        for name, fn in workloads.items()
    }


def load_bench_json(path: str) -> Dict[str, Any]:
    """Read a ``BENCH_*.json`` record back (schema-checked)."""
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    version = payload.get("schema_version")
    if version not in SUPPORTED_BENCH_SCHEMAS:
        raise ValueError(
            f"unsupported BENCH json schema {version!r} in {path} "
            f"(expected one of {SUPPORTED_BENCH_SCHEMAS})"
        )
    return payload
