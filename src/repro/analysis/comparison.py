"""Uniform constructors for every protocol family in the repository.

Experiments E1 and E6 sweep "ours vs FaB vs PBFT vs Paxos" over (f, t);
this module gives each family a :class:`ProtocolSpec` with the same shape
— minimum process count and a process-list builder — so the sweeps are
table-driven.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..baselines.fab import FaBConfig, FaBProcess
from ..baselines.optimistic import OptimisticConfig, OptimisticProcess
from ..baselines.paxos import PaxosConfig, PaxosProcess
from ..baselines.pbft import PBFTConfig, PBFTProcess
from ..core.config import ProtocolConfig
from ..core.fastbft import FastBFTProcess
from ..core.generalized import GeneralizedFBFTProcess
from ..core.quorums import (
    min_processes_fab,
    min_processes_fast_bft,
    min_processes_paxos_crash,
    min_processes_pbft,
)
from ..crypto.keys import KeyRegistry
from ..sim.process import Process

__all__ = ["ProtocolSpec", "PROTOCOLS", "build_protocol"]


@dataclass(frozen=True)
class ProtocolSpec:
    """One protocol family, normalized for sweeps."""

    name: str
    #: Common-case decision latency in message delays (the paper's claim).
    claimed_delays: int
    #: Whether the family distinguishes the fast threshold t from f.
    parameterized_by_t: bool
    #: Fault models the implementation supports.
    byzantine: bool
    min_n: Callable[[int, int], int]
    build: Callable[[int, int, int, Any], List[Process]]


def _build_ours(n: int, f: int, t: int, value: Any) -> List[Process]:
    config = ProtocolConfig(n=n, f=f, t=t)
    registry = KeyRegistry.for_processes(config.process_ids)
    cls = FastBFTProcess if t == f else GeneralizedFBFTProcess
    return [cls(pid, config, registry, value) for pid in config.process_ids]


def _build_fab(n: int, f: int, t: int, value: Any) -> List[Process]:
    config = FaBConfig(n=n, f=f, t=t)
    return [FaBProcess(pid, config, value) for pid in config.process_ids]


def _build_pbft(n: int, f: int, t: int, value: Any) -> List[Process]:
    config = PBFTConfig(n=n, f=f)
    return [PBFTProcess(pid, config, value) for pid in config.process_ids]


def _build_paxos(n: int, f: int, t: int, value: Any) -> List[Process]:
    config = PaxosConfig(n=n, f=f)
    return [PaxosProcess(pid, config, value) for pid in config.process_ids]


def _build_optimistic(n: int, f: int, t: int, value: Any) -> List[Process]:
    config = OptimisticConfig(n=n, f=f)
    return [OptimisticProcess(pid, config, value) for pid in config.process_ids]


PROTOCOLS: Dict[str, ProtocolSpec] = {
    "fbft": ProtocolSpec(
        name="FBFT (this paper)",
        claimed_delays=2,
        parameterized_by_t=True,
        byzantine=True,
        min_n=min_processes_fast_bft,
        build=_build_ours,
    ),
    "fab": ProtocolSpec(
        name="FaB Paxos",
        claimed_delays=2,
        parameterized_by_t=True,
        byzantine=True,
        min_n=min_processes_fab,
        build=_build_fab,
    ),
    "pbft": ProtocolSpec(
        name="PBFT",
        claimed_delays=3,
        parameterized_by_t=False,
        byzantine=True,
        min_n=lambda f, t: min_processes_pbft(f),
        build=_build_pbft,
    ),
    "paxos": ProtocolSpec(
        name="Paxos (crash)",
        claimed_delays=2,
        parameterized_by_t=False,
        byzantine=False,
        min_n=lambda f, t: min_processes_paxos_crash(f),
        build=_build_paxos,
    ),
    "optimistic": ProtocolSpec(
        # Kursawe-style: 2 delays only in failure-free runs (t = 0).
        name="Kursawe-style optimistic",
        claimed_delays=2,
        parameterized_by_t=False,
        byzantine=True,
        min_n=lambda f, t: min_processes_pbft(f),
        build=_build_optimistic,
    ),
}


def build_protocol(
    key: str,
    f: int,
    t: Optional[int] = None,
    n: Optional[int] = None,
    value: Any = "v",
) -> List[Process]:
    """Build a minimal (or size-``n``) deployment of protocol ``key``."""
    spec = PROTOCOLS[key]
    if t is None:
        t = f
    if n is None:
        n = spec.min_n(f, t)
    return spec.build(n, f, t, value)
