"""Execution-coverage signatures: bucketed features + a stable key.

A signature is a sorted tuple of short feature strings derived from the
coverage facts a run produced (:mod:`repro.scenarios.coverage`).  Two
runs with the same signature exercised the protocol the same way at the
granularity the fuzzer cares about: same path, same view spread, same
fault shapes, same oracle outcomes, same near-miss margins — with
message counts and margins *bucketed* so that noise (one more ack, a
slightly different decision time) does not make every run look novel.

The bucketing is the AFL trick: coarse enough that the corpus stays
small, fine enough that a genuinely new behavior (a view change, a
slow-path fallback, a tally one vote short of quorum) flips at least one
feature and earns its seed a corpus slot.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Tuple

__all__ = ["signature_features", "signature_key"]


def _count_bucket(count: int) -> str:
    """Power-of-four bucket for event counts (AFL-style hit counts).

    Coarser than AFL's powers of two on purpose: simulated runs are
    noise-free, so neighboring counts differ for boring reasons (one
    more replica, one more client request) and a fine bucket would make
    every run look novel — drowning the corpus in redundant entries.
    """
    if count <= 0:
        return "0"
    bucket = 1
    while bucket * 4 <= count and bucket < 1024:
        bucket *= 4
    return str(bucket) if bucket < 1024 else "1024+"


def _partition_features(shapes) -> List[str]:
    """Bucket partition shapes to what the protocol can feel.

    A shape string like ``"2|3"`` (sorted group sizes) carries the raw
    sizes, which vary freely with ``n`` — pure input entropy.  What
    changes protocol behavior is the *kind* of split (how many islands);
    whether the split actually hurt shows up in the behavioral features
    it causes (views moved, slow path, liveness margin), not the shape.
    """
    return sorted({
        f"part:{len(str(shape).split('|'))}way" for shape in shapes
    })


def _small_bucket(value: int, cap: int = 5) -> str:
    """Exact small integers, saturating at ``cap``."""
    if value >= cap:
        return f"{cap}+"
    return str(value)


def _margin_bucket(name: str, margin: float) -> str:
    """Coarse margin buckets, per oracle family.

    Quorum shortfalls and step margins are small integers and stay
    exact (clamped); the liveness slack fraction is bucketed into
    deciles.  Either way a run that moves *closer* to the edge lands in
    a different bucket and reads as novel coverage.
    """
    if name == "liveness-after-gst":
        quintile = int(max(0.0, min(0.999, margin)) * 5)
        return f"q{quintile}"
    if margin < 0:
        return "-"
    return _small_bucket(int(margin), cap=2)


def signature_features(coverage: Dict[str, Any]) -> Tuple[str, ...]:
    """The sorted, deduplicated feature set of one run's coverage dict.

    Deliberately *behavioral*: features describe what the execution did
    (path taken, views reached, partition shapes lived through,
    checkpoint/catchup activity, which message types flowed, oracle
    outcomes and margins) — not how the spec was parameterized.  Spec
    shape (``n``/``f``/delay kind/fault counts) stays out, and message
    *volumes* stay out too (they track cluster size and run length, not
    behavior): counting input diversity would reward a blind generator
    for varying knobs that change nothing about the run, exactly the
    redundancy coverage guidance exists to skip.  Message *presence* is
    what matters — a ``PBFTViewChange`` or ``CatchupRequest`` showing up
    at all is a protocol phase the run reached.
    """
    features: List[str] = [
        f"proto:{coverage['protocol']}",
        f"path:{coverage['path']}",
        f"steps:{_small_bucket(int(coverage['steps'] or 0), cap=6)}",
    ]
    views = [int(v) for v in coverage.get("views", ())]
    features.append(f"views:max:{_small_bucket(max(views, default=1), cap=3)}")
    moved = sum(1 for view in views if view > 1)
    features.append(f"views:moved:{_small_bucket(moved, cap=2)}")
    features.extend(_partition_features(coverage.get("partitions", ())))
    checkpoint = int(coverage.get("checkpoint_slot", -1))
    if checkpoint >= 0:
        features.append(f"ckpt:{_count_bucket(checkpoint + 1)}")
    catchup = int(coverage.get("catchup_msgs", 0))
    if catchup:
        features.append(f"catchup:{_count_bucket(catchup)}")
    for msg_type, count in sorted(coverage.get("msgs", {}).items()):
        if int(count) > 0:
            features.append(f"msg:{msg_type}")
    for oracle, status in sorted(coverage.get("oracles", {}).items()):
        features.append(f"oracle:{oracle}:{status}")
    for oracle, margin in sorted(coverage.get("margins", {}).items()):
        features.append(f"margin:{oracle}:{_margin_bucket(oracle, float(margin))}")
    return tuple(sorted(set(features)))


def signature_key(features: Tuple[str, ...]) -> str:
    """A stable SHA-256 key over a feature set (order-insensitive)."""
    canonical = json.dumps(sorted(features), separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()
