"""CLI for the coverage-guided fuzzer.

Usage::

    python -m repro.fuzz campaign --budget 256 [--shards 2] [--max-seconds 600]
        [--corpus-in FILE] [--corpus-out FILE] [--json FILE] [--no-shrink]
        [--metrics-out FILE] [--trace-out FILE] [--record-out DIR]
    python -m repro.fuzz replay KEY --corpus FILE
    python -m repro.fuzz replay --spec FILE [--metrics-out FILE]
        [--trace-out FILE] [--record-out DIR]
    python -m repro.fuzz corpus stats --corpus FILE
    python -m repro.fuzz corpus minimize --corpus FILE [--out FILE]

``campaign`` exits 0 only when every oracle passed on every run — the
CI gate.  ``replay`` re-executes one corpus entry (by key prefix) or a
reproducer spec file and prints the full result.

Telemetry: ``--metrics-out`` / ``--trace-out`` attach a shared
:class:`~repro.obs.metrics.MetricsRegistry` / bounded
:class:`~repro.obs.tracing.CausalTracer` across every executed
schedule (this forces in-process serial execution — observers cannot
cross a fork).  ``--record-out`` replays each failure's original and
shrunk reproducer under a :class:`~repro.obs.recorder.FlightRecorder`
(replays are deterministic, so the record is exact) and dumps both —
the pair feeds ``python -m repro.postmortem diff`` directly.  With
``--json`` and no ``--record-out``, failing reproducers are dumped
next to the report automatically.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, List, Optional, Sequence

from ..scenarios.fuzz import DEFAULT_FUZZ_PROTOCOLS
from ..scenarios.runner import run_scenario
from ..scenarios.spec import ScenarioError, ScenarioSpec
from .campaign import CampaignConfig, run_campaign
from .corpus import Corpus


def _dump_failures(failures: Sequence[Any], directory: str) -> List[str]:
    """Replay each failure's original and shrunk spec under a flight
    recorder and dump both; returns the written paths."""
    from ..obs.recorder import FlightRecorder

    os.makedirs(directory, exist_ok=True)
    written: List[str] = []
    for failure in failures:
        for tag, spec_dict in (
            ("original", failure.spec),
            ("shrunk", failure.shrunk),
        ):
            spec = ScenarioSpec.from_dict(spec_dict)
            recorder = FlightRecorder()
            run_scenario(spec, recorder=recorder)
            path = os.path.join(
                directory, f"flight-{failure.origin}-{tag}.jsonl"
            )
            recorder.dump(path)
            written.append(path)
    return written


def _cmd_campaign(args: argparse.Namespace) -> int:
    corpus = Corpus.load(args.corpus_in) if args.corpus_in else Corpus()
    config = CampaignConfig(
        budget=args.budget,
        start_seed=args.start,
        protocols=(
            tuple(args.protocols.split(","))
            if args.protocols
            else DEFAULT_FUZZ_PROTOCOLS
        ),
        shards=args.shards,
        round_size=args.round_size,
        max_seconds=args.max_seconds,
        shrink=not args.no_shrink,
    )

    def progress(origin: str, outcome) -> None:
        if not args.quiet:
            status = "ok" if outcome["ok"] else "FAIL"
            print(f"{origin:>24} [{outcome['coverage']['protocol']:>8}] -> {status}")

    metrics = tracer = None
    run = run_scenario
    if args.metrics_out or args.trace_out:
        if args.metrics_out:
            from ..obs.metrics import MetricsRegistry

            metrics = MetricsRegistry()
        if args.trace_out:
            from ..obs.tracing import CausalTracer

            tracer = CausalTracer()

        def run(spec, _metrics=metrics, _tracer=tracer):
            # A custom ``run`` forces the in-process serial path, so the
            # shared registry/ring observes every executed schedule.
            return run_scenario(spec, metrics=_metrics, tracer=_tracer)

    report = run_campaign(config, corpus=corpus, run=run, on_progress=progress)
    if args.corpus_out:
        corpus.save(args.corpus_out)
        print(f"wrote corpus ({len(corpus.entries)} entries) to {args.corpus_out}")
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            fh.write(metrics.to_json(indent=2) + "\n")
        print(f"wrote campaign metrics to {args.metrics_out}")
    if args.trace_out:
        with open(args.trace_out, "w", encoding="utf-8") as fh:
            fh.write(tracer.to_json(indent=2) + "\n")
        print(f"wrote campaign trace ({tracer.emitted} events) to {args.trace_out}")
    if args.json:
        payload = report.to_dict()
        payload["digest"] = report.digest
        payload["elapsed_seconds"] = report.elapsed_seconds
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote campaign report to {args.json}")
    if report.failures:
        # Dump-on-violation: a failing seed's flight record lands next
        # to the report (or wherever --record-out points), ready for
        # `python -m repro.postmortem explain`.
        record_dir = args.record_out or (
            os.path.dirname(os.path.abspath(args.json)) if args.json else ""
        )
        if record_dir:
            for path in _dump_failures(report.failures, record_dir):
                print(f"wrote flight record to {path}")
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_replay(args: argparse.Namespace) -> int:
    if args.spec:
        with open(args.spec, encoding="utf-8") as fh:
            spec = ScenarioSpec.from_dict(json.load(fh))
    else:
        if not args.key or not args.corpus:
            print("replay: give KEY with --corpus, or --spec FILE", file=sys.stderr)
            return 2
        corpus = Corpus.load(args.corpus)
        matches = [
            entry for entry in corpus.entries if entry.key.startswith(args.key)
        ]
        if len(matches) != 1:
            print(
                f"replay: key prefix {args.key!r} matches {len(matches)} "
                f"entries (need exactly 1)",
                file=sys.stderr,
            )
            return 2
        spec = ScenarioSpec.from_dict(matches[0].spec)
    metrics = tracer = recorder = None
    if args.metrics_out:
        from ..obs.metrics import MetricsRegistry

        metrics = MetricsRegistry()
    if args.trace_out:
        from ..obs.tracing import CausalTracer

        tracer = CausalTracer()
    if args.record_out:
        from ..obs.recorder import FlightRecorder

        recorder = FlightRecorder()
    result = run_scenario(spec, metrics=metrics, tracer=tracer, recorder=recorder)
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            fh.write(metrics.to_json(indent=2) + "\n")
        print(f"wrote replay metrics to {args.metrics_out}")
    if args.trace_out:
        with open(args.trace_out, "w", encoding="utf-8") as fh:
            fh.write(tracer.to_json(indent=2) + "\n")
        print(f"wrote replay trace ({tracer.emitted} events) to {args.trace_out}")
    if recorder is not None:
        os.makedirs(args.record_out, exist_ok=True)
        path = os.path.join(args.record_out, f"flight-{spec.name}.jsonl")
        recorder.dump(path)
        print(f"wrote flight record to {path}")
    print(result.summary())
    return 0 if result.ok else 1


def _cmd_corpus(args: argparse.Namespace) -> int:
    corpus = Corpus.load(args.corpus)
    if args.action == "stats":
        print(json.dumps(corpus.stats(), indent=2, sort_keys=True))
        return 0
    reduced = corpus.minimize()
    out = args.out or args.corpus
    reduced.save(out)
    print(
        f"minimized {len(corpus.entries)} -> {len(reduced.entries)} entries "
        f"(coverage preserved: {len(reduced.feature_counts)} features) -> {out}"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Coverage-guided fault-schedule fuzzing campaigns.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    campaign = sub.add_parser("campaign", help="run a coverage-guided campaign")
    campaign.add_argument("--budget", type=int, default=256,
                          help="seed budget: total scenario executions")
    campaign.add_argument("--start", type=int, default=0,
                          help="first generator seed / campaign rng seed")
    campaign.add_argument(
        "--protocols", default="",
        help=f"comma-separated protocol keys (default {','.join(DEFAULT_FUZZ_PROTOCOLS)})",
    )
    campaign.add_argument("--shards", type=int, default=1,
                          help="worker processes per round")
    campaign.add_argument("--round-size", type=int, default=8,
                          help="executions per round (shard-independent)")
    campaign.add_argument("--max-seconds", type=float, default=None,
                          help="wall-clock budget; stops at a round boundary")
    campaign.add_argument("--corpus-in", default="",
                          help="load a persisted corpus before the run")
    campaign.add_argument("--corpus-out", default="",
                          help="save the grown corpus after the run")
    campaign.add_argument("--json", default="",
                          help="write the campaign report to this file")
    campaign.add_argument("--no-shrink", action="store_true",
                          help="skip shrinking failing specs")
    campaign.add_argument("--quiet", action="store_true",
                          help="no per-run progress lines")
    campaign.add_argument(
        "--metrics-out", metavar="FILE", default="",
        help="attach one shared MetricsRegistry across every executed "
             "schedule and write its snapshot here (forces in-process "
             "serial execution)",
    )
    campaign.add_argument(
        "--trace-out", metavar="FILE", default="",
        help="attach one shared CausalTracer across every executed "
             "schedule and write its ring here (forces in-process serial "
             "execution)",
    )
    campaign.add_argument(
        "--record-out", metavar="DIR", default="",
        help="replay each failure's original + shrunk reproducer under a "
             "FlightRecorder and dump both to DIR (defaults to the --json "
             "report's directory when failures occur)",
    )

    replay = sub.add_parser("replay", help="re-run a corpus entry or reproducer")
    replay.add_argument("key", nargs="?", default="",
                        help="signature-key prefix of a corpus entry")
    replay.add_argument("--corpus", default="", help="corpus JSON to search")
    replay.add_argument("--spec", default="",
                        help="a reproducer spec JSON file (instead of KEY)")
    replay.add_argument(
        "--metrics-out", metavar="FILE", default="",
        help="attach a MetricsRegistry and write its snapshot here",
    )
    replay.add_argument(
        "--trace-out", metavar="FILE", default="",
        help="attach a CausalTracer and write its ring here",
    )
    replay.add_argument(
        "--record-out", metavar="DIR", default="",
        help="attach a FlightRecorder and dump DIR/flight-<name>.jsonl "
             "(see python -m repro.postmortem)",
    )

    corpus = sub.add_parser("corpus", help="inspect or minimize a corpus")
    corpus.add_argument("action", choices=("stats", "minimize"))
    corpus.add_argument("--corpus", required=True, help="corpus JSON file")
    corpus.add_argument("--out", default="",
                        help="minimize: write here instead of in place")

    args = parser.parse_args(argv)
    try:
        if args.command == "campaign":
            return _cmd_campaign(args)
        if args.command == "replay":
            return _cmd_replay(args)
        return _cmd_corpus(args)
    except ScenarioError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
