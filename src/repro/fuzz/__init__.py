"""Coverage-guided fault-schedule fuzzing (the AFL loop over scenarios).

The blind fuzzer (:mod:`repro.scenarios.fuzz`) walks consecutive seeds
and learns nothing from what a run exercised.  This package closes the
loop:

* :mod:`~repro.fuzz.signature` — a deterministic execution-coverage
  signature (views reached, fast-vs-slow path, partition shapes,
  checkpoint/catchup activity, bucketed message counts, oracle outcomes
  and *near-miss margins*) bucketed so noise is not novelty;
* :mod:`~repro.fuzz.corpus` — signature-novel specs persisted as
  canonical JSON, with energy-weighted scheduling and greedy set-cover
  minimization;
* :mod:`~repro.fuzz.mutators` — splice/perturb operators over
  :class:`~repro.scenarios.spec.ScenarioSpec`, including plenum-style
  per-payload-type delay-rule stashers;
* :mod:`~repro.fuzz.campaign` — the round loop: sharded fleet execution
  with deterministic merge (serial == sharded, byte-identical report
  digests), dual seed/wall-clock budgets, shrinking of failures;
* ``python -m repro.fuzz campaign|replay|corpus`` — the CLI.
"""

from .campaign import (
    CampaignConfig,
    CampaignFailure,
    CampaignReport,
    run_blind,
    run_campaign,
)
from .corpus import Corpus, CorpusEntry
from .mutators import MUTATORS, PAYLOAD_TYPES, mutate
from .signature import signature_features, signature_key

__all__ = [
    "CampaignConfig",
    "CampaignFailure",
    "CampaignReport",
    "Corpus",
    "CorpusEntry",
    "MUTATORS",
    "PAYLOAD_TYPES",
    "mutate",
    "run_blind",
    "run_campaign",
    "signature_features",
    "signature_key",
]
