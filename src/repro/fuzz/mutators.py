"""Corpus-driven mutation operators over :class:`ScenarioSpec`.

Every operator is a pure function ``(spec, rng) -> spec-or-None`` (plus
the corpus for splicing) driven by an injected :class:`random.Random`,
so a campaign seed fully determines the mutation stream.  Operators
preserve *survivability* by construction and by post-check: partitions
always heal, delay rules always lift (or hold only until a bounded
time), crashes stay within the ``f`` budget (``ScenarioSpec.validate``
is the final arbiter) — so, exactly as for :func:`generate_scenario`,
any failing mutant is a bug worth keeping, not a schedule that cheated.

The star operator is the plenum-style *stasher* (SNIPPETS.md snippet 2):
a ``DelayRuleOn`` scoped to a single payload type — stash every ``Vote``
or every ``SlotMessage`` for a while, or add per-type jitter — which
reorders exactly one protocol phase against the others, the surgical
nudge that flushes out ordering assumptions a whole-link delay never
exercises.

Mutants drop the base spec's ``expect_fast_path``/``liveness_deadline``
claims: added chaos legitimately breaks latency promises, and keeping
them would turn schedule noise into false "bugs".  ``expect_decision``
stays — a survivable schedule must still terminate.
"""

from __future__ import annotations

from random import Random
from typing import Callable, List, Optional, Tuple

from ..scenarios.fuzz import _HORIZON
from ..scenarios.spec import (
    Crash,
    DelayRuleOff,
    DelayRuleOn,
    DelaySpec,
    FaultEvent,
    PartitionHeal,
    PartitionStart,
    Recover,
    ScenarioError,
    ScenarioSpec,
)
from .corpus import Corpus

__all__ = ["MUTATORS", "PAYLOAD_TYPES", "mutate"]

#: Per-payload-type stasher targets, per protocol family: the concrete
#: payload class names each family puts on the wire (what
#: ``messages_by_type`` records).  SMR families share the replication
#: envelope types.
PAYLOAD_TYPES = {
    "fbft": ("Propose", "Ack", "Vote", "CertRequest", "CertAck"),
    "pbft": ("PrePrepare", "Prepare", "PBFTCommit", "PBFTViewChange"),
    "fab": ("FabPropose", "FabAccept", "FabReport"),
    "paxos": ("PaxosPrepare", "PaxosPromise", "PaxosAccept", "PaxosAccepted"),
    "optimistic": ("OptPropose", "OptAck", "OptPrepare", "OptCommit"),
    "fbft-smr": ("Request", "SlotMessage", "SlotDecided", "CheckpointVote"),
    "pbft-smr": ("Request", "SlotMessage", "SlotDecided", "CheckpointVote"),
}


# ----------------------------------------------------------------------
# Schedule elements: matched (opener, closer) groups
# ----------------------------------------------------------------------


def _elements(spec: ScenarioSpec) -> List[Tuple[FaultEvent, ...]]:
    """The schedule as logical elements: each opener grouped with its
    matching closer (crash+recover, partition+heal, rule on+off)."""
    events = list(spec.faults)
    elements: List[Tuple[FaultEvent, ...]] = []
    consumed: set = set()
    for index, event in enumerate(events):
        if index in consumed:
            continue
        group = [event]
        consumed.add(index)
        closer: Optional[Callable[[FaultEvent], bool]] = None
        if isinstance(event, PartitionStart):
            closer = lambda other: isinstance(other, PartitionHeal)
        elif isinstance(event, DelayRuleOn):
            closer = lambda other, name=event.name: (
                isinstance(other, DelayRuleOff) and other.name == name
            )
        elif isinstance(event, Crash):
            closer = lambda other, pid=event.pid: (
                isinstance(other, Recover) and other.pid == pid
            )
        if closer is not None:
            for j in range(index + 1, len(events)):
                if j not in consumed and closer(events[j]):
                    group.append(events[j])
                    consumed.add(j)
                    break
        elements.append(tuple(group))
    return elements


def _assemble(spec: ScenarioSpec, elements: List[Tuple[FaultEvent, ...]]) -> ScenarioSpec:
    flat = [event for group in elements for event in group]
    flat.sort(key=lambda event: event.at)
    return spec.with_(faults=tuple(flat))


def _shift(event: FaultEvent, delta: float) -> FaultEvent:
    from dataclasses import replace

    at = round(min(_HORIZON, max(0.0, event.at + delta)), 2)
    return replace(event, at=at)


def _crashable_pids(spec: ScenarioSpec) -> List[int]:
    """Replica pids a new crash may target without double-crashing."""
    taken = set(spec.byzantine_pids)
    for event in spec.faults:
        if isinstance(event, (Crash, Recover)):
            taken.add(event.pid)
    return [pid for pid in range(spec.n) if pid not in taken]


# ----------------------------------------------------------------------
# Operators
# ----------------------------------------------------------------------


def op_perturb_times(
    spec: ScenarioSpec, rng: Random, corpus: Optional[Corpus]
) -> Optional[ScenarioSpec]:
    """Shift whole elements in time (closers keep their opener gap)."""
    elements = _elements(spec)
    if not elements:
        return None
    shifted = []
    for group in elements:
        delta = round(rng.uniform(-8.0, 8.0), 2)
        low = min(event.at for event in group)
        delta = max(delta, -low)  # never before time 0
        shifted.append(tuple(_shift(event, delta) for event in group))
    return _assemble(spec, shifted)


def op_drop_element(
    spec: ScenarioSpec, rng: Random, corpus: Optional[Corpus]
) -> Optional[ScenarioSpec]:
    """Remove one logical element (never splitting a matched pair)."""
    elements = _elements(spec)
    if not elements:
        return None
    victim = rng.randrange(len(elements))
    return _assemble(
        spec, [group for i, group in enumerate(elements) if i != victim]
    )


def op_add_crash(
    spec: ScenarioSpec, rng: Random, corpus: Optional[Corpus]
) -> Optional[ScenarioSpec]:
    """Crash a fresh replica within the fault budget; maybe recover it.

    The budget is the protocol's *liveness* tolerance: ``f`` for
    families with a slow path, but ``t`` for FaB, whose only decide
    path needs ``n - t`` acceptances (more permanent downs than that
    and no schedule can ever decide — not a bug worth reporting).
    """
    budget = spec.t if spec.protocol == "fab" else spec.f
    if len(spec.faulty_pids) >= budget:
        return None
    candidates = _crashable_pids(spec)
    if not candidates:
        return None
    pid = rng.choice(candidates)
    at = round(rng.uniform(0.0, _HORIZON / 2), 2)
    disk = "lost" if rng.random() < 0.25 else "retained"
    extra: List[FaultEvent] = [Crash(at=at, pid=pid, disk=disk)]
    if rng.random() < 0.5:
        extra.append(Recover(at=round(at + rng.uniform(3.0, 20.0), 2), pid=pid))
    return _assemble(spec, _elements(spec) + [tuple(extra)])


def op_add_partition(
    spec: ScenarioSpec, rng: Random, corpus: Optional[Corpus]
) -> Optional[ScenarioSpec]:
    """Install a healing partition (two- or three-way)."""
    if spec.n < 3:
        return None
    pids = list(range(spec.n))
    ways = 3 if spec.n >= 5 and rng.random() < 0.3 else 2
    shuffled = rng.sample(pids, k=len(pids))
    cuts = sorted(rng.sample(range(1, len(pids)), k=ways - 1))
    groups = []
    previous = 0
    for cut in cuts + [len(pids)]:
        groups.append(tuple(sorted(shuffled[previous:cut])))
        previous = cut
    start = round(rng.uniform(0.0, _HORIZON / 3), 2)
    heal = round(start + rng.uniform(5.0, _HORIZON / 2), 2)
    element = (
        PartitionStart(at=start, groups=tuple(groups)),
        PartitionHeal(at=heal),
    )
    return _assemble(spec, _elements(spec) + [element])


def op_add_stasher(
    spec: ScenarioSpec, rng: Random, corpus: Optional[Corpus]
) -> Optional[ScenarioSpec]:
    """Plenum-style delay-rule stasher on one payload type.

    Either *stash* (hold every matching message until a release time) or
    *jitter* (add per-message extra delay), optionally scoped to one
    source or destination — reordering a single protocol phase.
    """
    types = PAYLOAD_TYPES.get(spec.protocol)
    if not types:
        return None
    payload = rng.choice(types)
    start = round(rng.uniform(0.0, _HORIZON / 2), 2)
    name = f"stash-{payload}-{start}"
    kwargs = {}
    if rng.random() < 0.5:
        kwargs["hold_until"] = round(start + rng.uniform(5.0, 25.0), 2)
    else:
        kwargs["extra_delay"] = round(rng.uniform(0.5, 8.0), 2)
    scope = rng.random()
    if scope < 0.3:
        kwargs["src"] = (rng.randrange(spec.n),)
    elif scope < 0.6:
        kwargs["dst"] = (rng.randrange(spec.n),)
    stop = round(
        max(start, kwargs.get("hold_until", start)) + rng.uniform(1.0, 10.0), 2
    )
    element = (
        DelayRuleOn(at=start, name=name, payload_types=(payload,), **kwargs),
        DelayRuleOff(at=stop, name=name),
    )
    return _assemble(spec, _elements(spec) + [element])


def op_tweak_delay(
    spec: ScenarioSpec, rng: Random, corpus: Optional[Corpus]
) -> Optional[ScenarioSpec]:
    """Swap or reparameterize the delay model."""
    roll = rng.random()
    if roll < 0.4:
        delay = DelaySpec(kind=rng.choice(("synchronous", "round")))
    elif roll < 0.8:
        delay = DelaySpec(
            kind="partial",
            gst=round(rng.uniform(5.0, 45.0), 2),
            pre_gst_max=round(rng.uniform(2.0, 20.0), 2),
            seed=rng.randrange(1 << 16),
        )
    else:
        delay = DelaySpec(
            kind="random",
            min_delay=0.5,
            max_delay=round(rng.uniform(1.0, 3.0), 2),
            seed=rng.randrange(1 << 16),
        )
    if delay == spec.delay:
        return None
    return spec.with_(delay=delay)


def op_toggle_disk(
    spec: ScenarioSpec, rng: Random, corpus: Optional[Corpus]
) -> Optional[ScenarioSpec]:
    """Flip one crash between disk-retained and disk-lost recovery."""
    crashes = [
        (i, event)
        for i, event in enumerate(spec.faults)
        if isinstance(event, Crash)
    ]
    if not crashes:
        return None
    index, crash = crashes[rng.randrange(len(crashes))]
    flipped = Crash(
        at=crash.at,
        pid=crash.pid,
        disk="lost" if crash.disk == "retained" else "retained",
    )
    faults = list(spec.faults)
    faults[index] = flipped
    return spec.with_(faults=tuple(faults))


def op_drop_byzantine(
    spec: ScenarioSpec, rng: Random, corpus: Optional[Corpus]
) -> Optional[ScenarioSpec]:
    """Remove one Byzantine role (frees fault budget for new chaos)."""
    if not spec.byzantine:
        return None
    victim = rng.randrange(len(spec.byzantine))
    return spec.with_(
        byzantine=tuple(
            role for i, role in enumerate(spec.byzantine) if i != victim
        )
    )


def op_tweak_workload(
    spec: ScenarioSpec, rng: Random, corpus: Optional[Corpus]
) -> Optional[ScenarioSpec]:
    """Reshape an SMR workload: contention, pacing, windowing."""
    if spec.workload is None:
        return None
    workload = spec.workload
    changes = {
        "hot_fraction": round(rng.choice((0.0, 0.3, 0.8)), 2),
        "window": rng.choice((1, 2, 4)),
        "batch_size": rng.choice((1, 2, 4)),
        "seed": rng.randrange(1 << 16),
    }
    from dataclasses import replace

    mutated = replace(workload, **changes)
    if mutated == workload:
        return None
    return spec.with_(workload=mutated)


def op_splice(
    spec: ScenarioSpec, rng: Random, corpus: Optional[Corpus]
) -> Optional[ScenarioSpec]:
    """Graft schedule elements from a same-shape corpus donor."""
    if corpus is None or not corpus.entries:
        return None
    shape = (spec.protocol, spec.n, spec.f, spec.t)
    donors = [
        entry
        for entry in corpus.entries
        if (
            entry.spec.get("protocol"),
            entry.spec.get("n"),
            entry.spec.get("f"),
            entry.spec.get("t"),
        ) == shape
    ]
    if not donors:
        return None
    donor = ScenarioSpec.from_dict(donors[rng.randrange(len(donors))].spec)
    donated = _elements(donor)
    if not donated:
        return None
    take = rng.sample(donated, k=rng.randint(1, len(donated)))
    return _assemble(spec, _elements(spec) + take)


#: Name -> operator, in a stable order (the rng picks among them).
MUTATORS: Tuple[Tuple[str, Callable], ...] = (
    ("perturb-times", op_perturb_times),
    ("drop-element", op_drop_element),
    ("add-crash", op_add_crash),
    ("add-partition", op_add_partition),
    ("add-stasher", op_add_stasher),
    ("tweak-delay", op_tweak_delay),
    ("toggle-disk", op_toggle_disk),
    ("drop-byzantine", op_drop_byzantine),
    ("tweak-workload", op_tweak_workload),
    ("splice", op_splice),
)

#: Selection weights, aligned with MUTATORS.  Operators that *add* chaos
#: (stashers, partitions, crashes, splices) move a run's behavioral
#: signature far more often than parameter tweaks, so they get most of
#: the draw; the tweaks stay in the pool for fine exploration around a
#: behavior the heavy operators discovered.
MUTATOR_WEIGHTS: Tuple[int, ...] = (1, 2, 3, 3, 4, 2, 1, 1, 1, 3)


def _sanitize(spec: ScenarioSpec, name: str) -> ScenarioSpec:
    """Mutants carry no latency claims: added chaos legitimately breaks
    fast-path and deadline promises, and a false 'bug' poisons the
    corpus.  Decision/agreement/validity expectations all stay."""
    return spec.with_(
        name=name,
        expect_fast_path=False,
        liveness_deadline=None,
        timeout=max(spec.timeout, 3000.0),
        description=f"mutant of {spec.name}",
    )


def mutate(
    spec: ScenarioSpec,
    rng: Random,
    corpus: Optional[Corpus],
    name: str,
    attempts: int = 8,
) -> Optional[Tuple[ScenarioSpec, str]]:
    """Apply a weighted stack of operators; retry until a valid mutant.

    Usually one operator fires; sometimes two or three stack, AFL
    "havoc"-style, so mutants can jump further than any single operator
    reaches from the base behavior.  Returns ``(mutant, op_names)``
    (names ``"+"``-joined in application order) or ``None`` when no
    attempt produced a structurally valid, budget-respecting spec.
    """
    for _ in range(attempts):
        stack = 1
        if rng.random() < 0.4:
            stack += 1
        if rng.random() < 0.2:
            stack += 1
        candidate = spec
        applied: List[str] = []
        for _slot in range(stack):
            (pick,) = rng.choices(range(len(MUTATORS)), weights=MUTATOR_WEIGHTS)
            op_name, operator = MUTATORS[pick]
            mutated = operator(candidate, rng, corpus)
            if mutated is None:
                continue
            candidate = mutated
            applied.append(op_name)
        if not applied:
            continue
        candidate = _sanitize(candidate, name)
        try:
            candidate.validate()
        except ScenarioError:
            continue
        if candidate.faults == spec.faults and candidate.delay == spec.delay \
                and candidate.byzantine == spec.byzantine \
                and candidate.workload == spec.workload:
            continue  # no-op mutation: nothing new to run
        return candidate, "+".join(applied)
    return None
