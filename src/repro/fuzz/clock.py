"""Wall-clock access for campaign budgets.

The protocol, simulator and scenario packages are wall-clock-free by
construction (the ``repro.lint`` D101 rule enforces it: simulated time is
the only time that may influence an execution).  Campaign *budgets* are
different — "stop fuzzing after N real seconds" is about the CI bill,
not the execution, and never feeds back into a trace.  This module is
the one sanctioned doorway: callers inject :func:`wall_clock` (or a fake
for tests) instead of reaching for :mod:`time` themselves.
"""

from __future__ import annotations

import time

__all__ = ["wall_clock"]


def wall_clock() -> float:
    """Monotonic wall-clock seconds (for budget accounting only)."""
    return time.monotonic()
