"""The coverage-guided campaign engine.

A campaign is rounds of scenario executions over a shared corpus:

* **cold start** — the first ``warmup`` runs (and a small
  ``fresh_fraction`` forever after) come from the blind generator,
  :func:`~repro.scenarios.fuzz.generate_scenario`, seeding the corpus
  with baseline behaviors;
* **warm loop** — every other run mutates an energy-weighted corpus pick
  (:mod:`repro.fuzz.mutators`), replacing fresh draws once the corpus
  knows something;
* **admission** — a run whose coverage signature contains any feature no
  corpus entry covers earns a corpus slot
  (:meth:`~repro.fuzz.corpus.Corpus.consider`);
* **fleet execution** — each round's batch can be sharded over worker
  processes; shard outcomes merge back in input order, so a sharded
  campaign is byte-identical to a serial one (same corpus + seed +
  budget ⇒ identical report digest);
* **oracle gate** — failing runs are shrunk to minimal reproducers in
  the parent (deterministically) and reported; CI fails the campaign on
  any oracle violation.

Budgets are dual: a seed budget (``budget`` executions) and an optional
wall-clock budget (``max_seconds``, checked between rounds with an
injectable clock).  The report records which limit fired; the report
digest covers only deterministic content, so budget-stopped campaigns
reproduce exactly.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from random import Random
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..scenarios.fuzz import DEFAULT_FUZZ_PROTOCOLS, generate_scenario, shrink_spec
from ..scenarios.runner import ScenarioResult, run_scenario
from ..scenarios.spec import ScenarioSpec
from .corpus import Corpus
from .mutators import mutate
from .signature import signature_features, signature_key

__all__ = [
    "CampaignConfig",
    "CampaignFailure",
    "CampaignReport",
    "outcome_of",
    "run_blind",
    "run_campaign",
]


@dataclass(frozen=True)
class CampaignConfig:
    """Knobs of one campaign; everything that shapes its determinism."""

    budget: int = 256  #: total scenario executions (the seed budget)
    start_seed: int = 0  #: blind-generator stream start + campaign rng seed
    protocols: Tuple[str, ...] = DEFAULT_FUZZ_PROTOCOLS
    mode: str = "guided"  #: ``"guided"`` (corpus mutation) or ``"blind"``
    shards: int = 1  #: worker processes per round (1 = in-process)
    round_size: int = 8  #: executions per round (shard-count independent)
    #: Pure generator draws before mutation kicks in.  Generous on
    #: purpose: fresh draws are cheap novelty early (the generator's
    #: input diversity translates directly to behavior diversity until
    #: it saturates, around ~200 draws), and mutation only pays once the
    #: corpus spans enough behaviors to launch from.
    warmup: int = 64
    fresh_fraction: float = 0.25  #: lasting trickle of blind exploration
    max_seconds: Optional[float] = None  #: wall-clock budget (None = off)
    shrink: bool = True  #: shrink failing specs to minimal reproducers


@dataclass
class CampaignFailure:
    """One oracle-violating run, with its shrunk reproducer."""

    origin: str
    spec: Dict[str, Any]
    shrunk: Dict[str, Any]
    failures: Tuple[str, ...]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "origin": self.origin,
            "failures": list(self.failures),
            "reproducer": self.shrunk,
            "original": self.spec,
        }


@dataclass
class CampaignReport:
    """Everything one campaign produced, digest-stable."""

    mode: str
    budget: int
    start_seed: int
    protocols: Tuple[str, ...]
    round_size: int
    warmup: int
    executed: int = 0
    stopped_by: str = "budget"  #: ``"budget"`` or ``"max-seconds"``
    signatures: List[str] = field(default_factory=list)  #: first-seen order
    trajectory: List[Dict[str, Any]] = field(default_factory=list)
    corpus_stats: Dict[str, Any] = field(default_factory=dict)
    failures: List[CampaignFailure] = field(default_factory=list)
    #: Wall-clock cost; reported but excluded from the digest.
    elapsed_seconds: Optional[float] = None

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def unique_signatures(self) -> int:
        return len(self.signatures)

    def to_dict(self) -> Dict[str, Any]:
        """Deterministic content only (wall clock rides outside)."""
        return {
            "mode": self.mode,
            "budget": self.budget,
            "start_seed": self.start_seed,
            "protocols": list(self.protocols),
            "round_size": self.round_size,
            "warmup": self.warmup,
            "executed": self.executed,
            "stopped_by": self.stopped_by,
            "unique_signatures": self.unique_signatures,
            "signatures": list(self.signatures),
            "trajectory": list(self.trajectory),
            "corpus": dict(self.corpus_stats),
            "failures": [failure.to_dict() for failure in self.failures],
        }

    @property
    def digest(self) -> str:
        """SHA-256 over the canonical report: equal digests mean the
        campaigns executed identically (serial or sharded alike)."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    def summary(self) -> str:
        lines = [
            f"campaign [{self.mode}]: {self.executed}/{self.budget} runs "
            f"({self.stopped_by} limit), {self.unique_signatures} unique "
            f"signatures, corpus {self.corpus_stats.get('entries', 0)} "
            f"entries / {self.corpus_stats.get('features', 0)} features",
            f"digest: {self.digest[:16]} — "
            + ("all oracles passed" if self.ok else f"{len(self.failures)} FAILURES"),
        ]
        if self.elapsed_seconds is not None:
            lines.append(f"elapsed: {self.elapsed_seconds}s wall clock")
        for failure in self.failures:
            lines.append(f"  {failure.origin}: {'; '.join(failure.failures)}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Fleet execution
# ----------------------------------------------------------------------


def outcome_of(result: ScenarioResult) -> Dict[str, Any]:
    """The shard-transportable slice of a result the campaign needs."""
    return {
        "ok": result.ok,
        "failures": [str(verdict) for verdict in result.failures],
        "coverage": result.coverage,
        "events": result.events_processed,
        "trace_digest": result.trace_digest,
    }


def _run_shard(payload: Tuple[int, List[ScenarioSpec]]):
    """Worker: run one contiguous slice of the round's batch."""
    base, specs = payload
    return base, [outcome_of(run_scenario(spec)) for spec in specs]


def _execute(
    specs: Sequence[ScenarioSpec],
    shards: int,
    run: Callable[[ScenarioSpec], ScenarioResult],
) -> List[Dict[str, Any]]:
    """Run a batch, optionally sharded; outcomes always in input order.

    Sharding slices the batch contiguously and merges shard outputs by
    slice offset — the merge is deterministic regardless of which worker
    finishes first.  A custom ``run`` callable forces the in-process
    path (it may close over test state that cannot cross a fork).
    """
    if shards <= 1 or len(specs) <= 1 or run is not run_scenario:
        return [outcome_of(run(spec)) for spec in specs]
    import multiprocessing

    shards = min(shards, len(specs))
    chunk = (len(specs) + shards - 1) // shards
    payloads = [
        (base, list(specs[base:base + chunk]))
        for base in range(0, len(specs), chunk)
    ]
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context(
        "fork" if "fork" in methods else None
    )
    merged: List[Optional[Dict[str, Any]]] = [None] * len(specs)
    with context.Pool(processes=shards) as pool:
        for base, outcomes in pool.imap_unordered(_run_shard, payloads):
            for offset, outcome in enumerate(outcomes):
                merged[base + offset] = outcome
    return [outcome for outcome in merged if outcome is not None]


# ----------------------------------------------------------------------
# The campaign loop
# ----------------------------------------------------------------------


def run_campaign(
    config: CampaignConfig,
    corpus: Optional[Corpus] = None,
    run: Callable[[ScenarioSpec], ScenarioResult] = run_scenario,
    clock: Optional[Callable[[], float]] = None,
    on_progress: Optional[Callable[[str, Dict[str, Any]], None]] = None,
) -> CampaignReport:
    """Run one campaign over (and growing) ``corpus``.

    Fully deterministic for a given ``(corpus, config)`` when the seed
    budget is what stops it; the wall-clock budget (``max_seconds``)
    necessarily truncates at a machine-dependent round boundary.
    """
    corpus = corpus if corpus is not None else Corpus()
    rng = Random(f"campaign/{config.mode}/{config.start_seed}")
    report = CampaignReport(
        mode=config.mode,
        budget=config.budget,
        start_seed=config.start_seed,
        protocols=tuple(config.protocols),
        round_size=config.round_size,
        warmup=config.warmup,
    )
    started_at = None
    if config.max_seconds is not None:
        if clock is None:
            from .clock import wall_clock as clock
        started_at = clock()
    seen: set = set()
    next_seed = config.start_seed
    mutated_count = 0
    while report.executed < config.budget:
        if (
            started_at is not None
            and clock() - started_at >= config.max_seconds
        ):
            report.stopped_by = "max-seconds"
            break
        count = min(config.round_size, config.budget - report.executed)
        batch: List[Tuple[str, ScenarioSpec]] = []
        for offset in range(count):
            index = report.executed + offset
            use_mutation = (
                config.mode == "guided"
                and index >= config.warmup
                and corpus.entries
                and rng.random() >= config.fresh_fraction
            )
            mutant = None
            if use_mutation:
                base = corpus.choose(rng)
                mutant = mutate(
                    ScenarioSpec.from_dict(base.spec),
                    rng,
                    corpus,
                    name=f"fuzz-mutant-{index}",
                )
            if mutant is None:
                spec = generate_scenario(next_seed, protocols=config.protocols)
                batch.append((f"seed:{next_seed}", spec))
                next_seed += 1
            else:
                spec, op_name = mutant
                batch.append((f"mutant:{index}/{op_name}", spec))
                mutated_count += 1
        features_before = len(corpus.feature_counts)
        outcomes = _execute([spec for _, spec in batch], config.shards, run)
        for (origin, spec), outcome in zip(batch, outcomes):
            key = signature_key(signature_features(outcome["coverage"]))
            if key not in seen:
                seen.add(key)
                report.signatures.append(key)
            corpus.consider(
                spec.to_dict(),
                outcome["coverage"],
                origin=origin,
                ok=outcome["ok"],
                executions=outcome["events"],
            )
            if on_progress is not None:
                on_progress(origin, outcome)
            if not outcome["ok"]:
                shrunk = spec
                if config.shrink:
                    shrunk = shrink_spec(spec, lambda s: not run(s).ok)
                report.failures.append(
                    CampaignFailure(
                        origin=origin,
                        spec=spec.to_dict(),
                        shrunk=shrunk.to_dict(),
                        failures=tuple(outcome["failures"]),
                    )
                )
        report.executed += count
        report.trajectory.append(
            {
                "round": len(report.trajectory) + 1,
                "executed": report.executed,
                "mutants": mutated_count,
                "corpus_entries": len(corpus.entries),
                "features": len(corpus.feature_counts),
                "unique_signatures": len(report.signatures),
                "new_features": len(corpus.feature_counts) - features_before,
            }
        )
    report.corpus_stats = corpus.stats()
    if started_at is not None:
        report.elapsed_seconds = round(clock() - started_at, 3)
    return report


def run_blind(
    budget: int,
    start_seed: int = 0,
    protocols: Sequence[str] = DEFAULT_FUZZ_PROTOCOLS,
    shards: int = 1,
    run: Callable[[ScenarioSpec], ScenarioResult] = run_scenario,
) -> CampaignReport:
    """The control arm: same budget, fresh generator draws only.

    Shares the campaign loop (and its signature accounting) with the
    guided mode, so "guided finds strictly more unique signatures than
    blind under an equal budget" compares exactly one variable — whether
    the corpus steers generation.
    """
    return run_campaign(
        CampaignConfig(
            budget=budget,
            start_seed=start_seed,
            protocols=tuple(protocols),
            mode="blind",
            shards=shards,
            shrink=False,
        ),
        run=run,
    )
