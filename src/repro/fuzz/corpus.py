"""The fuzzing corpus: signature-novel specs with energy scheduling.

A corpus entry pairs a reproducible :class:`~repro.scenarios.spec.ScenarioSpec`
(as its JSON dict) with the coverage signature its execution produced.
A spec earns a slot only if its run's *signature* — the whole bucketed
feature combination — is one no earlier entry produced: the AFL
admission rule, at combination granularity, so the corpus holds one
exemplar per distinct behavior rather than an archive of every run.
Mutation needs that breadth (each admitted behavior is a launch point);
:meth:`Corpus.minimize` is the compact view, cutting back to a greedy
set cover over individual features.

Scheduling is energy-weighted: entries whose features are *rare* across
the corpus (few other entries touch them) and that have been mutated
*less often* get proportionally more mutation energy.  Minimization is
the classic greedy set cover over features.  Persistence is canonical
JSON — sorted keys, entries in insertion order — so saving and loading
a corpus is byte-stable and campaign reports stay deterministic.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from random import Random
from typing import Any, Dict, List, Optional, Tuple

from .signature import signature_features, signature_key

__all__ = ["Corpus", "CorpusEntry"]

#: Bumped when the on-disk layout changes incompatibly.
CORPUS_FORMAT = 1


@dataclass
class CorpusEntry:
    """One signature-novel spec and its bookkeeping."""

    key: str  #: signature key of the run that earned the slot
    spec: Dict[str, Any]  #: ``ScenarioSpec.to_dict()`` payload
    features: Tuple[str, ...]
    origin: str  #: ``"seed:<n>"`` or ``"mutant:<index>/<operator>"``
    ok: bool  #: whether every oracle passed (failures stay replayable)
    executions: int = 0  #: events processed by the run (cost proxy)
    chosen: int = 0  #: times picked as a mutation base

    def to_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "spec": self.spec,
            "features": list(self.features),
            "origin": self.origin,
            "ok": self.ok,
            "executions": self.executions,
            "chosen": self.chosen,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CorpusEntry":
        return cls(
            key=data["key"],
            spec=dict(data["spec"]),
            features=tuple(data["features"]),
            origin=data["origin"],
            ok=bool(data["ok"]),
            executions=int(data.get("executions", 0)),
            chosen=int(data.get("chosen", 0)),
        )


@dataclass
class Corpus:
    """An ordered set of signature-novel entries."""

    entries: List[CorpusEntry] = field(default_factory=list)
    #: How many entries cover each feature (rarity for energy weighting).
    feature_counts: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    def consider(
        self,
        spec_dict: Dict[str, Any],
        coverage: Dict[str, Any],
        origin: str,
        ok: bool,
        executions: int = 0,
    ) -> Optional[CorpusEntry]:
        """Admit the spec if its run's signature is novel.

        Returns the new entry, or ``None`` when some earlier entry
        already produced the exact same signature (the run taught us
        nothing the corpus does not already encode).
        """
        features = signature_features(coverage)
        key = signature_key(features)
        if any(entry.key == key for entry in self.entries):
            return None
        entry = CorpusEntry(
            key=key,
            spec=dict(spec_dict),
            features=features,
            origin=origin,
            ok=ok,
            executions=executions,
        )
        self.entries.append(entry)
        for feature in features:
            self.feature_counts[feature] = self.feature_counts.get(feature, 0) + 1
        return entry

    # ------------------------------------------------------------------
    # Energy-weighted scheduling
    # ------------------------------------------------------------------

    def energy(self, entry: CorpusEntry) -> float:
        """Mutation energy: feature rarity, decayed by prior selections."""
        rarity = sum(
            1.0 / self.feature_counts.get(feature, 1)
            for feature in entry.features
        )
        return (1.0 + rarity) / (1.0 + entry.chosen)

    def choose(self, rng: Random) -> CorpusEntry:
        """Pick a mutation base, weighted by energy (deterministic in rng)."""
        if not self.entries:
            raise ValueError("cannot choose from an empty corpus")
        weights = [self.energy(entry) for entry in self.entries]
        total = sum(weights)
        point = rng.random() * total
        cumulative = 0.0
        for entry, weight in zip(self.entries, weights):
            cumulative += weight
            if point <= cumulative:
                entry.chosen += 1
                return entry
        entry = self.entries[-1]
        entry.chosen += 1
        return entry

    # ------------------------------------------------------------------
    # Minimization
    # ------------------------------------------------------------------

    def minimize(self) -> "Corpus":
        """Greedy set cover: the smallest entry subset (greedily) that
        still covers every feature the corpus covers.

        Deterministic: candidates are ranked by uncovered-feature gain,
        ties broken by insertion order.  Failing entries are always kept
        — they are reproducers, not just coverage.
        """
        uncovered = set(self.feature_counts)
        kept: List[CorpusEntry] = []
        for entry in self.entries:
            if not entry.ok:
                kept.append(entry)
                uncovered -= set(entry.features)
        remaining = [entry for entry in self.entries if entry.ok]
        while uncovered:
            best = None
            best_gain = 0
            for entry in remaining:
                gain = len(uncovered & set(entry.features))
                if gain > best_gain:
                    best, best_gain = entry, gain
            if best is None:
                break
            kept.append(best)
            remaining.remove(best)
            uncovered -= set(best.features)
        kept.sort(key=lambda e: self.entries.index(e))
        reduced = Corpus()
        for entry in kept:
            reduced.entries.append(entry)
            for feature in entry.features:
                reduced.feature_counts[feature] = (
                    reduced.feature_counts.get(feature, 0) + 1
                )
        return reduced

    # ------------------------------------------------------------------
    # Stats + persistence
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        by_protocol: Dict[str, int] = {}
        for entry in self.entries:
            protocol = str(entry.spec.get("protocol", "?"))
            by_protocol[protocol] = by_protocol.get(protocol, 0) + 1
        return {
            "entries": len(self.entries),
            "features": len(self.feature_counts),
            "failing": sum(1 for entry in self.entries if not entry.ok),
            "by_protocol": dict(sorted(by_protocol.items())),
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": CORPUS_FORMAT,
            "entries": [entry.to_dict() for entry in self.entries],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Corpus":
        corpus = cls()
        for payload in data.get("entries", ()):
            entry = CorpusEntry.from_dict(payload)
            corpus.entries.append(entry)
            for feature in entry.features:
                corpus.feature_counts[feature] = (
                    corpus.feature_counts.get(feature, 0) + 1
                )
        return corpus

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "Corpus":
        with open(path, encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))
