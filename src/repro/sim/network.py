"""Simulated point-to-point network with pluggable delay models.

The paper assumes reliable, authenticated channels in a *partially
synchronous* system: there is a bound ``DELTA`` on message delay that holds
from some unknown global stabilization time (GST) onward.  This module
models exactly that:

* :class:`SynchronousDelay` — every message takes a fixed delay (the
  "common case" the paper's latency claims are about).
* :class:`RoundSynchronousDelay` — messages sent in round ``i`` (the
  interval ``[(i-1)*DELTA, i*DELTA)``) are delivered exactly at ``i*DELTA``.
  This is the schedule used throughout Section 4's lower-bound executions.
* :class:`PartialSynchronyDelay` — before GST delays are drawn from an
  adversary-friendly distribution (bounded, so channels stay reliable);
  after GST every delay is at most ``DELTA``.
* :class:`RandomDelay` — random delays for latency benchmarks.

An :class:`Interceptor` hook lets an adversary re-time (but never forge,
modify, or drop) individual messages, which is how the lower-bound splice
executions steer deliveries.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Protocol, Tuple

from .events import Simulator

__all__ = [
    "DEFAULT_DELTA",
    "DelayModel",
    "SynchronousDelay",
    "RoundSynchronousDelay",
    "PartialSynchronyDelay",
    "RandomDelay",
    "Envelope",
    "Interceptor",
    "Network",
    "NetworkStats",
]

#: Default synchrony bound used across examples and benchmarks (arbitrary
#: simulated time units; think "milliseconds").
DEFAULT_DELTA = 1.0

ProcessId = int


class DelayModel(Protocol):
    """Strategy deciding how long a message spends in transit."""

    def delay(self, src: ProcessId, dst: ProcessId, send_time: float) -> float:
        """Return the transit delay (>= 0) for a message sent now."""
        ...


@dataclass(frozen=True)
class SynchronousDelay:
    """Every message takes exactly ``delta`` time units."""

    delta: float = DEFAULT_DELTA

    def delay(self, src: ProcessId, dst: ProcessId, send_time: float) -> float:
        return self.delta


@dataclass(frozen=True)
class RoundSynchronousDelay:
    """Lock-step rounds as in the lower-bound proof (Section 4.1).

    A message sent during round ``i`` — the half-open interval
    ``[(i-1)*delta, i*delta)`` — is delivered precisely at the beginning of
    round ``i+1``, i.e. at time ``i*delta``.  A message sent exactly on a
    round boundary ``i*delta`` belongs to round ``i+1`` and is delivered at
    ``(i+1)*delta``.
    """

    delta: float = DEFAULT_DELTA

    def delivery_time(self, send_time: float) -> float:
        round_index = math.floor(send_time / self.delta) + 1
        return round_index * self.delta

    def delay(self, src: ProcessId, dst: ProcessId, send_time: float) -> float:
        return self.delivery_time(send_time) - send_time


@dataclass
class PartialSynchronyDelay:
    """Partial synchrony: arbitrary (bounded) delays before GST, ``delta`` after.

    Before GST, each message's delay is drawn uniformly from
    ``[delta, pre_gst_max]`` using a seeded RNG (deterministic).  A message
    sent before GST is additionally guaranteed to arrive no later than
    ``gst + delta`` — the standard "messages in flight at GST are delivered
    within delta of GST" convention, which keeps channels reliable.
    """

    delta: float = DEFAULT_DELTA
    gst: float = 0.0
    pre_gst_max: float = 50.0
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def delay(self, src: ProcessId, dst: ProcessId, send_time: float) -> float:
        if send_time >= self.gst:
            return self.delta
        raw = self._rng.uniform(self.delta, self.pre_gst_max)
        arrival = min(send_time + raw, self.gst + self.delta)
        return max(arrival - send_time, 0.0)


@dataclass
class RandomDelay:
    """Random delays in ``[min_delay, max_delay]`` for latency experiments."""

    min_delay: float = 0.5
    max_delay: float = 1.5
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.min_delay < 0 or self.max_delay < self.min_delay:
            raise ValueError("need 0 <= min_delay <= max_delay")
        self._rng = random.Random(self.seed)

    def delay(self, src: ProcessId, dst: ProcessId, send_time: float) -> float:
        return self._rng.uniform(self.min_delay, self.max_delay)


@dataclass(frozen=True)
class Envelope:
    """A message in transit.  Channels are authenticated: ``src`` is trusted."""

    src: ProcessId
    dst: ProcessId
    payload: Any
    send_time: float
    deliver_time: float


#: An interceptor may return a replacement delivery time for the envelope
#: (to delay or reorder it) or ``None`` to accept the delay model's choice.
#: Interceptors cannot drop messages: returning ``math.inf`` is rejected.
Interceptor = Callable[[Envelope], Optional[float]]


@dataclass
class NetworkStats:
    """Counters the analysis layer reads after a run."""

    messages_sent: int = 0
    messages_delivered: int = 0
    bytes_sent: int = 0


class Network:
    """Reliable authenticated point-to-point message transport.

    Processes register a delivery callback; :meth:`send` schedules delivery
    on the simulator according to the delay model (possibly re-timed by the
    interceptor).  The network never duplicates, forges, or loses messages,
    matching the channel assumptions in Section 2.1 of the paper.
    """

    def __init__(
        self,
        sim: Simulator,
        delay_model: Optional[DelayModel] = None,
        interceptor: Optional[Interceptor] = None,
    ) -> None:
        self.sim = sim
        self.delay_model: DelayModel = delay_model or SynchronousDelay()
        self.interceptor = interceptor
        self.stats = NetworkStats()
        self._handlers: Dict[ProcessId, Callable[[ProcessId, Any], None]] = {}
        self._delivery_log: List[Envelope] = []
        self._send_hooks: List[Callable[[Envelope], None]] = []

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register(
        self, pid: ProcessId, handler: Callable[[ProcessId, Any], None]
    ) -> None:
        """Register the delivery callback for process ``pid``."""
        if pid in self._handlers:
            raise ValueError(f"process {pid} already registered")
        self._handlers[pid] = handler

    def unregister(self, pid: ProcessId) -> None:
        self._handlers.pop(pid, None)

    @property
    def process_ids(self) -> Tuple[ProcessId, ...]:
        return tuple(sorted(self._handlers))

    def add_send_hook(self, hook: Callable[[Envelope], None]) -> None:
        """Observe every send (used by the trace recorder)."""
        self._send_hooks.append(hook)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def send(self, src: ProcessId, dst: ProcessId, payload: Any) -> Envelope:
        """Send ``payload`` from ``src`` to ``dst``; returns the envelope."""
        if dst not in self._handlers:
            raise ValueError(f"unknown destination process {dst}")
        now = self.sim.now
        delay = self.delay_model.delay(src, dst, now)
        if delay < 0 or math.isinf(delay) or math.isnan(delay):
            raise ValueError(f"delay model returned invalid delay {delay}")
        envelope = Envelope(
            src=src, dst=dst, payload=payload,
            send_time=now, deliver_time=now + delay,
        )
        if self.interceptor is not None:
            override = self.interceptor(envelope)
            if override is not None:
                if math.isinf(override) or math.isnan(override) or override < now:
                    raise ValueError(
                        f"interceptor returned invalid delivery time {override}"
                    )
                envelope = Envelope(
                    src=src, dst=dst, payload=payload,
                    send_time=now, deliver_time=override,
                )
        self.stats.messages_sent += 1
        for hook in self._send_hooks:
            hook(envelope)
        self.sim.schedule_at(
            envelope.deliver_time,
            lambda env=envelope: self._deliver(env),
            label=f"deliver {src}->{dst}",
        )
        return envelope

    def broadcast(
        self, src: ProcessId, payload: Any, include_self: bool = True
    ) -> List[Envelope]:
        """Send ``payload`` from ``src`` to every registered process."""
        envelopes = []
        for dst in self.process_ids:
            if dst == src and not include_self:
                continue
            envelopes.append(self.send(src, dst, payload))
        return envelopes

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------

    def _deliver(self, envelope: Envelope) -> None:
        handler = self._handlers.get(envelope.dst)
        if handler is None:
            return  # destination shut down after the message was sent
        self.stats.messages_delivered += 1
        self._delivery_log.append(envelope)
        handler(envelope.src, envelope.payload)

    @property
    def delivery_log(self) -> Tuple[Envelope, ...]:
        """All deliveries so far, in delivery order."""
        return tuple(self._delivery_log)
