"""Simulated point-to-point network with pluggable delay models.

The paper assumes reliable, authenticated channels in a *partially
synchronous* system: there is a bound ``DELTA`` on message delay that holds
from some unknown global stabilization time (GST) onward.  This module
models exactly that:

* :class:`SynchronousDelay` — every message takes a fixed delay (the
  "common case" the paper's latency claims are about).
* :class:`RoundSynchronousDelay` — messages sent in round ``i`` (the
  interval ``[(i-1)*DELTA, i*DELTA)``) are delivered exactly at ``i*DELTA``.
  This is the schedule used throughout Section 4's lower-bound executions.
* :class:`PartialSynchronyDelay` — before GST delays are drawn from an
  adversary-friendly distribution (bounded, so channels stay reliable);
  after GST every delay is at most ``DELTA``.
* :class:`RandomDelay` — random delays for latency benchmarks.

An :class:`Interceptor` hook lets an adversary re-time (but never forge,
modify, or drop) individual messages, which is how the lower-bound splice
executions steer deliveries.

On top of the raw interceptor the network offers two first-class,
declarative fault primitives (used by the scenario engine in
:mod:`repro.scenarios` and available to tests directly):

* :class:`DelayRule` — a named, matchable re-timing rule (``set_delay_rule``
  / ``clear_delay_rule``): messages matching on source, destination and/or
  payload type are delayed by a fixed extra amount or held until an
  absolute time.  This is the indy-plenum ``delay_rules`` idiom.
* partitions (``start_partition`` / ``heal_partition``) — messages crossing
  the current partition are *held* (never dropped: channels stay reliable)
  and released when the partition heals, re-timed by the delay model.

The transport itself is the hottest code in the repository: every message
of every experiment passes through :meth:`Network.send`.  When no rules,
interceptor, partition, tracer, send hook or delivery log are active,
sends take a zero-overhead fast path — no rule loop, no envelope
re-timing, no per-delivery label, and the delivery callback is posted
straight onto the simulator with :func:`functools.partial` instead of a
fresh closure.  Envelopes are ``NamedTuple`` instances (constructed in
C), the registered-pid tuple used by :meth:`Network.broadcast` is cached
across calls, payload sizes are memoized by object identity through the
bounded memo in :mod:`repro._core`, and the per-delivery log is opt-in
(``record_deliveries=True``) because nothing outside the tests reads it.

The sizing, fast delivery and (on the compiled backend) the entire
fast-path send live in the pluggable backend layer :mod:`repro._core`:
when the simulator carries a C core and nothing slow is active, the send
itself runs in the extension (``NetCore.send``) and the pure path is
never entered.  Both paths produce identical envelopes, identical stats
and identical delivery order — the golden trace digests pin it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from random import Random
from functools import partial
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Protocol,
    Sequence,
    Tuple,
)

from .. import _core
from .._core import payload_size
from .events import Simulator

__all__ = [
    "DEFAULT_DELTA",
    "DelayModel",
    "SynchronousDelay",
    "RoundSynchronousDelay",
    "PartialSynchronyDelay",
    "RandomDelay",
    "DelayRule",
    "Envelope",
    "Interceptor",
    "Network",
    "NetworkStats",
    "payload_size",
]

#: Default synchrony bound used across examples and benchmarks (arbitrary
#: simulated time units; think "milliseconds").
DEFAULT_DELTA = 1.0

ProcessId = int

_INF = math.inf


class DelayModel(Protocol):
    """Strategy deciding how long a message spends in transit."""

    def delay(self, src: ProcessId, dst: ProcessId, send_time: float) -> float:
        """Return the transit delay (>= 0) for a message sent now."""
        ...


@dataclass(frozen=True)
class SynchronousDelay:
    """Every message takes exactly ``delta`` time units."""

    delta: float = DEFAULT_DELTA

    def delay(self, src: ProcessId, dst: ProcessId, send_time: float) -> float:
        return self.delta


@dataclass(frozen=True)
class RoundSynchronousDelay:
    """Lock-step rounds as in the lower-bound proof (Section 4.1).

    A message sent during round ``i`` — the half-open interval
    ``[(i-1)*delta, i*delta)`` — is delivered precisely at the beginning of
    round ``i+1``, i.e. at time ``i*delta``.  A message sent exactly on a
    round boundary ``i*delta`` belongs to round ``i+1`` and is delivered at
    ``(i+1)*delta``.
    """

    delta: float = DEFAULT_DELTA

    def delivery_time(self, send_time: float) -> float:
        round_index = math.floor(send_time / self.delta) + 1
        return round_index * self.delta

    def delay(self, src: ProcessId, dst: ProcessId, send_time: float) -> float:
        return self.delivery_time(send_time) - send_time


@dataclass
class PartialSynchronyDelay:
    """Partial synchrony: arbitrary (bounded) delays before GST, ``delta`` after.

    Before GST, each message's delay is drawn uniformly from
    ``[delta, pre_gst_max]`` using a seeded RNG (deterministic).  A message
    sent before GST is additionally guaranteed to arrive no later than
    ``gst + delta`` — the standard "messages in flight at GST are delivered
    within delta of GST" convention, which keeps channels reliable.
    """

    delta: float = DEFAULT_DELTA
    gst: float = 0.0
    pre_gst_max: float = 50.0
    seed: int = 0
    _rng: Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = Random(self.seed)

    def delay(self, src: ProcessId, dst: ProcessId, send_time: float) -> float:
        if send_time >= self.gst:
            return self.delta
        raw = self._rng.uniform(self.delta, self.pre_gst_max)
        arrival = min(send_time + raw, self.gst + self.delta)
        return max(arrival - send_time, 0.0)


@dataclass
class RandomDelay:
    """Random delays in ``[min_delay, max_delay]`` for latency experiments."""

    min_delay: float = 0.5
    max_delay: float = 1.5
    seed: int = 0
    _rng: Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.min_delay < 0 or self.max_delay < self.min_delay:
            raise ValueError("need 0 <= min_delay <= max_delay")
        self._rng = Random(self.seed)

    def delay(self, src: ProcessId, dst: ProcessId, send_time: float) -> float:
        return self._rng.uniform(self.min_delay, self.max_delay)


class Envelope(NamedTuple):
    """A message in transit.  Channels are authenticated: ``src`` is trusted.

    A ``NamedTuple`` rather than a dataclass: envelopes are created once
    per send on the hot path, and C-level tuple construction is several
    times cheaper than a frozen dataclass ``__init__``.
    """

    src: ProcessId
    dst: ProcessId
    payload: Any
    send_time: float
    deliver_time: float
    #: Causal-trace id of the send event (see :mod:`repro.obs.tracing`);
    #: defaulted so the field is invisible to untraced runs — positional
    #: construction, payload-keyed digests and sizes are all unchanged.
    trace: Any = None


#: An interceptor may return a replacement delivery time for the envelope
#: (to delay or reorder it) or ``None`` to accept the delay model's choice.
#: Interceptors cannot drop messages: returning ``math.inf`` is rejected.
Interceptor = Callable[[Envelope], Optional[float]]


# payload_size is implemented by the backend layer (repro._core.pure is
# the reference; the compiled extension must match it byte for byte) and
# re-exported here because the digest, analysis and test layers import it
# from this module.


@dataclass(frozen=True)
class DelayRule:
    """A named, declarative message re-timing rule.

    A rule *matches* an envelope when all of its non-``None`` filters do:
    ``src``/``dst`` restrict the endpoints, ``payload_types`` restricts the
    payload class name.  A matching envelope is delayed by ``extra_delay``
    beyond the delay model's choice and, additionally, never delivered
    before the absolute time ``hold_until``.  Rules re-time only — they can
    never drop a message (channels stay reliable).
    """

    name: str
    extra_delay: float = 0.0
    hold_until: Optional[float] = None
    src: Optional[FrozenSet[ProcessId]] = None
    dst: Optional[FrozenSet[ProcessId]] = None
    payload_types: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.extra_delay < 0:
            raise ValueError("extra_delay must be >= 0")
        # Accept any iterable of pids / type names for convenience.
        if self.src is not None and not isinstance(self.src, frozenset):
            object.__setattr__(self, "src", frozenset(self.src))
        if self.dst is not None and not isinstance(self.dst, frozenset):
            object.__setattr__(self, "dst", frozenset(self.dst))
        if self.payload_types is not None and not isinstance(
            self.payload_types, tuple
        ):
            object.__setattr__(
                self, "payload_types", tuple(self.payload_types)
            )

    def matches_endpoints(self, src: ProcessId, dst: ProcessId) -> bool:
        """Endpoint filters only; the payload-type filter is pre-resolved
        by the network's per-type rule index."""
        if self.src is not None and src not in self.src:
            return False
        if self.dst is not None and dst not in self.dst:
            return False
        return True

    def matches(self, envelope: Envelope) -> bool:
        if (
            self.payload_types is not None
            and type(envelope.payload).__name__ not in self.payload_types
        ):
            return False
        return self.matches_endpoints(envelope.src, envelope.dst)

    def apply(self, deliver_time: float) -> float:
        delayed = deliver_time + self.extra_delay
        if self.hold_until is not None:
            delayed = max(delayed, self.hold_until)
        return delayed


@dataclass(slots=True)
class NetworkStats:
    """Counters the analysis layer reads after a run."""

    messages_sent: int = 0
    messages_delivered: int = 0
    bytes_sent: int = 0
    messages_held: int = 0
    #: Payload-size memo effectiveness (see ``_core.payload_size_cached``).
    size_cache_hits: int = 0
    size_cache_misses: int = 0


#: Entries kept in the payload-size memo before oldest-first eviction
#: (see ``repro._core.pure.payload_size_cached`` for the safe-keying
#: contract).  Kept as a module name for the memo tests.
_SIZE_MEMO_LIMIT = _core.SIZE_MEMO_LIMIT


class Network:
    """Reliable authenticated point-to-point message transport.

    Processes register a delivery callback; :meth:`send` schedules delivery
    on the simulator according to the delay model (possibly re-timed by the
    interceptor).  The network never duplicates, forges, or loses messages,
    matching the channel assumptions in Section 2.1 of the paper.

    ``record_deliveries`` enables the per-delivery envelope log behind
    :attr:`delivery_log`.  It is off by default: the log is append-per-
    delivery and unbounded, and only diagnostic tests read it.
    """

    def __init__(
        self,
        sim: Simulator,
        delay_model: Optional[DelayModel] = None,
        interceptor: Optional[Interceptor] = None,
        record_deliveries: bool = False,
        fast_paths: bool = True,
    ) -> None:
        self.sim = sim
        self._post = sim.post  # bound once: called on every send
        self.stats = NetworkStats()
        self._handlers: Dict[ProcessId, Callable[[ProcessId, Any], None]] = {}
        #: Bound once — the zero-rule delivery callback from the backend
        #: layer; ``partial(self._deliver_ref, ...)`` posts it per send.
        self._deliver_ref = _core.make_deliver(self._handlers, self.stats)
        self._delivery_log: Optional[List[Envelope]] = (
            [] if record_deliveries else None
        )
        self._send_hooks: List[Callable[[Envelope], None]] = []
        self._delay_rules: Dict[str, DelayRule] = {}
        #: payload type name -> rules that could match it, in installation
        #: order (rule applications do not commute); lazily rebuilt.
        self._rule_index: Dict[str, Tuple[DelayRule, ...]] = {}
        self._partition: Optional[Tuple[FrozenSet[ProcessId], ...]] = None
        self._held: List[Envelope] = []
        #: ``fast_paths=False`` is the measurement baseline for E20: it
        #: pins the reference delivery path (per-delivery envelope
        #: scheduling, uncached payload sizing, no compiled net core) so
        #: the optimized paths have something honest to be compared
        #: against.  Production code never passes it.
        self._fast_paths = fast_paths
        #: id(payload) -> (payload, size).  The strong reference keeps the
        #: id valid for the lifetime of the entry (safe keying: see
        #: ``repro._core.pure.payload_size_cached``).
        self._size_memo: Dict[int, Tuple[Any, int]] = {}
        #: The backend's bounded identity-keyed size memo.
        self._size_fn: Callable[[Any], int]
        if fast_paths:
            self._size_fn = partial(
                _core.payload_size_cached, self._size_memo, self.stats
            )
        else:
            self._size_fn = _core.payload_size
        self._pid_cache: Optional[Tuple[ProcessId, ...]] = None
        #: With a fixed-delay model the per-send model call is replaced by
        #: one float addition (set by the ``delay_model`` setter).
        self._fixed_delay: Optional[float] = None
        #: True while any re-timing machinery (rules, interceptor,
        #: partition) is active; recomputed on every mutation so the send
        #: hot path tests one flag instead of three conditions.
        self._slow = False
        #: Optional causal tracer (``repro.obs.tracing.CausalTracer``):
        #: ``None`` keeps the send/deliver hot paths untouched.
        self._tracer: Optional[Any] = None
        #: Per-payload-type verdict memo for selective tracers — tracers
        #: exposing ``wants(payload_type) -> bool`` only pay the traced
        #: path for types they care about; ``None`` means trace all.
        self._tracer_wants: Optional[Dict[type, bool]] = None
        #: Compiled fast-path send (``repro._core._accel.NetCore``), built
        #: only when the simulator carries a C core; ``_rebind_send``
        #: routes ``self._send`` to it while nothing slow is active.
        self._netcore: Optional[Any] = None
        simcore = getattr(sim, "_simcore", None) if fast_paths else None
        if simcore is not None and _core.accel is not None:
            self._netcore = _core.accel.NetCore(
                simcore, self._handlers, self.stats, Envelope
            )
        self._send: Callable[..., Envelope] = self._send_general
        self._interceptor = interceptor
        self.delay_model = delay_model or SynchronousDelay()
        self._refresh_path()

    @property
    def delay_model(self) -> DelayModel:
        return self._delay_model

    @delay_model.setter
    def delay_model(self, model: DelayModel) -> None:
        self._delay_model = model
        if isinstance(model, SynchronousDelay):
            delta = model.delta
            if not 0.0 <= delta < _INF:
                raise ValueError(f"delay model returned invalid delay {delta}")
            self._fixed_delay = delta
        else:
            self._fixed_delay = None
        if self._netcore is not None:
            self._netcore.set_delay(self._fixed_delay, model)

    @property
    def interceptor(self) -> Optional[Interceptor]:
        return self._interceptor

    @interceptor.setter
    def interceptor(self, interceptor: Optional[Interceptor]) -> None:
        self._interceptor = interceptor
        self._refresh_path()

    def _refresh_path(self) -> None:
        self._slow = bool(
            self._delay_rules
            or self._interceptor is not None
            or self._partition is not None
        )
        self._rebind_send()

    def _rebind_send(self) -> None:
        """Route ``self._send`` to the compiled fast path when eligible.

        Eligible means: a C net core exists and nothing that needs the
        general path is active — no re-timing machinery (``_slow``), no
        tracer, no send hooks, no delivery log.  Every mutator of those
        conditions calls back here, so the dispatch is one attribute
        read per send instead of four condition tests.
        """
        core = self._netcore
        if (
            core is not None
            and not self._slow
            and self._tracer is None
            and not self._send_hooks
            and self._delivery_log is None
        ):
            self._send = core.send
        else:
            self._send = self._send_general

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register(
        self, pid: ProcessId, handler: Callable[[ProcessId, Any], None]
    ) -> None:
        """Register the delivery callback for process ``pid``."""
        if pid in self._handlers:
            raise ValueError(f"process {pid} already registered")
        self._handlers[pid] = handler
        self._pid_cache = None

    def unregister(self, pid: ProcessId) -> None:
        self._handlers.pop(pid, None)
        self._pid_cache = None

    @property
    def process_ids(self) -> Tuple[ProcessId, ...]:
        pids = self._pid_cache
        if pids is None:
            pids = self._pid_cache = tuple(sorted(self._handlers))
        return pids

    def add_send_hook(self, hook: Callable[[Envelope], None]) -> None:
        """Observe every send (used by the trace recorder)."""
        self._send_hooks.append(hook)
        self._rebind_send()

    def install_tracer(self, tracer: Optional[Any]) -> None:
        """Install (or remove, with ``None``) a causal tracer.

        The tracer stamps each outgoing envelope's ``trace`` field and
        observes deliveries; delivery *times* are unchanged, so a traced
        run produces the same trace digest as an untraced one.

        A tracer may expose ``wants(payload_type) -> bool`` to opt out of
        payload types it does not record: unwanted sends skip the stamp
        *and* keep the prebound fast delivery, so a selective tracer (the
        flight recorder) costs near-nothing on payloads it ignores.  The
        verdict is memoized per payload type.
        """
        self._tracer = tracer
        self._tracer_wants = (
            {} if callable(getattr(tracer, "wants", None)) else None
        )
        self._rebind_send()

    # ------------------------------------------------------------------
    # Declarative fault primitives: delay rules and partitions
    # ------------------------------------------------------------------

    def set_delay_rule(self, rule: DelayRule) -> DelayRule:
        """Install (or replace, by name) a :class:`DelayRule`.

        The rule applies to messages sent while it is installed; messages
        already in flight keep their scheduled delivery time.
        """
        self._delay_rules[rule.name] = rule
        self._rule_index.clear()
        self._refresh_path()
        return rule

    def clear_delay_rule(self, name: str) -> None:
        """Remove the named rule.  Unknown names are a no-op."""
        self._delay_rules.pop(name, None)
        self._rule_index.clear()
        self._refresh_path()

    @property
    def delay_rules(self) -> Tuple[DelayRule, ...]:
        return tuple(self._delay_rules.values())

    def _rules_for(self, type_name: str) -> Tuple[DelayRule, ...]:
        """Installed rules that could match a payload of ``type_name``,
        in installation order (cached per type until the rule set changes)."""
        rules = self._rule_index.get(type_name)
        if rules is None:
            rules = tuple(
                rule
                for rule in self._delay_rules.values()
                if rule.payload_types is None
                or type_name in rule.payload_types
            )
            self._rule_index[type_name] = rules
        return rules

    def start_partition(
        self, groups: Sequence[Iterable[ProcessId]]
    ) -> None:
        """Partition the network into ``groups``.

        Messages whose endpoints fall in different groups are *held* — not
        dropped — until :meth:`heal_partition`.  Processes appearing in no
        group form one implicit extra group.  A process may appear in at
        most one group.
        """
        frozen = tuple(frozenset(g) for g in groups)
        seen: set = set()
        for group in frozen:
            if group & seen:
                raise ValueError(f"process in multiple partition groups: {frozen}")
            seen |= group
        self._partition = frozen
        self._refresh_path()

    def heal_partition(self) -> None:
        """Remove the partition and release held messages.

        Each held message is re-timed by the delay model from the heal
        instant, matching the "in-flight messages arrive within the bound
        after stabilization" convention.  Active delay rules and the
        interceptor still apply to the released messages — healing never
        bypasses their contract.
        """
        self._partition = None
        self._refresh_path()
        held, self._held = self._held, []
        now = self.sim.now
        for envelope in held:
            delay = self._delay_model.delay(envelope.src, envelope.dst, now)
            released = Envelope(
                envelope.src,
                envelope.dst,
                envelope.payload,
                envelope.send_time,
                now + delay,
                envelope.trace,
            )
            self._schedule_delivery(self._retime(released))

    @property
    def partitioned(self) -> bool:
        return self._partition is not None

    @property
    def held_messages(self) -> Tuple[Envelope, ...]:
        """Messages currently held by the partition."""
        return tuple(self._held)

    def _crosses_partition(self, src: ProcessId, dst: ProcessId) -> bool:
        if self._partition is None or src == dst:
            return False

        def group_of(pid: ProcessId) -> int:
            for index, group in enumerate(self._partition):
                if pid in group:
                    return index
            return -1  # the implicit "everyone else" group

        return group_of(src) != group_of(dst)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def send(self, src: ProcessId, dst: ProcessId, payload: Any) -> Envelope:
        """Send ``payload`` from ``src`` to ``dst``; returns the envelope."""
        return self._send(src, dst, payload, self._size_fn(payload))

    def _send_general(
        self, src: ProcessId, dst: ProcessId, payload: Any, size: int
    ) -> Envelope:
        """The pure-Python transport path; ``size`` is pre-computed so
        broadcasts account the payload once instead of probing the memo
        per recipient.  ``self._send`` points here unless the compiled
        fast path is bound (see :meth:`_rebind_send`)."""
        if dst not in self._handlers:
            raise ValueError(f"unknown destination process {dst}")
        now = self.sim._now
        fixed = self._fixed_delay
        if fixed is not None:
            deliver = now + fixed
        else:
            delay = self._delay_model.delay(src, dst, now)
            if not 0.0 <= delay < _INF:  # also rejects NaN (comparisons False)
                raise ValueError(f"delay model returned invalid delay {delay}")
            deliver = now + delay
        envelope = Envelope(src, dst, payload, now, deliver)
        # Zero-rule fast path: with no delay rules, no interceptor and no
        # partition active (``_slow`` is maintained by their mutators), the
        # envelope is final — skip the rule loop, the re-timing
        # reconstruction and the partition check entirely.
        slow = self._slow
        if slow:
            envelope = self._retime(envelope)
            deliver = envelope.deliver_time
        tracer = self._tracer
        traced = tracer is not None
        if traced:
            wants = self._tracer_wants
            if wants is not None:
                ptype = type(payload)
                verdict = wants.get(ptype)
                if verdict is None:
                    verdict = wants[ptype] = bool(tracer.wants(ptype))
                traced = verdict
            if traced:
                envelope = tracer.on_send(envelope)
        stats = self.stats
        stats.messages_sent += 1
        stats.bytes_sent += size
        hooks = self._send_hooks
        if hooks:
            for hook in hooks:
                hook(envelope)
        if slow and self._crosses_partition(src, dst):
            stats.messages_held += 1
            self._held.append(envelope)
            return envelope
        if not traced and self._delivery_log is None and self._fast_paths:
            self._post(deliver, partial(self._deliver_ref, dst, src, payload))
        else:
            # Tracing needs the envelope at delivery; the schedule keeps
            # the same (time, insertion-order) pair, so digests match.
            self._schedule_delivery(envelope)
        return envelope

    def _retime(self, envelope: Envelope) -> Envelope:
        """Apply delay rules, then the interceptor, to an envelope."""
        deliver_time = envelope.deliver_time
        rules = self._rules_for(type(envelope.payload).__name__)
        if rules:
            src = envelope.src
            dst = envelope.dst
            for rule in rules:
                if rule.matches_endpoints(src, dst):
                    deliver_time = rule.apply(deliver_time)
            if deliver_time != envelope.deliver_time:
                envelope = envelope._replace(deliver_time=deliver_time)
        if self._interceptor is not None:
            override = self._interceptor(envelope)
            if override is not None:
                now = self.sim.now
                if math.isinf(override) or math.isnan(override) or override < now:
                    raise ValueError(
                        f"interceptor returned invalid delivery time {override}"
                    )
                envelope = envelope._replace(deliver_time=override)
        return envelope

    def _schedule_delivery(self, envelope: Envelope) -> None:
        self.sim.post(envelope.deliver_time, partial(self._deliver, envelope))

    def broadcast(
        self, src: ProcessId, payload: Any, include_self: bool = True
    ) -> List[Envelope]:
        """Send ``payload`` from ``src`` to every registered process.

        The payload's structural size is resolved once for the whole
        broadcast, and the destination list is the cached sorted pid
        tuple — nothing here is per-recipient except the send itself.
        """
        size = self._size_fn(payload)
        send = self._send
        if include_self:
            return [send(src, dst, payload, size) for dst in self.process_ids]
        return [
            send(src, dst, payload, size)
            for dst in self.process_ids
            if dst != src
        ]

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------

    def _deliver(self, envelope: Envelope) -> None:
        handler = self._handlers.get(envelope.dst)
        if handler is None:
            return  # destination shut down after the message was sent
        self.stats.messages_delivered += 1
        if self._delivery_log is not None:
            self._delivery_log.append(envelope)
        tracer = self._tracer
        if tracer is None:
            handler(envelope.src, envelope.payload)
            return
        token = tracer.begin_delivery(envelope)
        try:
            handler(envelope.src, envelope.payload)
        finally:
            tracer.end_delivery(token)

    @property
    def records_deliveries(self) -> bool:
        return self._delivery_log is not None

    @property
    def delivery_log(self) -> Tuple[Envelope, ...]:
        """All deliveries so far, in delivery order.

        Only populated when the network was built with
        ``record_deliveries=True``; raises otherwise, because silently
        returning an empty log has bitten people before.
        """
        if self._delivery_log is None:
            raise RuntimeError(
                "delivery log is opt-in: construct the Network with "
                "record_deliveries=True"
            )
        return tuple(self._delivery_log)
