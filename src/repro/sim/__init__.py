"""Deterministic discrete-event simulation substrate.

This package provides everything the protocols run on: the event loop
(:mod:`~repro.sim.events`), the reliable authenticated network with
pluggable delay models (:mod:`~repro.sim.network`), the process
abstraction (:mod:`~repro.sim.process`), trace recording
(:mod:`~repro.sim.trace`) and the cluster harness
(:mod:`~repro.sim.runner`).
"""

from .digest import cluster_digest, trace_digest
from .events import EventHandle, SimulationError, SimulationTimeout, Simulator
from .network import (
    DEFAULT_DELTA,
    DelayModel,
    DelayRule,
    Envelope,
    Network,
    NetworkStats,
    PartialSynchronyDelay,
    RandomDelay,
    RoundSynchronousDelay,
    SynchronousDelay,
    payload_size,
)
from .process import Process, ProcessContext, Timer
from .runner import Cluster, ClusterResult
from .trace import ConsistencyViolation, Decision, TraceRecorder, message_delays

__all__ = [
    "Cluster",
    "ClusterResult",
    "ConsistencyViolation",
    "DEFAULT_DELTA",
    "Decision",
    "DelayModel",
    "DelayRule",
    "Envelope",
    "EventHandle",
    "Network",
    "NetworkStats",
    "PartialSynchronyDelay",
    "Process",
    "ProcessContext",
    "RandomDelay",
    "RoundSynchronousDelay",
    "SimulationError",
    "SimulationTimeout",
    "Simulator",
    "SynchronousDelay",
    "Timer",
    "TraceRecorder",
    "cluster_digest",
    "message_delays",
    "payload_size",
    "trace_digest",
]
