"""Execution traces: who sent what when, who decided what when.

The paper's headline metric is *common-case latency measured in message
delays*.  With the round-synchronous delay model every hop costs exactly
``DELTA``, so a decision at time ``k * DELTA`` is a ``k``-step decision.
:func:`message_delays` performs that conversion; :class:`TraceRecorder`
captures the raw material.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from .network import Envelope, Network, ProcessId

__all__ = [
    "Decision",
    "TraceRecorder",
    "message_delays",
    "ConsistencyViolation",
]


class ConsistencyViolation(Exception):
    """Two correct processes decided different values."""


@dataclass(frozen=True)
class Decision:
    """A decision event: ``pid`` decided ``value`` at simulated ``time``."""

    pid: ProcessId
    value: Any
    time: float


class TraceRecorder:
    """Records message sends and decisions for later analysis."""

    def __init__(self, network: Optional[Network] = None) -> None:
        self.sends: List[Envelope] = []
        self.decisions: List[Decision] = []
        self._decided_by: Dict[ProcessId, Decision] = {}
        self._type_counts: Dict[str, int] = {}
        if network is not None:
            network.add_send_hook(self._record_send)

    def _record_send(self, envelope: Envelope) -> None:
        self.sends.append(envelope)
        name = type(envelope.payload).__name__
        counts = self._type_counts
        counts[name] = counts.get(name, 0) + 1

    # ------------------------------------------------------------------
    # Decision bookkeeping
    # ------------------------------------------------------------------

    def record_decision(self, pid: ProcessId, value: Any, time: float) -> None:
        """Record a decision.  Re-deciding the same value is a no-op; a
        correct process deciding twice with different values is an error."""
        previous = self._decided_by.get(pid)
        if previous is not None:
            if previous.value != value:
                raise ConsistencyViolation(
                    f"process {pid} decided {previous.value!r} then {value!r}"
                )
            return
        decision = Decision(pid=pid, value=value, time=time)
        self._decided_by[pid] = decision
        self.decisions.append(decision)

    def decision_of(self, pid: ProcessId) -> Optional[Decision]:
        return self._decided_by.get(pid)

    def decided_values(self, pids: Optional[Tuple[ProcessId, ...]] = None) -> set:
        """Distinct values decided by ``pids`` (default: everyone recorded)."""
        if pids is None:
            return {d.value for d in self.decisions}
        return {
            d.value for pid, d in self._decided_by.items() if pid in pids
        }

    def all_decided(self, pids) -> bool:
        return all(pid in self._decided_by for pid in pids)

    def check_agreement(self, correct_pids) -> Any:
        """Assert all ``correct_pids`` that decided agree; return the value."""
        values = {
            self._decided_by[pid].value
            for pid in correct_pids
            if pid in self._decided_by
        }
        if len(values) > 1:
            raise ConsistencyViolation(
                f"correct processes decided different values: {values!r}"
            )
        return next(iter(values)) if values else None

    def decision_times(self, pids) -> Dict[ProcessId, float]:
        return {
            pid: self._decided_by[pid].time
            for pid in pids
            if pid in self._decided_by
        }

    def latest_decision_time(self, pids) -> Optional[float]:
        # Materialize once: ``pids`` may be a generator, and iterating it
        # for decision_times() would exhaust it before the completeness
        # check below (which would then pass vacuously on len 0).
        pids = tuple(pids)
        times = self.decision_times(pids)
        if len(times) < len(pids):
            return None
        return max(times.values()) if times else None

    # ------------------------------------------------------------------
    # Message accounting
    # ------------------------------------------------------------------

    def message_count(self) -> int:
        return len(self.sends)

    def messages_by_type(self) -> Dict[str, int]:
        """Histogram of payload class names across all sends.

        Maintained incrementally by the send hook — analysis code calls
        this per run, and rescanning every send made it O(sends) per
        call.  Direct appends to :attr:`sends` (no network hook) are
        still counted, lazily.
        """
        if sum(self._type_counts.values()) != len(self.sends):
            counts: Dict[str, int] = {}
            for env in self.sends:
                name = type(env.payload).__name__
                counts[name] = counts.get(name, 0) + 1
            self._type_counts = counts
        return dict(self._type_counts)


def message_delays(decision_time: float, delta: float) -> int:
    """Convert an absolute decision time into a message-delay count.

    Under the round-synchronous schedule a decision at ``k * delta`` was
    reached after exactly ``k`` message delays.  Times that do not fall on
    a round boundary are rounded up (the decision needed the delivery that
    started the enclosing round).
    """
    if decision_time < 0:
        raise ValueError("decision_time must be >= 0")
    steps = decision_time / delta
    rounded = round(steps)
    if math.isclose(steps, rounded, abs_tol=1e-9):
        return int(rounded)
    return int(math.ceil(steps))
