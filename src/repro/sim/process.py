"""Process abstraction: deterministic state machines driven by the simulator.

Every participant in a protocol — correct or Byzantine — is a
:class:`Process`.  A process reacts to three kinds of stimuli: the start of
the execution, message deliveries, and timer expirations.  It acts on the
world only through its :class:`ProcessContext` (send, broadcast, timers),
which makes it easy to wrap a process to inject Byzantine behaviour.
"""

from __future__ import annotations

from functools import partial
from typing import Any, Callable, Dict, Hashable, List, Optional

from .events import EventHandle, Simulator
from .network import Network, ProcessId

__all__ = ["Process", "ProcessContext", "Timer"]


class Timer:
    """A cancellable timer owned by a process.

    A ``__slots__`` wrapper around the simulator's event handle — timers
    are armed and cancelled thousands of times per run (per-slot SMR
    pacemakers, client retries), so this stays allocation-light.
    """

    __slots__ = ("name", "handle")

    def __init__(self, name: Hashable, handle: EventHandle) -> None:
        self.name = name
        self.handle = handle

    def cancel(self) -> None:
        self.handle.cancel()

    @property
    def active(self) -> bool:
        return not self.handle.cancelled


class ProcessContext:
    """The only window a process has onto the simulated world."""

    def __init__(self, pid: ProcessId, sim: Simulator, network: Network) -> None:
        self.pid = pid
        self.sim = sim
        self.network = network
        self._timers: Dict[Hashable, Timer] = {}
        self._halted = False
        #: Derived contexts (e.g. per-slot contexts of an SMR replica)
        #: whose crash fate is tied to this one; see :meth:`adopt`.
        self._children: List["ProcessContext"] = []

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.sim.now

    @property
    def halted(self) -> bool:
        return self._halted

    def adopt(self, child: "ProcessContext") -> None:
        """Tie ``child``'s halt/resume fate to this context.

        A process that multiplexes sub-machines (each with its own timer
        namespace) must register their contexts here, otherwise a crash
        of the parent would leave the children's timers firing — exactly
        the crash-model violation :meth:`halt` exists to rule out.
        """
        self._children.append(child)
        if self._halted:
            child.halt()

    def halt(self) -> None:
        """Stop all activity from this process (crash)."""
        self._halted = True
        for timer in self._timers.values():
            timer.cancel()
        self._timers.clear()
        for child in self._children:
            child.halt()

    def resume(self) -> None:
        """Undo a halt (crash-recovery).

        The process keeps its in-memory state but has lost every message
        delivered while down and every timer armed before the crash —
        exactly the crash-recovery model scenario schedules need.  Waking
        the process up again (e.g. re-arming its timers) is the caller's
        business.  Adopted child contexts resume alongside the parent.
        """
        self._halted = False
        for child in self._children:
            child.resume()

    # ------------------------------------------------------------------
    def send(self, dst: ProcessId, payload: Any) -> None:
        if self._halted:
            return
        self.network.send(self.pid, dst, payload)

    def broadcast(self, payload: Any, include_self: bool = True) -> None:
        if self._halted:
            return
        self.network.broadcast(self.pid, payload, include_self=include_self)

    # ------------------------------------------------------------------
    def set_timer(
        self, name: Hashable, delay: float, callback: Callable[[], None]
    ) -> Timer:
        """(Re)arm the named timer; an existing timer of that name is
        cancelled.  Names are usually strings but any hashable works (the
        SMR client keys retry timers by request id without formatting).

        The timer's label is lazy: it is only rendered if a handle's
        ``label`` is actually read (e.g. while tracing), never on the
        arm/cancel hot path.
        """
        timer = self._timers.pop(name, None)
        if timer is not None:
            timer.cancel()
        handle = self.sim.schedule(
            delay,
            partial(self._fire_timer, name, callback),
            label=partial("timer {}@{}".format, name, self.pid),
        )
        timer = Timer(name, handle)
        self._timers[name] = timer
        return timer

    def cancel_timer(self, name: Hashable) -> None:
        timer = self._timers.pop(name, None)
        if timer is not None:
            timer.cancel()

    def has_timer(self, name: Hashable) -> bool:
        timer = self._timers.get(name)
        return timer is not None and timer.active

    def _fire_timer(self, name: Hashable, callback: Callable[[], None]) -> None:
        if self._halted:
            return
        self._timers.pop(name, None)
        callback()


class Process:
    """Base class for all protocol participants.

    Subclasses override :meth:`on_start`, :meth:`on_message` and use
    ``self.ctx`` to interact with the network.  The harness (see
    ``repro.sim.runner``) constructs the context and wires delivery.
    """

    def __init__(self, pid: ProcessId) -> None:
        self.pid = pid
        self.ctx: Optional[ProcessContext] = None

    # ------------------------------------------------------------------
    # Wiring (called by the runner)
    # ------------------------------------------------------------------

    def attach(self, ctx: ProcessContext) -> None:
        self.ctx = ctx

    def _dispatch(self, sender: ProcessId, payload: Any) -> None:
        if self.ctx is None or self.ctx.halted:
            return
        self.on_message(sender, payload)

    def _start(self) -> None:
        if self.ctx is None or self.ctx.halted:
            return
        self.on_start()

    # ------------------------------------------------------------------
    # Protocol hooks
    # ------------------------------------------------------------------

    def on_start(self) -> None:
        """Called once at time 0."""

    def on_message(self, sender: ProcessId, payload: Any) -> None:
        """Called on each message delivery."""

    def on_recover(self) -> None:
        """Called after a crash-recovery resume (context already live).

        The default keeps the legacy model: the process resumes with
        whatever in-memory state it happened to keep.  Durable processes
        (e.g. :class:`repro.smr.replica.SMRReplica` with storage)
        override this to discard volatile state and rebuild from their
        write-ahead log and stable checkpoint instead — and to start
        peer catchup when the disk was lost with the crash.
        """

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        assert self.ctx is not None
        return self.ctx.now

    def send(self, dst: ProcessId, payload: Any) -> None:
        assert self.ctx is not None
        self.ctx.send(dst, payload)

    def broadcast(self, payload: Any, include_self: bool = True) -> None:
        assert self.ctx is not None
        self.ctx.broadcast(payload, include_self=include_self)

    def crash(self) -> None:
        """Stop taking steps (until a scenario explicitly recovers us)."""
        if self.ctx is not None:
            self.ctx.halt()

    def recover(self) -> None:
        """Resume after a crash; see :meth:`ProcessContext.resume`.

        The :meth:`on_recover` hook runs after the context is live, so
        it may send, broadcast and arm timers (a durable replica's
        rebuild-and-catchup path needs all three).
        """
        if self.ctx is not None:
            self.ctx.resume()
            self.on_recover()

    @property
    def crashed(self) -> bool:
        return self.ctx is not None and self.ctx.halted
