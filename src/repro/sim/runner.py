"""Cluster harness: wires processes, network and trace together and runs them.

A :class:`Cluster` owns one simulator, one network and one trace recorder.
It accepts fully constructed :class:`~repro.sim.process.Process` objects
(correct or Byzantine), attaches their contexts, registers their delivery
handlers, and starts them all at time 0.

Any process that exposes a ``decision_hook`` attribute (all consensus
processes in this library do, via ``repro.core.protocol.ConsensusProcess``)
gets it wired to the trace recorder, so agreement checks and latency
measurements come for free.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Sequence, Tuple

from .events import Simulator
from .network import DelayModel, Interceptor, Network, ProcessId, SynchronousDelay
from .process import Process, ProcessContext
from .trace import TraceRecorder

__all__ = ["Cluster", "ClusterResult"]


class ClusterResult:
    """Snapshot of a finished (or timed-out) run."""

    def __init__(
        self,
        cluster: "Cluster",
        decided: bool,
        decision_value: Any,
        decision_time: Optional[float],
    ) -> None:
        self.cluster = cluster
        self.decided = decided
        self.decision_value = decision_value
        self.decision_time = decision_time
        self.trace = cluster.trace
        self.messages_sent = cluster.network.stats.messages_sent
        self.bytes_sent = cluster.network.stats.bytes_sent

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ClusterResult(decided={self.decided}, value={self.decision_value!r}, "
            f"time={self.decision_time}, msgs={self.messages_sent})"
        )


class Cluster:
    """A set of processes sharing a simulated network."""

    def __init__(
        self,
        processes: Sequence[Process],
        delay_model: Optional[DelayModel] = None,
        interceptor: Optional[Interceptor] = None,
        sim: Optional[Simulator] = None,
    ) -> None:
        if not processes:
            raise ValueError("cluster needs at least one process")
        pids = [p.pid for p in processes]
        if len(set(pids)) != len(pids):
            raise ValueError(f"duplicate process ids: {pids}")
        self.sim = sim or Simulator()
        self.network = Network(
            self.sim,
            delay_model=delay_model or SynchronousDelay(),
            interceptor=interceptor,
        )
        self.trace = TraceRecorder(self.network)
        self.processes: Dict[ProcessId, Process] = {}
        for proc in processes:
            self._add_process(proc)
        self._started = False

    # ------------------------------------------------------------------
    def _add_process(self, proc: Process) -> None:
        ctx = ProcessContext(proc.pid, self.sim, self.network)
        proc.attach(ctx)
        self.network.register(proc.pid, proc._dispatch)
        if hasattr(proc, "decision_hook"):
            proc.decision_hook = (
                lambda value, pid=proc.pid: self.trace.record_decision(
                    pid, value, self.sim.now
                )
            )
        self.processes[proc.pid] = proc

    # ------------------------------------------------------------------
    @property
    def pids(self) -> Tuple[ProcessId, ...]:
        return tuple(sorted(self.processes))

    def process(self, pid: ProcessId) -> Process:
        return self.processes[pid]

    def start(self) -> None:
        """Schedule every process's ``on_start`` at time 0."""
        if self._started:
            raise RuntimeError("cluster already started")
        self._started = True
        for pid in self.pids:
            proc = self.processes[pid]
            self.sim.schedule_at(self.sim.now, proc._start, label=f"start {pid}")

    # ------------------------------------------------------------------
    def run(self, until: float) -> None:
        if not self._started:
            self.start()
        self.sim.run(until=until)

    def run_until_decided(
        self,
        correct_pids: Optional[Iterable[ProcessId]] = None,
        timeout: float = 10_000.0,
        max_events: int = 5_000_000,
    ) -> ClusterResult:
        """Run until every process in ``correct_pids`` has decided.

        Returns a :class:`ClusterResult`; if the timeout elapses first, the
        result has ``decided=False``.  Agreement among the given processes
        is always checked (raising
        :class:`~repro.sim.trace.ConsistencyViolation` on disagreement).
        """
        pids = tuple(correct_pids) if correct_pids is not None else self.pids
        if not self._started:
            self.start()
        from .events import SimulationTimeout

        try:
            decision_time = self.sim.run_until(
                lambda: self.trace.all_decided(pids),
                timeout=timeout,
                max_events=max_events,
            )
            decided = True
        except SimulationTimeout:
            decided = False
            decision_time = None
        value = self.trace.check_agreement(pids)
        if decided:
            decision_time = self.trace.latest_decision_time(pids)
        return ClusterResult(self, decided, value, decision_time)
