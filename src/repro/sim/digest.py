"""Deterministic trace digests: the fast path's safety net.

The simulation core is allowed to get faster, never different: every
optimization must leave the executions the paper reasons about
byte-for-byte identical.  :func:`trace_digest` condenses a finished run —
every send (endpoints, payload type, structural size, send and delivery
times), every decision, and the final event-loop counters — into one
SHA-256 hex digest.  Two runs of the same scenario must produce the same
digest; the golden digests recorded against the pre-optimization core
(``tests/golden/scenario_digests.json``) pin the fast path to the slow
path's executions forever.

The digest deliberately hashes payload *type names and structural sizes*
rather than ``repr`` of payloads: reprs of sets and frozensets depend on
``PYTHONHASHSEED`` across interpreter processes, while type names, sizes
and times are stable everywhere.  Decision values are hashed via ``repr``
— decided values in this codebase are strings, tuples and ``Batch``
dataclasses, all with order-stable reprs.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING

from .network import payload_size

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from .events import Simulator
    from .network import NetworkStats
    from .trace import TraceRecorder

__all__ = ["trace_digest", "cluster_digest"]


def trace_digest(
    trace: "TraceRecorder", sim: "Simulator", stats: "NetworkStats"
) -> str:
    """SHA-256 digest of a run's observable behaviour.

    Covers, in order: every recorded send, every decision, and the final
    ``(events_processed, now, messages_delivered)`` counters.  Any
    reordering of event execution perturbs at least one of these (a
    reordered delivery changes the sends its handler performs, or the
    decision times, or the event count), so equal digests mean equal
    executions for everything the analysis layer measures.
    """
    h = hashlib.sha256()
    update = h.update
    for env in trace.sends:
        update(
            (
                f"s|{env.src}|{env.dst}|{type(env.payload).__name__}"
                f"|{payload_size(env.payload)}"
                f"|{env.send_time!r}|{env.deliver_time!r}\n"
            ).encode()
        )
    for decision in trace.decisions:
        update(
            f"d|{decision.pid}|{decision.value!r}|{decision.time!r}\n".encode()
        )
    update(
        (
            f"e|{sim.events_processed}|{sim.now!r}"
            f"|{stats.messages_sent}|{stats.messages_delivered}\n"
        ).encode()
    )
    return h.hexdigest()


def cluster_digest(cluster) -> str:
    """Digest of a finished :class:`~repro.sim.runner.Cluster` run."""
    return trace_digest(cluster.trace, cluster.sim, cluster.network.stats)
