"""Deterministic discrete-event simulation core.

Everything in this reproduction runs on top of a single-threaded,
deterministic event loop.  The paper's arguments are phrased entirely in
terms of *when* messages are delivered (multiples of the synchrony bound
``DELTA`` after GST), so a discrete-event simulator reproduces the
executions the paper reasons about exactly, with none of the
non-determinism of a real network or of ``asyncio``.

The central object is :class:`Simulator`: a clock plus a priority queue of
timestamped callbacks.  Ties are broken by a monotonically increasing
sequence number, so two runs with the same inputs produce the same event
order, byte for byte.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

__all__ = [
    "Event",
    "EventHandle",
    "Simulator",
    "SimulationError",
    "SimulationTimeout",
]


class SimulationError(Exception):
    """Base class for errors raised by the simulation core."""


class SimulationTimeout(SimulationError):
    """Raised by :meth:`Simulator.run_until` when the predicate never holds."""


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events order by ``(time, seq)``; the sequence number makes the order of
    same-time events deterministic (FIFO in scheduling order).
    """

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`, used to cancel events."""

    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """Absolute simulation time at which the event fires."""
        return self._event.time

    @property
    def label(self) -> str:
        return self._event.label

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self._event.cancelled = True


class Simulator:
    """A deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(2.0, lambda: fired.append(sim.now))
    >>> _ = sim.schedule(1.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.0, 2.0]
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._running = False

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (useful as a cost metric)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return sum(1 for e in self._queue if not e.cancelled)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: delay={delay}")
        return self.schedule_at(self._now + delay, callback, label)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` to run at absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past: time={time} < now={self._now}"
            )
        event = Event(time=time, seq=next(self._seq), callback=callback, label=label)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Execute the single next event.

        Returns ``True`` if an event was executed, ``False`` if the queue
        was empty.  Cancelled events are skipped silently.
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_processed += 1
            event.callback()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events in order.

        ``until`` bounds simulation time (events scheduled strictly after it
        are left in the queue and the clock is advanced to ``until``).
        ``max_events`` bounds the number of events executed — a guard
        against runaway protocols in tests.
        """
        executed = 0
        while self._queue:
            event = self._queue[0]
            if event.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and event.time > until:
                self._now = max(self._now, until)
                return
            if max_events is not None and executed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events} at time {self._now}"
                )
            heapq.heappop(self._queue)
            self._now = event.time
            self._events_processed += 1
            executed += 1
            event.callback()
        if until is not None:
            self._now = max(self._now, until)

    def run_until(
        self,
        predicate: Callable[[], bool],
        timeout: float = 1_000_000.0,
        max_events: int = 10_000_000,
    ) -> float:
        """Run until ``predicate()`` becomes true; return the time it did.

        Raises :class:`SimulationTimeout` if the event queue drains or the
        simulated ``timeout`` passes without the predicate holding.
        """
        executed = 0
        if predicate():
            return self._now
        while self._queue:
            event = self._queue[0]
            if event.cancelled:
                heapq.heappop(self._queue)
                continue
            if event.time > timeout:
                break
            if executed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events} at time {self._now}"
                )
            heapq.heappop(self._queue)
            self._now = event.time
            self._events_processed += 1
            executed += 1
            event.callback()
            if predicate():
                return self._now
        raise SimulationTimeout(
            f"predicate not satisfied by time {min(self._now, timeout)} "
            f"({executed} events executed)"
        )


def run_simulation(setup: Callable[[Simulator], Any], until: float) -> Any:
    """Convenience helper: build a simulation, run it, return setup's result."""
    sim = Simulator()
    result = setup(sim)
    sim.run(until=until)
    return result
