"""Deterministic discrete-event simulation core.

Everything in this reproduction runs on top of a single-threaded,
deterministic event loop.  The paper's arguments are phrased entirely in
terms of *when* messages are delivered (multiples of the synchrony bound
``DELTA`` after GST), so a discrete-event simulator reproduces the
executions the paper reasons about exactly, with none of the
non-determinism of a real network or of ``asyncio``.

The central object is :class:`Simulator`: a clock plus a priority queue of
timestamped callbacks.  Ties are broken by a monotonically increasing
sequence number, so two runs with the same inputs produce the same event
order, byte for byte.

The queue is the hottest data structure in the repository — every message
of every run passes through it — so its implementation lives in the
pluggable backend layer :mod:`repro._core`, which provides two
byte-for-byte interchangeable cores selected at import time:

* the pure-Python reference (:mod:`repro._core.pure`): each queued event
  is a plain ``[time, seq, callback]`` list (lists compare element-wise
  in C), cancellation overwrites the callback slot with ``None`` in
  place, and the drain/run loops live behind small tight functions;
* the optional compiled extension (``repro._core._accel``,
  ``REPRO_ACCEL=0|1`` override): the same entries and the same order,
  with the heap, the drain loop and the bound checks in C.

Shared structural choices, whichever backend runs:

* :meth:`Simulator.post` schedules a bare callback with no handle and no
  label at all: the network's delivery hot path goes through it;
* handles (:class:`EventHandle`) are ``__slots__`` objects created only
  by :meth:`Simulator.schedule`/:meth:`Simulator.schedule_at`, and labels
  are kept lazily — a callable label is only rendered if someone reads
  ``handle.label``;
* cancelled entries are counted, and when they outnumber the live ones
  the queue is compacted in place (filter + ``heapify``), so mass timer
  churn (per-slot SMR timers arm and cancel thousands) cannot bloat every
  subsequent push.

None of this changes the execution order: events still fire in strict
``(time, seq)`` order, and the golden-trace digests in
``tests/golden/scenario_digests.json`` pin that down — for both backends.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Union

from .. import _core
from .._core import FIRED as _FIRED
from .._core import SimulationError, SimulationTimeout
from .._core import pure as _pure

__all__ = [
    "EventHandle",
    "PurePySimulator",
    "Simulator",
    "SimulationError",
    "SimulationTimeout",
]

#: A label is either a ready string or a zero-argument callable producing
#: one; callables are rendered only when the label is actually read.
Label = Union[str, Callable[[], str]]


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`, used to cancel events."""

    __slots__ = ("_entry", "_label", "_sim")

    def __init__(self, entry: List[Any], label: Label, sim: Any) -> None:
        self._entry = entry
        self._label = label
        self._sim = sim

    @property
    def time(self) -> float:
        """Absolute simulation time at which the event fires."""
        return self._entry[0]

    @property
    def label(self) -> str:
        label = self._label
        return label() if callable(label) else label

    @property
    def cancelled(self) -> bool:
        return self._entry[2] is None

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent; cancelling after
        the event already fired is a no-op."""
        entry = self._entry
        callback = entry[2]
        if callback is not None and callback is not _FIRED:
            entry[2] = None
            self._sim._note_cancel()


class PurePySimulator:
    """A deterministic discrete-event simulator (pure-Python backend).

    >>> sim = PurePySimulator()
    >>> fired = []
    >>> _ = sim.schedule(2.0, lambda: fired.append(sim.now))
    >>> _ = sim.schedule(1.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.0, 2.0]
    """

    #: Compaction only below this queue size is not worth the heapify.
    _COMPACT_MIN = 64

    def __init__(self) -> None:
        self._now: float = 0.0
        #: Heap of ``[time, seq, callback]`` lists; a ``None`` callback
        #: marks a cancelled entry awaiting pop or compaction.
        self._queue: List[List[Any]] = []
        self._seq = 0
        self._cancelled = 0
        self._events_processed = 0
        self._compactions = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (useful as a cost metric)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued.  O(1)."""
        return len(self._queue) - self._cancelled

    @property
    def queue_depth(self) -> int:
        """Raw queue length, cancelled tombstones included (introspection
        for the compaction tests and the profiling harness)."""
        return len(self._queue)

    @property
    def compactions(self) -> int:
        """How many times the queue has been compacted so far."""
        return self._compactions

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        label: Label = "",
    ) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: delay={delay}")
        return self.schedule_at(self._now + delay, callback, label)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        label: Label = "",
    ) -> EventHandle:
        """Schedule ``callback`` to run at absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past: time={time} < now={self._now}"
            )
        seq = self._seq
        self._seq = seq + 1
        entry = [time, seq, callback]
        heapq.heappush(self._queue, entry)
        return EventHandle(entry, label, self)

    def post(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule with no handle and no label: the delivery hot path.

        Identical ordering semantics to :meth:`schedule_at`; the only
        difference is that nothing is allocated beyond the queue entry, so
        the event cannot be cancelled or labelled afterwards.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past: time={time} < now={self._now}"
            )
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._queue, [time, seq, callback])

    # ------------------------------------------------------------------
    # Cancellation accounting / compaction
    # ------------------------------------------------------------------

    def _note_cancel(self) -> None:
        cancelled = self._cancelled + 1
        self._cancelled = cancelled
        if cancelled >= self._COMPACT_MIN and cancelled * 2 > len(self._queue):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify (see ``_core.pure.compact``)."""
        _pure.compact(self._queue)
        self._cancelled = 0
        self._compactions += 1

    # ------------------------------------------------------------------
    # Execution (delegated to the backend loop functions)
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Execute the single next event.

        Returns ``True`` if an event was executed, ``False`` if the queue
        was empty.  Cancelled events are skipped silently.
        """
        return _pure.step(self)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events in order.

        ``until`` bounds simulation time (events scheduled strictly after it
        are left in the queue and the clock is advanced to ``until``).
        ``max_events`` bounds the number of events executed — a guard
        against runaway protocols in tests.
        """
        if until is None and max_events is None:
            _pure.drain(self)
        else:
            _pure.run_bounded(self, until, max_events)

    def run_until(
        self,
        predicate: Callable[[], bool],
        timeout: float = 1_000_000.0,
        max_events: int = 10_000_000,
    ) -> float:
        """Run until ``predicate()`` becomes true; return the time it did.

        Raises :class:`SimulationTimeout` if the event queue drains or the
        simulated ``timeout`` passes without the predicate holding.
        """
        return _pure.run_pred(self, predicate, timeout, max_events)


if _core.HAVE_ACCEL:

    class AccelSimulator:
        """The same simulator, with the heap and the loops in C.

        Public surface and semantics are identical to
        :class:`PurePySimulator` — same entry representation (plain
        ``[time, seq, callback]`` lists, so :class:`EventHandle` works
        unchanged), same ``(time, seq)`` order, same exception types and
        messages.  The hot state (heap, sequence counter, clock,
        compaction accounting) lives in a ``repro._core._accel.SimCore``
        so the drain loop never re-enters the interpreter between
        callbacks.
        """

        _COMPACT_MIN = 64

        def __init__(self) -> None:
            core = _core.accel.SimCore(self._COMPACT_MIN)
            #: The C core; ``repro.sim.network`` detects this attribute
            #: and routes its fast-path sends through it.
            self._simcore = core
            # Bind the C methods as instance attributes: `sim.post(...)`
            # and handle cancellation reach C without a Python frame.
            self.post = core.post
            self._note_cancel = core.note_cancel

        # -- clock / introspection ---------------------------------------

        @property
        def now(self) -> float:
            return self._simcore.now

        @property
        def _now(self) -> float:
            # The network hot path reads `sim._now` directly; keep the
            # private spelling alive on the accel backend too.
            return self._simcore.now

        @property
        def events_processed(self) -> int:
            return self._simcore.events_processed

        @property
        def pending_events(self) -> int:
            return self._simcore.pending_events

        @property
        def queue_depth(self) -> int:
            return self._simcore.queue_depth

        @property
        def compactions(self) -> int:
            return self._simcore.compactions

        # -- scheduling ---------------------------------------------------

        def schedule(
            self,
            delay: float,
            callback: Callable[[], None],
            label: Label = "",
        ) -> EventHandle:
            if delay < 0:
                raise SimulationError(
                    f"cannot schedule in the past: delay={delay}"
                )
            core = self._simcore
            return EventHandle(core.push(core.now + delay, callback), label, self)

        def schedule_at(
            self,
            time: float,
            callback: Callable[[], None],
            label: Label = "",
        ) -> EventHandle:
            return EventHandle(self._simcore.push(time, callback), label, self)

        # -- execution ----------------------------------------------------

        def _compact(self) -> None:
            self._simcore.compact()

        def step(self) -> bool:
            return self._simcore.step()

        def run(
            self,
            until: Optional[float] = None,
            max_events: Optional[int] = None,
        ) -> None:
            if until is None and max_events is None:
                self._simcore.drain()
            else:
                self._simcore.run_bounded(until, max_events)

        def run_until(
            self,
            predicate: Callable[[], bool],
            timeout: float = 1_000_000.0,
            max_events: int = 10_000_000,
        ) -> float:
            return self._simcore.run_pred(predicate, timeout, max_events)

    __all__.append("AccelSimulator")


#: The repository-wide simulator implementation, selected at import time
#: by :mod:`repro._core` (``REPRO_ACCEL=0|1`` overrides auto-detection).
if _core.BACKEND == "accel":
    Simulator = AccelSimulator  # type: ignore[assignment]
else:
    Simulator = PurePySimulator  # type: ignore[assignment,misc]


def run_simulation(setup: Callable[[Simulator], Any], until: float) -> Any:
    """Convenience helper: build a simulation, run it, return setup's result."""
    sim = Simulator()
    result = setup(sim)
    sim.run(until=until)
    return result
