"""Deterministic discrete-event simulation core.

Everything in this reproduction runs on top of a single-threaded,
deterministic event loop.  The paper's arguments are phrased entirely in
terms of *when* messages are delivered (multiples of the synchrony bound
``DELTA`` after GST), so a discrete-event simulator reproduces the
executions the paper reasons about exactly, with none of the
non-determinism of a real network or of ``asyncio``.

The central object is :class:`Simulator`: a clock plus a priority queue of
timestamped callbacks.  Ties are broken by a monotonically increasing
sequence number, so two runs with the same inputs produce the same event
order, byte for byte.

The queue is the hottest data structure in the repository — every message
of every run passes through it — so its representation is chosen for
constant-factor speed, not beauty:

* each queued event is a plain ``[time, seq, callback]`` list.  Lists
  compare element-wise in C, so ``heappush``/``heappop`` never call back
  into Python-level comparison code (the ``seq`` tie-breaker is unique,
  so the callback element is never compared);
* cancellation overwrites the callback slot with ``None`` in place — no
  tombstone objects, no handle needed at dispatch time;
* :meth:`Simulator.post` schedules a bare callback with no handle and no
  label at all: the network's delivery hot path goes through it;
* handles (:class:`EventHandle`) are ``__slots__`` objects created only
  by :meth:`Simulator.schedule`/:meth:`Simulator.schedule_at`, and labels
  are kept lazily — a callable label is only rendered if someone reads
  ``handle.label``;
* cancelled entries are counted, and when they outnumber the live ones
  the queue is compacted in place (filter + ``heapify``), so mass timer
  churn (per-slot SMR timers arm and cancel thousands) cannot bloat every
  subsequent ``heappush``.

None of this changes the execution order: events still fire in strict
``(time, seq)`` order, and the golden-trace digests in
``tests/golden/scenario_digests.json`` pin that down.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Union

__all__ = [
    "EventHandle",
    "Simulator",
    "SimulationError",
    "SimulationTimeout",
]

#: A label is either a ready string or a zero-argument callable producing
#: one; callables are rendered only when the label is actually read.
Label = Union[str, Callable[[], str]]


class SimulationError(Exception):
    """Base class for errors raised by the simulation core."""


class SimulationTimeout(SimulationError):
    """Raised by :meth:`Simulator.run_until` when the predicate never holds."""


#: Stamped into an entry's callback slot once it has been executed, so a
#: late ``cancel()`` on a handle whose event already fired is a no-op
#: instead of corrupting the cancelled-entry accounting (the entry is no
#: longer in the queue, so it must not count toward compaction).
_FIRED: Any = object()


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`, used to cancel events."""

    __slots__ = ("_entry", "_label", "_sim")

    def __init__(self, entry: List[Any], label: Label, sim: "Simulator") -> None:
        self._entry = entry
        self._label = label
        self._sim = sim

    @property
    def time(self) -> float:
        """Absolute simulation time at which the event fires."""
        return self._entry[0]

    @property
    def label(self) -> str:
        label = self._label
        return label() if callable(label) else label

    @property
    def cancelled(self) -> bool:
        return self._entry[2] is None

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent; cancelling after
        the event already fired is a no-op."""
        entry = self._entry
        callback = entry[2]
        if callback is not None and callback is not _FIRED:
            entry[2] = None
            self._sim._note_cancel()


class Simulator:
    """A deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(2.0, lambda: fired.append(sim.now))
    >>> _ = sim.schedule(1.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.0, 2.0]
    """

    #: Compaction only below this queue size is not worth the heapify.
    _COMPACT_MIN = 64

    def __init__(self) -> None:
        self._now: float = 0.0
        #: Heap of ``[time, seq, callback]`` lists; a ``None`` callback
        #: marks a cancelled entry awaiting pop or compaction.
        self._queue: List[List[Any]] = []
        self._seq = 0
        self._cancelled = 0
        self._events_processed = 0
        self._compactions = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (useful as a cost metric)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued.  O(1)."""
        return len(self._queue) - self._cancelled

    @property
    def queue_depth(self) -> int:
        """Raw queue length, cancelled tombstones included (introspection
        for the compaction tests and the profiling harness)."""
        return len(self._queue)

    @property
    def compactions(self) -> int:
        """How many times the queue has been compacted so far."""
        return self._compactions

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        label: Label = "",
    ) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: delay={delay}")
        return self.schedule_at(self._now + delay, callback, label)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        label: Label = "",
    ) -> EventHandle:
        """Schedule ``callback`` to run at absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past: time={time} < now={self._now}"
            )
        seq = self._seq
        self._seq = seq + 1
        entry = [time, seq, callback]
        heapq.heappush(self._queue, entry)
        return EventHandle(entry, label, self)

    def post(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule with no handle and no label: the delivery hot path.

        Identical ordering semantics to :meth:`schedule_at`; the only
        difference is that nothing is allocated beyond the queue entry, so
        the event cannot be cancelled or labelled afterwards.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past: time={time} < now={self._now}"
            )
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._queue, [time, seq, callback])

    # ------------------------------------------------------------------
    # Cancellation accounting / compaction
    # ------------------------------------------------------------------

    def _note_cancel(self) -> None:
        cancelled = self._cancelled + 1
        self._cancelled = cancelled
        if cancelled >= self._COMPACT_MIN and cancelled * 2 > len(self._queue):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify.

        Heap order is a function of the ``(time, seq)`` keys only, so
        rebuilding the heap from the surviving entries cannot perturb the
        pop order — determinism is unaffected.  The rebuild is in place
        (slice assignment): the run loops hold a direct reference to the
        queue list, and a cancel from inside a callback must not strand
        them on a stale copy.
        """
        queue = self._queue
        queue[:] = [entry for entry in queue if entry[2] is not None]
        heapq.heapify(queue)
        self._cancelled = 0
        self._compactions += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Execute the single next event.

        Returns ``True`` if an event was executed, ``False`` if the queue
        was empty.  Cancelled events are skipped silently.
        """
        queue = self._queue
        while queue:
            entry = heapq.heappop(queue)
            callback = entry[2]
            if callback is None:
                self._cancelled -= 1
                continue
            entry[2] = _FIRED
            self._now = entry[0]
            self._events_processed += 1
            callback()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events in order.

        ``until`` bounds simulation time (events scheduled strictly after it
        are left in the queue and the clock is advanced to ``until``).
        ``max_events`` bounds the number of events executed — a guard
        against runaway protocols in tests.
        """
        queue = self._queue
        heappop = heapq.heappop
        if until is None and max_events is None:
            # Unbounded drain: the common case, with no per-event bound
            # checks and no peek-then-pop double touch.
            while queue:
                entry = heappop(queue)
                callback = entry[2]
                if callback is None:
                    self._cancelled -= 1
                    continue
                entry[2] = _FIRED
                self._now = entry[0]
                self._events_processed += 1
                callback()
            return
        executed = 0
        while queue:
            entry = queue[0]
            callback = entry[2]
            if callback is None:
                heappop(queue)
                self._cancelled -= 1
                continue
            time = entry[0]
            if until is not None and time > until:
                self._now = max(self._now, until)
                return
            if max_events is not None and executed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events} at time {self._now}"
                )
            heappop(queue)
            entry[2] = _FIRED
            self._now = time
            self._events_processed += 1
            executed += 1
            callback()
        if until is not None:
            self._now = max(self._now, until)

    def run_until(
        self,
        predicate: Callable[[], bool],
        timeout: float = 1_000_000.0,
        max_events: int = 10_000_000,
    ) -> float:
        """Run until ``predicate()`` becomes true; return the time it did.

        Raises :class:`SimulationTimeout` if the event queue drains or the
        simulated ``timeout`` passes without the predicate holding.
        """
        queue = self._queue
        heappop = heapq.heappop
        executed = 0
        if predicate():
            return self._now
        while queue:
            entry = queue[0]
            callback = entry[2]
            if callback is None:
                heappop(queue)
                self._cancelled -= 1
                continue
            time = entry[0]
            if time > timeout:
                break
            if executed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events} at time {self._now}"
                )
            heappop(queue)
            entry[2] = _FIRED
            self._now = time
            self._events_processed += 1
            executed += 1
            callback()
            if predicate():
                return self._now
        raise SimulationTimeout(
            f"predicate not satisfied by time {min(self._now, timeout)} "
            f"({executed} events executed)"
        )


def run_simulation(setup: Callable[[Simulator], Any], until: float) -> Any:
    """Convenience helper: build a simulation, run it, return setup's result."""
    sim = Simulator()
    result = setup(sim)
    sim.run(until=until)
    return result
