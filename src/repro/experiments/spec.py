"""Declarative experiment specifications.

An :class:`ExperimentSpec` names one of the paper's experiments (E1–E16):
its parameter grid, the driver that evaluates a single grid point, the
output schema (one column list per result section), and where in the
paper the regenerated numbers come from.  The registry
(:mod:`repro.experiments.registry`) holds one spec per experiment id; the
runner (:mod:`repro.experiments.runner`) shards a spec's grid over a
worker pool.

Grid points are plain dicts of JSON-safe values, so a task is fully
described by ``(experiment id, params)`` — that pair deterministically
derives the task's seed (:func:`derive_seed`) and its cache key
(:mod:`repro.experiments.store`), independent of execution order or
worker placement.  Drivers must therefore be pure functions of
``(params, seed)``: same inputs, same rows, in any process.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "ExperimentSpec",
    "TaskResult",
    "canonical_params",
    "derive_seed",
    "grid",
    "jsonify",
    "points",
]


def jsonify(value: Any) -> Any:
    """Normalize a value to what a JSON round-trip would produce.

    Drivers run in worker processes and their rows travel through the
    result store as JSON; normalizing *every* row the same way (tuples
    become lists, dict keys become strings) guarantees that fresh,
    parallel and cache-served results compare equal cell for cell.
    """
    if isinstance(value, (list, tuple)):
        return [jsonify(v) for v in value]
    if isinstance(value, dict):
        return {str(k): jsonify(v) for k, v in value.items()}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (set, frozenset)):
        return sorted(jsonify(v) for v in value)
    return repr(value)


def canonical_params(params: Mapping[str, Any]) -> str:
    """Stable text form of a grid point (sorted keys, JSON values)."""
    return json.dumps(jsonify(dict(params)), sort_keys=True, separators=(",", ":"))


def derive_seed(experiment_id: str, params: Mapping[str, Any]) -> int:
    """Deterministic per-task seed from ``(experiment id, params)``.

    Independent of task order, shard assignment and ``PYTHONHASHSEED``,
    so serial and parallel runs hand every driver the identical seed.
    """
    digest = hashlib.sha256(
        f"{experiment_id}|{canonical_params(params)}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big")


def grid(**axes: Sequence[Any]) -> List[Dict[str, Any]]:
    """Cartesian product of named axes as a list of grid-point dicts.

    >>> grid(f=(1, 2), scheme=("naive",))
    [{'f': 1, 'scheme': 'naive'}, {'f': 2, 'scheme': 'naive'}]
    """
    names = list(axes)
    return [
        dict(zip(names, values))
        for values in itertools.product(*(axes[name] for name in names))
    ]


def points(*pts: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """Explicit list of grid points (for irregular grids)."""
    return [dict(p) for p in pts]


@dataclass
class TaskResult:
    """What one grid point produced.

    ``rows`` is an ordered list of ``(section, row)`` pairs — most
    experiments emit a single ``"main"`` section, some emit several
    tables (e.g. E4's quorum sweep and splice table).  ``digest`` covers
    the deterministic part of the output; drivers whose rows contain
    wall-clock measurements pass an explicit digest over the stable
    cells only (see E13/E16), everything else defaults to a digest of
    the full rows.
    """

    rows: List[Tuple[str, List[Any]]]
    digest: str = ""

    def __post_init__(self) -> None:
        self.rows = [
            (str(section), jsonify(list(row))) for section, row in self.rows
        ]
        if not self.digest:
            self.digest = hashlib.sha256(
                json.dumps(self.rows, sort_keys=True).encode()
            ).hexdigest()

    def to_dict(self) -> Dict[str, Any]:
        return {"rows": self.rows, "digest": self.digest}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TaskResult":
        return cls(
            rows=[(section, row) for section, row in payload["rows"]],
            digest=payload["digest"],
        )


#: A driver evaluates one grid point: ``driver(params, seed) -> TaskResult``.
Driver = Callable[[Dict[str, Any], int], TaskResult]


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment: identity, grid, driver, output schema."""

    #: Stable id, e.g. ``"E1"`` (the EXPERIMENTS.md key).
    id: str
    #: Human name, e.g. ``"resilience"`` (CLI alias).
    name: str
    #: One-line description (list/describe output).
    title: str
    #: Where the regenerated numbers come from in the paper.
    paper_ref: str
    #: Evaluates a single grid point.  Must be a top-level function so
    #: worker processes can resolve it after re-importing the registry.
    driver: Driver
    #: The full parameter grid, one dict per task.
    grid: Tuple[Dict[str, Any], ...]
    #: Reduced grid for ``--quick`` runs (defaults to the full grid).
    quick_grid: Optional[Tuple[Dict[str, Any], ...]] = None
    #: Column headers per result section.
    columns: Mapping[str, Tuple[str, ...]] = field(default_factory=dict)
    #: Whether byte-identical re-runs may be served from the result
    #: store.  Wall-clock experiments (E16) must re-measure every time.
    cacheable: bool = True
    #: Whether the driver's digest is stable across runs (everything but
    #: pure wall-clock measurement is).
    deterministic: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "grid", tuple(dict(p) for p in self.grid))
        if self.quick_grid is not None:
            object.__setattr__(
                self, "quick_grid", tuple(dict(p) for p in self.quick_grid)
            )
        object.__setattr__(
            self,
            "columns",
            {str(k): tuple(v) for k, v in dict(self.columns).items()},
        )

    def grid_for(self, quick: bool) -> Tuple[Dict[str, Any], ...]:
        if quick and self.quick_grid is not None:
            return self.quick_grid
        return self.grid

    def describe(self) -> Dict[str, Any]:
        """JSON-safe summary (the ``describe`` CLI verb)."""
        return {
            "id": self.id,
            "name": self.name,
            "title": self.title,
            "paper_ref": self.paper_ref,
            "grid_points": len(self.grid),
            "quick_points": len(self.grid_for(quick=True)),
            "sections": {k: list(v) for k, v in self.columns.items()},
            "cacheable": self.cacheable,
            "deterministic": self.deterministic,
            "repro": f"python -m repro.experiments run {self.id}",
        }
