"""The result store: content-hash task caching + versioned JSON artifacts.

**Caching.**  A task's cache key is ``sha256(experiment id | canonical
params | code version)`` where the code version fingerprints every
``src/repro/**/*.py`` file.  Unchanged ``(spec, params, code)`` triples
are served from disk on re-run; touching any source file invalidates the
whole cache at once — coarse, but impossible to get wrong, and computing
it costs a few milliseconds per process.

**Artifacts.**  ``write_experiment_json`` extends the PR 3 ``BENCH_*``
trajectory format (:mod:`repro.analysis.profiling`) to schema version 2:
the same interpreter/platform envelope, plus an ``experiment`` block
(grid digest, task counts, code version) and per-section ``columns`` +
``rows``.  ``load_bench_json`` reads both versions.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Iterable, Optional

from ..analysis.profiling import write_bench_json
from .runner import ExperimentResult, Task
from .spec import TaskResult, canonical_params

__all__ = [
    "EXPERIMENT_SCHEMA_VERSION",
    "ResultStore",
    "aggregate_payload",
    "code_version",
    "write_experiment_json",
]

#: BENCH_*.json schema produced by experiment artifacts (v1 envelope + the
#: ``experiment`` block and sectioned results).
EXPERIMENT_SCHEMA_VERSION = 2

_CODE_VERSION_CACHE: Dict[str, str] = {}


def code_version(root: Optional[str] = None) -> str:
    """Fingerprint of the ``repro`` package sources (memoized per root)."""
    if root is None:
        root = str(Path(__file__).resolve().parents[1])
    cached = _CODE_VERSION_CACHE.get(root)
    if cached is not None:
        return cached
    h = hashlib.sha256()
    for path in sorted(Path(root).rglob("*.py")):
        h.update(str(path.relative_to(root)).encode())
        h.update(b"\0")
        h.update(path.read_bytes())
        h.update(b"\0")
    version = h.hexdigest()
    _CODE_VERSION_CACHE[root] = version
    return version


class ResultStore:
    """Content-addressed task results under one cache directory."""

    def __init__(
        self, directory: str, version: Optional[str] = None
    ) -> None:
        self.directory = Path(directory)
        self.version = version if version is not None else code_version()
        self.hits = 0
        self.misses = 0

    def key(self, task: Task) -> str:
        return hashlib.sha256(
            f"{task.experiment_id}|{canonical_params(task.params)}"
            f"|{self.version}".encode()
        ).hexdigest()

    def _path(self, task: Task) -> Path:
        return self.directory / task.experiment_id / f"{self.key(task)}.json"

    def load(self, task: Task) -> Optional[TaskResult]:
        path = self._path(task)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            result = TaskResult.from_dict(payload["result"])
        except (OSError, ValueError, KeyError, TypeError):
            # Unreadable or malformed entries (hand-edited, bit-rotted,
            # or from an incompatible layout) are plain misses: the task
            # re-runs and overwrites them — the cache self-heals.
            self.misses += 1
            return None
        self.hits += 1
        return result

    def save(self, task: Task, result: TaskResult) -> None:
        path = self._path(task)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(
            json.dumps(
                {
                    "experiment": task.experiment_id,
                    "params": dict(task.params),
                    "seed": task.seed,
                    "code_version": self.version,
                    "result": result.to_dict(),
                },
                indent=2,
                sort_keys=True,
            )
            + "\n",
            encoding="utf-8",
        )
        os.replace(tmp, path)


def write_experiment_json(
    path: str, result: ExperimentResult, extra_meta: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """One ``BENCH_<id>_<name>.json`` artifact for a finished grid run."""
    payload = result.to_payload()
    meta = {"source": "repro.experiments run", "code_version": code_version()}
    if extra_meta:
        meta.update(extra_meta)
    return write_bench_json(
        path,
        f"{result.spec.id}_{result.spec.name}",
        results=payload["sections"],
        meta=meta,
        schema_version=EXPERIMENT_SCHEMA_VERSION,
        extra={
            "experiment": {
                key: payload[key]
                for key in (
                    "id", "name", "title", "paper_ref", "quick", "parallel",
                    "deterministic", "tasks_total", "tasks_cached",
                    "wall_seconds", "compute_seconds", "grid_digest",
                )
            }
        },
    )


def aggregate_payload(results: Iterable[ExperimentResult]) -> Dict[str, Any]:
    """The cross-experiment aggregate (``BENCH_experiments.json`` body)."""
    payloads = [result.to_payload() for result in results]
    h = hashlib.sha256()
    for payload in payloads:
        h.update(payload["id"].encode())
        h.update(payload["grid_digest"].encode())
    return {
        "experiments": payloads,
        "combined_digest": h.hexdigest(),
        "code_version": code_version(),
    }
