"""Serial and parallel sharded execution of experiment grids.

A grid expands into :class:`Task` objects — ``(experiment id, index,
params, derived seed)`` — that are independent units of work.  The
parallel path fans tasks from *all* requested experiments out over one
``multiprocessing`` pool (a single pool amortizes worker start-up across
experiments); results are re-assembled **in grid order**, so the
aggregated rows and the grid digest are byte-identical to a serial run.
That equality is not best-effort: every task's seed and cache key derive
only from ``(experiment id, params)``, every row is JSON-normalized the
moment it is produced, and the per-grid digest chains the per-task
digests in grid order (``--verify-serial`` and the tests enforce it).

Tasks that hit the result store (same experiment, params and code
version — :mod:`repro.experiments.store`) are served from cache without
touching the pool.
"""

from __future__ import annotations

import hashlib
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .registry import get_experiment
from .spec import ExperimentSpec, TaskResult, derive_seed

__all__ = [
    "ExperimentError",
    "ExperimentResult",
    "Task",
    "expand_tasks",
    "matches_filters",
    "run_experiment",
    "run_experiments",
]


class ExperimentError(RuntimeError):
    """A driver failed; carries the experiment id and grid point."""


#: Specs of the currently-running batch, including *unregistered*
#: out-of-tree specs (see ``examples/experiment_grid.py``).  Fork-started
#: workers inherit this mapping, so custom specs shard like registered
#: ones; spawn-started workers fall back to the registry lookup.
_ACTIVE_SPECS: Dict[str, ExperimentSpec] = {}


def _resolve_spec(experiment_id: str) -> ExperimentSpec:
    spec = _ACTIVE_SPECS.get(experiment_id)
    return spec if spec is not None else get_experiment(experiment_id)


@dataclass(frozen=True)
class Task:
    """One grid point of one experiment, ready to execute anywhere."""

    experiment_id: str
    index: int
    params: Mapping[str, Any]
    seed: int

    @classmethod
    def for_point(
        cls, spec: ExperimentSpec, index: int, params: Mapping[str, Any]
    ) -> "Task":
        return cls(
            experiment_id=spec.id,
            index=index,
            params=dict(params),
            seed=derive_seed(spec.id, params),
        )


def matches_filters(
    params: Mapping[str, Any], filters: Mapping[str, str]
) -> bool:
    """``--filter key=value`` semantics: every filter key must be present
    in the grid point and stringify to the given value."""
    return all(
        key in params and str(params[key]) == value
        for key, value in filters.items()
    )


def expand_tasks(
    spec: ExperimentSpec,
    quick: bool = False,
    filters: Optional[Mapping[str, str]] = None,
) -> List[Task]:
    """The spec's (possibly filtered) grid as ordered tasks."""
    tasks = []
    for index, params in enumerate(spec.grid_for(quick)):
        if filters and not matches_filters(params, filters):
            continue
        tasks.append(Task.for_point(spec, index, params))
    return tasks


def execute_task(task: Task) -> TaskResult:
    """Run one task in this process (used by workers and the serial path)."""
    spec = _resolve_spec(task.experiment_id)
    return spec.driver(dict(task.params), task.seed)


def _pool_worker(payload):
    """Top-level worker entry (picklable): re-derive the task, run it.

    ``spec`` is ``None`` for registered experiments (the worker resolves
    them through the registry) and the pickled spec itself for
    out-of-tree ones — spawn-started workers have an empty
    ``_ACTIVE_SPECS``, so unregistered specs must travel with the task.
    """
    spec, experiment_id, index, params, seed = payload
    if spec is not None:
        _ACTIVE_SPECS[experiment_id] = spec
    task = Task(experiment_id=experiment_id, index=index, params=params, seed=seed)
    try:
        start = time.perf_counter()
        result = execute_task(task)
        wall = time.perf_counter() - start
        return (experiment_id, index, result.to_dict(), wall, None)
    except Exception:  # noqa: BLE001 - report the real traceback to the parent
        return (experiment_id, index, None, 0.0, traceback.format_exc())


@dataclass
class ExperimentResult:
    """One experiment's aggregated grid run."""

    spec: ExperimentSpec
    quick: bool
    parallel: int
    tasks_total: int
    tasks_cached: int
    #: Wall clock of the whole ``run_experiments`` batch this result came
    #: from (experiments in a batch share one pool, so a per-experiment
    #: wall is not separable).
    wall_seconds: float
    #: Summed execution time of *this* experiment's tasks (cache hits
    #: contribute zero) — the per-experiment number worth trending.
    compute_seconds: float
    #: Rows per section, in grid order (the aggregation the old per-script
    #: sweep loops produced by hand).
    sections: Dict[str, List[List[Any]]]
    #: Per-task digests in grid order.
    task_digests: List[str] = field(default_factory=list)

    @property
    def grid_digest(self) -> str:
        """Chains the per-task digests in grid order: equal digests mean
        the sharded run reproduced the serial rows exactly."""
        h = hashlib.sha256()
        for digest in self.task_digests:
            h.update(digest.encode())
            h.update(b"\n")
        return h.hexdigest()

    def rows(self, section: str = "main") -> List[List[Any]]:
        return self.sections.get(section, [])

    def to_payload(self) -> Dict[str, Any]:
        """JSON-safe summary used by artifacts, ``diff`` and the tests."""
        return {
            "id": self.spec.id,
            "name": self.spec.name,
            "title": self.spec.title,
            "paper_ref": self.spec.paper_ref,
            "quick": self.quick,
            "parallel": self.parallel,
            "deterministic": self.spec.deterministic,
            "tasks_total": self.tasks_total,
            "tasks_cached": self.tasks_cached,
            "wall_seconds": round(self.wall_seconds, 4),
            "compute_seconds": round(self.compute_seconds, 4),
            "grid_digest": self.grid_digest,
            "sections": {
                name: {
                    "columns": list(self.spec.columns.get(name, ())),
                    "rows": rows,
                }
                for name, rows in self.sections.items()
            },
        }


def _assemble(
    spec: ExperimentSpec,
    tasks: Sequence[Task],
    outcomes: Mapping[int, TaskResult],
    cached: int,
    quick: bool,
    parallel: int,
    wall: float,
    compute: float,
) -> ExperimentResult:
    sections: Dict[str, List[List[Any]]] = {name: [] for name in spec.columns}
    digests: List[str] = []
    for task in tasks:  # grid order — identical for serial and parallel
        result = outcomes[task.index]
        for section, row in result.rows:
            sections.setdefault(section, []).append(row)
        digests.append(result.digest)
    return ExperimentResult(
        spec=spec,
        quick=quick,
        parallel=parallel,
        tasks_total=len(tasks),
        tasks_cached=cached,
        wall_seconds=wall,
        compute_seconds=compute,
        sections=sections,
        task_digests=digests,
    )


def run_experiments(
    specs: Sequence[ExperimentSpec],
    parallel: int = 1,
    quick: bool = False,
    filters: Optional[Mapping[str, str]] = None,
    store=None,
    force: bool = False,
) -> List[ExperimentResult]:
    """Run several experiments' grids, sharing one worker pool.

    ``store`` is a :class:`repro.experiments.store.ResultStore` (or None
    to disable caching); ``force`` re-runs cached tasks.  Returns one
    :class:`ExperimentResult` per spec, in the order given.
    """
    start = time.perf_counter()
    _ACTIVE_SPECS.update({spec.id: spec for spec in specs})
    per_spec: List[Tuple[ExperimentSpec, List[Task]]] = [
        (spec, expand_tasks(spec, quick=quick, filters=filters))
        for spec in specs
    ]

    outcomes: Dict[Tuple[str, int], TaskResult] = {}
    cached_counts: Dict[str, int] = {spec.id: 0 for spec, _ in per_spec}
    pending: List[Task] = []
    for spec, tasks in per_spec:
        for task in tasks:
            hit = None
            if store is not None and spec.cacheable and not force:
                hit = store.load(task)
            if hit is not None:
                outcomes[(spec.id, task.index)] = hit
                cached_counts[spec.id] += 1
            else:
                pending.append(task)

    task_walls: Dict[Tuple[str, int], float] = {}
    if parallel > 1 and len(pending) > 1:
        _run_pool(pending, parallel, outcomes, task_walls)
    else:
        for task in pending:
            task_start = time.perf_counter()
            outcomes[(task.experiment_id, task.index)] = execute_task(task)
            task_walls[(task.experiment_id, task.index)] = (
                time.perf_counter() - task_start
            )

    if store is not None:
        by_id = {spec.id: spec for spec, _ in per_spec}
        for task in pending:
            if by_id[task.experiment_id].cacheable:
                store.save(task, outcomes[(task.experiment_id, task.index)])

    wall = time.perf_counter() - start
    results = []
    for spec, tasks in per_spec:
        spec_outcomes = {
            task.index: outcomes[(spec.id, task.index)] for task in tasks
        }
        compute = sum(
            task_walls.get((spec.id, task.index), 0.0) for task in tasks
        )
        results.append(
            _assemble(
                spec, tasks, spec_outcomes, cached_counts[spec.id],
                quick, parallel, wall, compute,
            )
        )
    return results


def _is_registered(spec_id: str) -> bool:
    try:
        get_experiment(spec_id)
    except KeyError:
        return False
    return True


def _run_pool(
    pending: Sequence[Task],
    parallel: int,
    outcomes: Dict[Tuple[str, int], TaskResult],
    task_walls: Dict[Tuple[str, int], float],
) -> None:
    import multiprocessing

    # Prefer fork (Linux): workers inherit the imported registry and start
    # in milliseconds.  Spawn works too — registered specs resolve through
    # the re-imported catalog, unregistered ones ride along in the payload.
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context(
        "fork" if "fork" in methods else None
    )
    payloads = [
        (
            None
            if _is_registered(task.experiment_id)
            else _ACTIVE_SPECS[task.experiment_id],
            task.experiment_id,
            task.index,
            dict(task.params),
            task.seed,
        )
        for task in pending
    ]
    with context.Pool(processes=parallel) as pool:
        for exp_id, index, payload, wall, error in pool.imap_unordered(
            _pool_worker, payloads, chunksize=1
        ):
            if error is not None:
                pool.terminate()
                raise ExperimentError(
                    f"{exp_id} task {index} failed in worker:\n{error}"
                )
            outcomes[(exp_id, index)] = TaskResult.from_dict(payload)
            task_walls[(exp_id, index)] = wall


def run_experiment(
    spec_or_id,
    parallel: int = 1,
    quick: bool = False,
    filters: Optional[Mapping[str, str]] = None,
    store=None,
    force: bool = False,
) -> ExperimentResult:
    """Run a single experiment's grid (see :func:`run_experiments`)."""
    spec = (
        spec_or_id
        if isinstance(spec_or_id, ExperimentSpec)
        else get_experiment(spec_or_id)
    )
    return run_experiments(
        [spec], parallel=parallel, quick=quick, filters=filters,
        store=store, force=force,
    )[0]
