"""The experiment registry: one :class:`ExperimentSpec` per paper experiment.

Specs register at import time via :func:`register`; the canonical E1–E16
entries live in :mod:`repro.experiments.catalog`, which this module loads
lazily so worker processes resolve drivers by experiment id after a bare
``import repro.experiments.registry``.
"""

from __future__ import annotations

from typing import Dict, List

from .spec import ExperimentSpec

__all__ = ["register", "get_experiment", "all_experiments", "experiment_ids"]

_REGISTRY: Dict[str, ExperimentSpec] = {}
_ALIASES: Dict[str, str] = {}
_CATALOG_LOADED = False

#: Names the pre-framework CLI/EXPERIMENTS mapping exposed that no longer
#: match a registry entry's canonical name; kept resolvable forever.
_LEGACY_ALIASES = {
    "quorums": "E4",  # the old quorum-sweep verb (now E4's quorums section)
    "profile": "E16",  # the old events/sec snapshot verb
}


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Add a spec to the registry (id and name must be unused)."""
    key = spec.id.upper()
    if key in _REGISTRY:
        raise ValueError(f"experiment id {spec.id!r} already registered")
    alias = spec.name.lower()
    if alias in _ALIASES:
        raise ValueError(f"experiment name {spec.name!r} already registered")
    _REGISTRY[key] = spec
    _ALIASES[alias] = key
    return spec


def _load_catalog() -> None:
    global _CATALOG_LOADED
    if not _CATALOG_LOADED:
        _CATALOG_LOADED = True
        from . import catalog  # noqa: F401  (registers E1–E16 on import)


def get_experiment(id_or_name: str) -> ExperimentSpec:
    """Look up a spec by id (``E1``, case-insensitive) or name."""
    _load_catalog()
    key = id_or_name.upper()
    if key in _REGISTRY:
        return _REGISTRY[key]
    alias = id_or_name.lower()
    if alias in _ALIASES:
        return _REGISTRY[_ALIASES[alias]]
    if alias in _LEGACY_ALIASES:
        return _REGISTRY[_LEGACY_ALIASES[alias]]
    known = ", ".join(
        f"{spec.id}/{spec.name}" for spec in all_experiments()
    )
    raise KeyError(f"unknown experiment {id_or_name!r}; known: {known}")


def all_experiments() -> List[ExperimentSpec]:
    """Every registered spec, ordered by numeric experiment id."""
    _load_catalog()

    def sort_key(spec: ExperimentSpec):
        tail = spec.id[1:]
        return (int(tail) if tail.isdigit() else 10_000, spec.id)

    return sorted(_REGISTRY.values(), key=sort_key)


def experiment_ids() -> List[str]:
    return [spec.id for spec in all_experiments()]
