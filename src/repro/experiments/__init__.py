"""The experiment framework: registry, sharded runner, result store, CLI.

Every paper experiment (E1–E16, see EXPERIMENTS.md) is a declarative
:class:`ExperimentSpec` — a parameter grid plus a driver evaluating one
grid point — registered under a stable id.  The runner shards grids over
a ``multiprocessing`` pool with deterministic per-task seeds; results
are byte-identical to serial execution (grid digests enforce it), cached
by ``(experiment, params, code version)`` content hash, and written as
versioned ``BENCH_*.json`` artifacts.

Quick tour::

    from repro.experiments import get_experiment, run_experiment

    result = run_experiment("E13", parallel=4, quick=True)
    result.rows("scale")          # aggregated rows, grid order
    result.grid_digest            # equal for serial and parallel runs

    python -m repro.experiments run E13 E15 --parallel 8 --json out/

Adding an experiment is a ~30-line registry entry in
:mod:`repro.experiments.catalog` (or out of tree — see
``examples/experiment_grid.py``); the ``benchmarks/bench_e*.py`` scripts
are thin pytest wrappers over these entries via :func:`run_sections`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .registry import all_experiments, experiment_ids, get_experiment, register
from .runner import (
    ExperimentError,
    ExperimentResult,
    Task,
    expand_tasks,
    run_experiment,
    run_experiments,
)
from .spec import (
    ExperimentSpec,
    TaskResult,
    canonical_params,
    derive_seed,
    grid,
    points,
)
from .store import ResultStore, code_version, write_experiment_json
from .cli import main

__all__ = [
    "EXPERIMENTS",
    "ExperimentError",
    "ExperimentResult",
    "ExperimentSpec",
    "ResultStore",
    "Task",
    "TaskResult",
    "all_experiments",
    "canonical_params",
    "code_version",
    "derive_seed",
    "expand_tasks",
    "experiment_ids",
    "get_experiment",
    "grid",
    "main",
    "points",
    "register",
    "run_experiment",
    "run_experiments",
    "run_sections",
    "write_experiment_json",
]


def run_sections(
    id_or_name: str,
    quick: bool = False,
    parallel: int = 1,
    filters: Optional[Dict[str, str]] = None,
) -> Dict[str, List[List[object]]]:
    """Run one experiment and return its aggregated rows per section.

    The benchmark wrappers' entry point: no cache (measurements stay
    fresh), serial by default, rows in grid order.
    """
    result = run_experiment(
        id_or_name, parallel=parallel, quick=quick, filters=filters
    )
    return result.sections


class _LegacyExperiments(dict):
    """Backward-compatible ``EXPERIMENTS`` mapping (name -> callable
    returning a formatted table), now backed by the registry."""

    def __missing__(self, name: str):
        from .registry import get_experiment as _get

        spec = _get(name)

        def run_formatted() -> str:
            from ..analysis.grids import format_experiment_payload

            result = run_experiment(spec, quick=True)
            return format_experiment_payload(result.to_payload())

        run_formatted.__doc__ = f"{spec.id}: {spec.title}"
        self[name] = run_formatted
        return run_formatted

    def __iter__(self):
        return iter([spec.name for spec in all_experiments()])

    def keys(self):  # pragma: no cover - dict-protocol completeness
        return [spec.name for spec in all_experiments()]

    def items(self):
        return [(spec.name, self[spec.name]) for spec in all_experiments()]


#: Legacy alias: ``EXPERIMENTS["resilience"]()`` still returns a printable
#: table, one entry per registered experiment.
EXPERIMENTS = _LegacyExperiments()
