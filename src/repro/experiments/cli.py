"""The experiment CLI.

Usage::

    python -m repro.experiments list
    python -m repro.experiments describe E1
    python -m repro.experiments run E13 E15 --parallel 8 --json out/ --filter f=2
    python -m repro.experiments run --all --quick --parallel 2 --verify-serial
    python -m repro.experiments diff out/BENCH_experiments.json other.json

``run`` executes registry grids (serially, or sharded over a
``multiprocessing`` pool with ``--parallel N``), prints one aligned
table per result section, caches task results by content hash
(``--no-cache`` / ``--force`` to skip / refresh), and with ``--json
DIR`` writes one schema-2 ``BENCH_<id>_<name>.json`` artifact per
experiment plus an aggregated ``BENCH_experiments.json``.

``--verify-serial`` re-runs every deterministic grid serially with the
cache disabled and compares grid digests against the first (possibly
parallel, possibly cached) run — the CI gate that sharding and caching
never change results.

Legacy spelling (``python -m repro.experiments resilience``) still
works: bare experiment names/ids are rewritten to ``run ...``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

from ..analysis.grids import compare_grid_payloads, format_experiment_payload
from ..analysis.profiling import load_bench_json
from ..analysis.report import format_table
from .registry import all_experiments, get_experiment
from .runner import ExperimentError, run_experiments
from .store import (
    ResultStore,
    aggregate_payload,
    write_experiment_json,
)

__all__ = ["main"]

#: Default on-disk task cache (next to the working directory, never
#: committed — see .gitignore).
DEFAULT_CACHE_DIR = ".experiments-cache"


def _parse_filters(pairs: List[str]) -> Dict[str, str]:
    filters: Dict[str, str] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--filter wants key=value, got {pair!r}")
        key, value = pair.split("=", 1)
        filters[key.strip()] = value.strip()
    return filters


def _cmd_list(_args: argparse.Namespace) -> int:
    rows = []
    for spec in all_experiments():
        rows.append(
            [
                spec.id,
                spec.name,
                len(spec.grid),
                len(spec.grid_for(quick=True)),
                ",".join(spec.columns),
                spec.title[:58],
            ]
        )
    print(
        format_table(
            ["id", "name", "points", "quick", "sections", "title"], rows
        )
    )
    return 0


def _lookup(name: str):
    try:
        return get_experiment(name)
    except KeyError as error:
        raise SystemExit(f"error: {error.args[0]}")


def _cmd_describe(args: argparse.Namespace) -> int:
    for name in args.experiments:
        spec = _lookup(name)
        info = spec.describe()
        print(f"{info['id']} ({info['name']}) — {info['title']}")
        print(f"  paper      : {info['paper_ref']}")
        print(
            f"  grid       : {info['grid_points']} points "
            f"({info['quick_points']} quick)"
        )
        for section, columns in info["sections"].items():
            print(f"  section    : {section}: {', '.join(columns)}")
        print(
            f"  caching    : {'content-hash cached' if info['cacheable'] else 'never cached (wall clock)'}"
        )
        print(f"  repro      : {info['repro']}")
        if args.grid:
            for index, params in enumerate(spec.grid):
                print(f"    [{index:>3}] {json.dumps(params, sort_keys=True)}")
        print()
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.all:
        specs = all_experiments()
    elif args.experiments:
        specs = [_lookup(name) for name in args.experiments]
    else:
        print("run: give experiment ids/names or --all (see 'list')",
              file=sys.stderr)
        return 2
    filters = _parse_filters(args.filter)
    store = None
    if not args.no_cache:
        store = ResultStore(args.cache)
    try:
        results = run_experiments(
            specs,
            parallel=args.parallel,
            quick=args.quick,
            filters=filters,
            store=store,
            force=args.force,
        )
    except ExperimentError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    exit_code = 0
    for result in results:
        print()
        print(format_experiment_payload(result.to_payload()))

    if args.verify_serial:
        deterministic = [r.spec for r in results if r.spec.deterministic]
        serial = run_experiments(
            deterministic,
            parallel=1,
            quick=args.quick,
            filters=filters,
            store=None,
        )
        comparison = compare_grid_payloads(
            [r.to_payload() for r in results if r.spec.deterministic],
            [r.to_payload() for r in serial],
        )
        print()
        print(f"serial-vs-parallel digest check: {comparison.summary()}")
        if not comparison.ok:
            exit_code = 1

    if args.json:
        out_dir = Path(args.json)
        out_dir.mkdir(parents=True, exist_ok=True)
        for result in results:
            path = out_dir / f"BENCH_{result.spec.id}_{result.spec.name}.json"
            write_experiment_json(str(path), result, extra_meta={
                "quick": args.quick, "parallel": args.parallel,
            })
        aggregate = aggregate_payload(results)
        aggregate_path = out_dir / "BENCH_experiments.json"
        aggregate_path.write_text(
            json.dumps(aggregate, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"\nwrote {len(results)} artifacts + {aggregate_path}")
    return exit_code


def _load_payloads(path: str) -> List[dict]:
    """Accept a schema-2 artifact or an aggregated BENCH_experiments.json."""
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    if "experiments" in payload:  # aggregate
        return list(payload["experiments"])
    return [load_bench_json(path)]


def _cmd_diff(args: argparse.Namespace) -> int:
    comparison = compare_grid_payloads(
        _load_payloads(args.left), _load_payloads(args.right)
    )
    print(comparison.summary())
    return 0 if comparison.ok else 1


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered experiments")

    describe = sub.add_parser("describe", help="show a spec in detail")
    describe.add_argument("experiments", nargs="+", metavar="EXPERIMENT")
    describe.add_argument(
        "--grid", action="store_true", help="also print every grid point"
    )

    run = sub.add_parser("run", help="run experiment grids")
    run.add_argument("experiments", nargs="*", metavar="EXPERIMENT",
                     help="ids (E13) or names (scalability)")
    run.add_argument("--all", action="store_true",
                     help="run every registered experiment")
    run.add_argument("--quick", action="store_true",
                     help="use the reduced quick grids")
    run.add_argument("--parallel", type=int, default=1, metavar="N",
                     help="shard grids over N worker processes")
    run.add_argument("--filter", action="append", default=[],
                     metavar="KEY=VALUE",
                     help="only grid points matching (repeatable)")
    run.add_argument("--json", metavar="DIR", default="",
                     help="write BENCH_*.json artifacts into DIR")
    run.add_argument("--cache", metavar="DIR", default=DEFAULT_CACHE_DIR,
                     help=f"task cache directory (default {DEFAULT_CACHE_DIR})")
    run.add_argument("--no-cache", action="store_true",
                     help="disable the task result cache")
    run.add_argument("--force", action="store_true",
                     help="re-run tasks even on cache hits")
    run.add_argument("--verify-serial", action="store_true",
                     help="re-run deterministic grids serially and gate on "
                          "digest equality")

    diff = sub.add_parser("diff", help="compare two experiment artifacts")
    diff.add_argument("left")
    diff.add_argument("right")

    return parser


def _rewrite_legacy(argv: List[str]) -> List[str]:
    """Map the pre-framework CLI onto subcommands.

    ``python -m repro.experiments`` ran everything, ``... resilience``
    ran one table, ``... --list`` listed names.
    """
    if not argv:
        return ["run", "--all"]
    if argv[0] in {"list", "describe", "run", "diff"}:
        return argv
    if argv[0] == "--list":
        return ["list"]
    try:
        get_experiment(argv[0])
    except KeyError:
        return argv
    return ["run"] + argv


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    parser = _build_parser()
    args = parser.parse_args(_rewrite_legacy(argv))
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "describe":
        return _cmd_describe(args)
    if args.command == "diff":
        return _cmd_diff(args)
    return _cmd_run(args)
