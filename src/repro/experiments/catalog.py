"""The canonical E1–E21 registry entries.

Every experiment from EXPERIMENTS.md is one :class:`ExperimentSpec`: a
parameter grid plus a driver that evaluates a *single* grid point.  The
drivers are top-level functions of ``(params, seed)`` — pure, picklable
by reference, and independent of task order — so the parallel runner can
shard any grid over worker processes and reproduce the serial rows
byte-for-byte.

The ``benchmarks/bench_e*.py`` scripts are thin pytest wrappers over
these entries: they call :func:`repro.experiments.run_sections` and
assert on the rows; all sweep loops live here, once.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from ..analysis import (
    PROTOCOLS,
    Stats,
    build_protocol,
    compare_campaigns,
    repeat_latency,
    run_catchup,
    run_common_case,
    run_monitor_tail,
    run_smr_throughput,
)
from ..analysis.profiling import (
    E16_FULL_PARAMS,
    E16_QUICK_PARAMS,
    E20_FULL_SIZES,
    E20_QUICK_SIZES,
    E21_FULL_SIZES,
    E21_QUICK_SIZES,
    broadcast_storm,
    cert_storm,
    crypto_verify_rate,
    event_churn,
    fuzz_seed_rate,
    recorder_sim_net,
    reference_sim_net,
    scenario_obs_rate,
    smr_wall_rate,
    timer_churn,
)
from ..baselines.fab import FaBConfig, FaBProcess
from ..baselines.optimistic import OptimisticConfig, OptimisticProcess
from ..baselines.pbft import PBFTConfig, PBFTProcess
from ..byzantine.behaviors import SilentProcess
from ..core.config import ProtocolConfig
from ..core.fastbft import FastBFTProcess
from ..core.generalized import GeneralizedFBFTProcess
from ..core.messages import Propose
from ..core.naive_certs import (
    certificate_distinct_signatures,
    certificate_signature_count,
)
from ..core.quorums import (
    min_processes_disjoint_roles,
    min_processes_fast_bft,
    quorum_report,
    selection_threshold,
)
from ..crypto.keys import KeyRegistry
from ..lowerbound import (
    check_t_two_step,
    find_influential_process,
    run_splice_attack,
)
from ..scenarios import SCENARIOS, run_fuzz
from ..scenarios.runner import run_scenarios
from ..sim.network import RandomDelay, RoundSynchronousDelay, SynchronousDelay
from ..sim.runner import Cluster
from ..sim.trace import message_delays
from ..smr import KVStore, SMRClient, SMRReplica, fbft_instance_factory
from .registry import register
from .spec import ExperimentSpec, TaskResult, grid, jsonify, points

# ---------------------------------------------------------------------------
# Shared builders
# ---------------------------------------------------------------------------


def _build_fbft(n: int, f: int, value: str = "value") -> List[Any]:
    config = ProtocolConfig(n=n, f=f)
    registry = KeyRegistry.for_processes(config.process_ids)
    return [
        FastBFTProcess(pid, config, registry, value)
        for pid in config.process_ids
    ]


# ---------------------------------------------------------------------------
# E1 — resilience table + minimum-deployment verification
# ---------------------------------------------------------------------------


def _e1_table_points(max_f: int) -> List[Dict[str, Any]]:
    # Dedup with a seen-set keyed on (f, t): the t axis collapses for
    # small f (t = 1 == f // 2 == f at f = 1) and must not emit twice.
    seen = set()
    pts = []
    for f in range(1, max_f + 1):
        for t in (1, max(1, f // 2), f):
            if t > f or (f, t) in seen:
                continue
            seen.add((f, t))
            pts.append({"section": "table", "f": f, "t": t})
    return pts


def _e1_deploy_points(max_f: int) -> List[Dict[str, Any]]:
    return [
        {"section": "deploy", "f": f, "protocol": key}
        for f in range(1, max_f + 1)
        for key in PROTOCOLS
    ]


def deployment_t(protocol: str, f: int) -> int:
    """The fast-threshold ``t`` a minimum deployment of ``protocol`` is
    exercised at: ``t = f`` for families that parameterize the fast path
    by ``t`` (ours, FaB), ``t = 1`` for those that do not (PBFT, Paxos,
    optimistic) — their deployments have no ``t`` knob and the sweep
    must not pretend they were sized for ``t = f``.
    """
    return f if PROTOCOLS[protocol].parameterized_by_t else 1


def e1_driver(params: Dict[str, Any], seed: int) -> TaskResult:
    if params["section"] == "table":
        f, t = params["f"], params["t"]
        row = [f, t] + [
            PROTOCOLS[key].min_n(f, t) for key in ("fbft", "fab", "pbft", "paxos")
        ]
        return TaskResult(rows=[("table", row)])
    key, f = params["protocol"], params["f"]
    spec = PROTOCOLS[key]
    t = deployment_t(key, f)
    result = run_common_case(build_protocol(key, f=f, t=t))
    return TaskResult(
        rows=[
            (
                "deploy",
                [spec.name, f, t, spec.min_n(f, t), result.delays, result.decided],
            )
        ]
    )


register(
    ExperimentSpec(
        id="E1",
        name="resilience",
        title="minimum processes per protocol family, with empirical checks",
        paper_ref="Section 1 / 3.4 (the headline comparison table)",
        driver=e1_driver,
        grid=_e1_table_points(8) + _e1_deploy_points(3),
        quick_grid=_e1_table_points(4) + _e1_deploy_points(2),
        columns={
            "table": ("f", "t", "FBFT (ours)", "FaB", "PBFT", "Paxos(crash)"),
            "deploy": ("protocol", "f", "t", "n", "delays", "decided"),
        },
    )
)


# ---------------------------------------------------------------------------
# E2 — fast path (Figure 1a)
# ---------------------------------------------------------------------------


def e2_driver(params: Dict[str, Any], seed: int) -> TaskResult:
    f = params["f"]
    n = min_processes_fast_bft(f, f)
    result = run_common_case(_build_fbft(n, f))
    return TaskResult(
        rows=[
            (
                "main",
                [
                    n,
                    f,
                    result.delays,
                    result.messages,
                    result.messages_by_type.get("Propose", 0),
                    result.messages_by_type.get("Ack", 0),
                ],
            )
        ]
    )


register(
    ExperimentSpec(
        id="E2",
        name="fast-path",
        title="two message delays in the common case, n proposes + n^2 acks",
        paper_ref="Figure 1a",
        driver=e2_driver,
        grid=grid(f=(1, 2, 3, 4)),
        quick_grid=grid(f=(1, 2)),
        columns={"main": ("n", "f", "delays", "msgs", "propose", "ack")},
    )
)


# ---------------------------------------------------------------------------
# E3 — view change (Figure 1b)
# ---------------------------------------------------------------------------


def e3_driver(params: Dict[str, Any], seed: int) -> TaskResult:
    n, f, crashes = params["n"], params["f"], params["crashes"]
    config = ProtocolConfig(n=n, f=f)
    registry = KeyRegistry.for_processes(config.process_ids)
    procs = [
        FastBFTProcess(pid, config, registry, f"v{pid}")
        for pid in config.process_ids
    ]
    cluster = Cluster(procs, delay_model=SynchronousDelay(1.0))
    for pid in range(crashes):
        procs[pid].crash()
    correct = list(range(crashes, n))
    result = cluster.run_until_decided(correct_pids=correct, timeout=2000)
    cert_sizes = [
        len(env.payload.cert.signatures)
        for env in cluster.trace.sends
        if isinstance(env.payload, Propose)
        and env.payload.view > 1
        and env.payload.cert is not None
    ]
    kinds = cluster.trace.messages_by_type()
    return TaskResult(
        rows=[
            (
                "main",
                [
                    n,
                    f,
                    crashes,
                    result.decided,
                    result.decision_time,
                    kinds.get("Vote", 0),
                    kinds.get("CertAck", 0),
                    max(cert_sizes) if cert_sizes else 0,
                    config.cert_quorum,
                ],
            )
        ]
    )


register(
    ExperimentSpec(
        id="E3",
        name="view-change",
        title="crash recovery with bounded (f+1) progress certificates",
        paper_ref="Figure 1b / Section 3.2",
        driver=e3_driver,
        grid=points(
            {"n": 4, "f": 1, "crashes": 1},
            {"n": 9, "f": 2, "crashes": 1},
            {"n": 9, "f": 2, "crashes": 2},
            {"n": 14, "f": 3, "crashes": 3},
        ),
        quick_grid=points(
            {"n": 4, "f": 1, "crashes": 1},
            {"n": 9, "f": 2, "crashes": 2},
        ),
        columns={
            "main": (
                "n", "f", "leader crashes", "decided", "time",
                "votes", "certacks", "cert size", "f+1",
            )
        },
    )
)


# ---------------------------------------------------------------------------
# E4 — the lower bound: quorum sweep + splice attack
# ---------------------------------------------------------------------------


def e4_driver(params: Dict[str, Any], seed: int) -> TaskResult:
    f, t = params["f"], params["t"]
    if params["section"] == "quorums":
        n = params["n"]
        report = quorum_report(n, f, t)
        return TaskResult(
            rows=[
                (
                    "quorums",
                    [
                        f, t, n,
                        "yes" if report.meets_bound else "NO",
                        report.qi1, report.qi2, report.qi3,
                        report.fast_vote_overlap, selection_threshold(f, t),
                    ],
                )
            ]
        )
    bound = min_processes_fast_bft(f, t)
    below = run_splice_attack(f=f, t=t, n=bound - 1)
    at = run_splice_attack(f=f, t=t, n=bound)
    return TaskResult(
        rows=[
            (
                "splice",
                [
                    f, t, bound - 1,
                    "DISAGREEMENT" if below.violated else "safe",
                    bound,
                    "DISAGREEMENT" if at.violated else "safe",
                ],
            )
        ]
    )


def _e4_quorum_points(pairs) -> List[Dict[str, Any]]:
    pts = []
    for f, t in pairs:
        bound = min_processes_fast_bft(f, t)
        for n in (bound - 1, bound, bound + 1):
            pts.append({"section": "quorums", "f": f, "t": t, "n": n})
    return pts


register(
    ExperimentSpec(
        id="E4",
        name="lower-bound",
        title="quorum properties flip at n = 3f + 2t - 1; splice attack below it",
        paper_ref="Figures 2-4, Theorem 4.5",
        driver=e4_driver,
        grid=_e4_quorum_points([(1, 1), (2, 1), (2, 2), (3, 2), (3, 3), (4, 4)])
        + [
            {"section": "splice", "f": f, "t": t}
            for f, t in [(2, 2), (3, 3), (3, 2), (2, 1)]
        ],
        quick_grid=_e4_quorum_points([(1, 1), (2, 2)])
        + [
            {"section": "splice", "f": f, "t": t}
            for f, t in [(2, 2), (2, 1)]
        ],
        columns={
            "quorums": (
                "f", "t", "n", "meets bound", "QI1", "QI2", "QI3",
                "fast∩votes correct", "need (f+t)",
            ),
            "splice": (
                "f", "t", "n=3f+2t-2", "outcome", "n=3f+2t-1", "outcome",
            ),
        },
    )
)


# ---------------------------------------------------------------------------
# E5 — the slow path (Figure 5)
# ---------------------------------------------------------------------------


def _run_with_silent_faults(n: int, f: int, t: int, faults: int) -> Dict[str, Any]:
    config = ProtocolConfig(n=n, f=f, t=t)
    registry = KeyRegistry.for_processes(config.process_ids)
    procs: List[Any] = []
    for pid in config.process_ids:
        if pid >= n - faults:
            procs.append(SilentProcess(pid))
        else:
            procs.append(GeneralizedFBFTProcess(pid, config, registry, "v"))
    cluster = Cluster(procs, delay_model=RoundSynchronousDelay(1.0))
    correct = list(range(n - faults))
    result = cluster.run_until_decided(correct_pids=correct, timeout=100)
    kinds = cluster.trace.messages_by_type()
    return {
        "delays": message_delays(result.decision_time, 1.0),
        "commits": kinds.get("Commit", 0),
    }


def e5_driver(params: Dict[str, Any], seed: int) -> TaskResult:
    n, f, t, faults = params["n"], params["f"], params["t"], params["faults"]
    r = _run_with_silent_faults(n, f, t, faults)
    path = "fast" if r["delays"] == 2 else "slow"
    return TaskResult(
        rows=[("main", [n, f, t, faults, r["delays"], path, r["commits"]])]
    )


def _e5_points(configs) -> List[Dict[str, Any]]:
    return [
        {"n": n, "f": f, "t": t, "faults": faults}
        for n, f, t in configs
        for faults in range(f + 1)
    ]


register(
    ExperimentSpec(
        id="E5",
        name="slow-path",
        title="2 delays with <= t faults, 3 delays between t+1 and f",
        paper_ref="Figure 5, Appendix A",
        driver=e5_driver,
        grid=_e5_points([(7, 2, 1), (12, 3, 2), (4, 1, 1)]),
        quick_grid=_e5_points([(7, 2, 1), (4, 1, 1)]),
        columns={
            "main": ("n", "f", "t", "faults", "delays", "path", "Commit msgs")
        },
    )
)


# ---------------------------------------------------------------------------
# E6 — common-case latency comparison
# ---------------------------------------------------------------------------


def e6_driver(params: Dict[str, Any], seed: int) -> TaskResult:
    runs = params["runs"]
    if params["section"] == "latency":
        key = params["protocol"]
        spec = PROTOCOLS[key]
        stats = repeat_latency(
            lambda: build_protocol(key, f=1),
            runs=runs,
            delay_model_factory=lambda run: RandomDelay(0.5, 1.5, seed=run),
        )
        delays = run_common_case(build_protocol(key, f=1)).delays
        return TaskResult(
            rows=[
                (
                    "latency",
                    [
                        spec.name, spec.min_n(1, 1), delays,
                        round(stats.mean, 3), round(stats.p50, 3),
                        round(stats.p95, 3),
                    ],
                )
            ]
        )
    f = params["f"]
    row = [f]
    for key in ("fbft", "pbft"):
        stats = repeat_latency(
            lambda key=key: build_protocol(key, f=f),
            runs=runs,
            delay_model_factory=lambda run: RandomDelay(0.5, 1.5, seed=run),
        )
        row.append(round(stats.mean, 3))
    return TaskResult(rows=[("scaling", row)])


def _e6_points(latency_runs: int, scaling_runs: int, scaling_fs) -> List[Dict[str, Any]]:
    pts = [
        {"section": "latency", "protocol": key, "runs": latency_runs}
        for key in ("fbft", "fab", "pbft", "paxos", "optimistic")
    ]
    pts += [
        {"section": "scaling", "f": f, "runs": scaling_runs} for f in scaling_fs
    ]
    return pts


register(
    ExperimentSpec(
        id="E6",
        name="latency",
        title="2-vs-3 hop latency gap under seeded random delays",
        paper_ref="Section 1 (the motivating comparison)",
        driver=e6_driver,
        grid=_e6_points(25, 10, (1, 2, 3)),
        quick_grid=_e6_points(8, 5, (1, 2)),
        columns={
            "latency": ("protocol", "n", "delays", "mean", "p50", "p95"),
            "scaling": ("f", "FBFT mean", "PBFT mean"),
        },
    )
)


# ---------------------------------------------------------------------------
# E7 — progress-certificate size across view changes
# ---------------------------------------------------------------------------


def e7_driver(params: Dict[str, Any], seed: int) -> TaskResult:
    scheme, views = params["scheme"], params["views"]
    n, f = 4, 1
    config = ProtocolConfig(n=n, f=f)
    registry = KeyRegistry.for_processes(config.process_ids)
    procs = [
        FastBFTProcess(
            pid, config, registry, f"v{pid}",
            cert_scheme=scheme, pacemaker_enabled=False,
        )
        for pid in config.process_ids
    ]
    cluster = Cluster(procs, delay_model=SynchronousDelay(1.0))
    cluster.start()
    cluster.sim.run(until=3.0)
    for view in range(2, views + 2):
        for proc in procs:
            proc.enter_view(view)
        cluster.sim.run(until=cluster.sim.now + 8.0)
    sizes: Dict[int, Tuple[int, int]] = {}
    for env in cluster.trace.sends:
        payload = env.payload
        if isinstance(payload, Propose) and payload.cert is not None:
            sizes[payload.view] = (
                certificate_signature_count(payload.cert),
                certificate_distinct_signatures(payload.cert),
            )
    return TaskResult(
        rows=[
            ("certs", [scheme, view, total, distinct])
            for view, (total, distinct) in sorted(sizes.items())
        ]
    )


register(
    ExperimentSpec(
        id="E7",
        name="cert-size",
        title="naive certificates grow across views; bounded stay at f+1",
        paper_ref="Section 3.2",
        driver=e7_driver,
        grid=grid(scheme=("naive", "bounded"), views=(6,)),
        quick_grid=grid(scheme=("naive", "bounded"), views=(4,)),
        columns={"certs": ("scheme", "view", "total sigs", "distinct sigs")},
    )
)


# ---------------------------------------------------------------------------
# E8 — state machine replication
# ---------------------------------------------------------------------------


def _pbft_instance_factory(config: PBFTConfig):
    def factory(pid, slot, input_value):
        return PBFTProcess(pid, config, input_value)

    return factory


def e8_driver(params: Dict[str, Any], seed: int) -> TaskResult:
    if params["section"] == "failover":
        n, f = 4, 1
        config = ProtocolConfig(n=n, f=f, t=1)
        registry = KeyRegistry.for_processes(range(n))
        factory = fbft_instance_factory(config, registry)
        replicas = [
            SMRReplica(pid, n, f, KVStore(), factory) for pid in range(n)
        ]
        client = SMRClient(pid=n, replica_pids=range(n), f=f)
        client.load_workload([("set", f"k{i}", i) for i in range(8)])
        cluster = Cluster(replicas + [client], delay_model=SynchronousDelay(1.0))
        cluster.start()
        cluster.sim.schedule(10.0, replicas[0].crash)
        cluster.sim.run_until(lambda: client.all_completed, timeout=10_000)
        surviving_logs = len({r.log for r in replicas[1:]})
        return TaskResult(
            rows=[("failover", [client.completed_count, surviving_logs])]
        )
    protocol, n, f = params["protocol"], params["n"], params["f"]
    commands = params["commands"]
    if protocol == "fbft":
        config = ProtocolConfig(n=n, f=f, t=1)
        registry = KeyRegistry.for_processes(range(n))
        factory = fbft_instance_factory(config, registry)
    else:
        factory = _pbft_instance_factory(PBFTConfig(n=n, f=f))
    replicas = [SMRReplica(pid, n, f, KVStore(), factory) for pid in range(n)]
    client = SMRClient(pid=n, replica_pids=range(n), f=f)
    client.load_workload([("set", f"key{i}", i) for i in range(commands)])
    cluster = Cluster(replicas + [client], delay_model=SynchronousDelay(1.0))
    cluster.start()
    cluster.sim.run_until(lambda: client.all_completed, timeout=10_000)
    stats = Stats.from_values(client.latencies())
    identical_logs = len({r.log for r in replicas}) == 1
    return TaskResult(
        rows=[
            (
                "comparison",
                [
                    protocol, n, f, client.completed_count,
                    round(stats.mean, 2), round(stats.p95, 2),
                    round(client.completed_count / cluster.sim.now, 4),
                    identical_logs,
                ],
            )
        ]
    )


register(
    ExperimentSpec(
        id="E8",
        name="smr",
        title="replicated KV store: 4-delay commands (ours) vs 5 (PBFT)",
        paper_ref="Section 1.1",
        driver=e8_driver,
        grid=points(
            {"section": "comparison", "protocol": "fbft", "n": 4, "f": 1, "commands": 15},
            {"section": "comparison", "protocol": "pbft", "n": 4, "f": 1, "commands": 15},
            {"section": "comparison", "protocol": "fbft", "n": 7, "f": 2, "commands": 15},
            {"section": "failover"},
        ),
        quick_grid=points(
            {"section": "comparison", "protocol": "fbft", "n": 4, "f": 1, "commands": 8},
            {"section": "comparison", "protocol": "pbft", "n": 4, "f": 1, "commands": 8},
            {"section": "failover"},
        ),
        columns={
            "comparison": (
                "backend", "n", "f", "done", "mean lat", "p95 lat",
                "cmds/time", "logs equal",
            ),
            "failover": ("completed", "surviving log values"),
        },
    )
)


# ---------------------------------------------------------------------------
# E9 — fault matrix
# ---------------------------------------------------------------------------


def _e9_run_cell(f: int, t: int, faults: int, leader_faulty: bool):
    n = min_processes_fast_bft(f, t)
    config = ProtocolConfig(n=n, f=f, t=t)
    registry = KeyRegistry.for_processes(config.process_ids)
    faulty = set()
    if leader_faulty and faults > 0:
        faulty.add(0)
    while len(faulty) < faults:
        faulty.add(n - 1 - len(faulty))
    procs: List[Any] = []
    for pid in config.process_ids:
        if pid in faulty:
            procs.append(SilentProcess(pid))
        else:
            procs.append(GeneralizedFBFTProcess(pid, config, registry, "v"))
    cluster = Cluster(procs, delay_model=SynchronousDelay(1.0))
    correct = [pid for pid in config.process_ids if pid not in faulty]
    result = cluster.run_until_decided(correct_pids=correct, timeout=2000)
    return n, result.decided, result.decision_time


def e9_driver(params: Dict[str, Any], seed: int) -> TaskResult:
    f, t = params["f"], params["t"]
    if params["section"] == "crossover":
        boundary = []
        for faults in range(f + 1):
            _, decided, decision_time = _e9_run_cell(f, t, faults, False)
            boundary.append(message_delays(decision_time, 1.0))
        return TaskResult(rows=[("crossover", [f, t, boundary])])
    faults, leader = params["faults"], params["leader"]
    n, decided, decision_time = _e9_run_cell(f, t, faults, leader)
    delays = message_delays(decision_time, 1.0) if decided else None
    if leader:
        path = "view-change"
    else:
        path = "fast" if delays == 2 else "slow" if delays == 3 else "view-change"
    kind = "leader" if leader else "non-leader"
    return TaskResult(rows=[("matrix", [f, t, n, faults, kind, delays, path])])


def _e9_points(pairs) -> List[Dict[str, Any]]:
    pts = []
    for f, t in pairs:
        for faults in range(f + 1):
            pts.append(
                {"section": "matrix", "f": f, "t": t, "faults": faults,
                 "leader": False}
            )
        pts.append(
            {"section": "matrix", "f": f, "t": t, "faults": 1, "leader": True}
        )
    return pts


register(
    ExperimentSpec(
        id="E9",
        name="fault-matrix",
        title="latency vs fault count/kind; fast/slow crossover at exactly t",
        paper_ref="Section 3.4",
        driver=e9_driver,
        grid=_e9_points([(2, 1), (2, 2), (3, 1), (3, 2)])
        + [{"section": "crossover", "f": 3, "t": 2}],
        quick_grid=_e9_points([(2, 1), (2, 2)])
        + [{"section": "crossover", "f": 3, "t": 2}],
        columns={
            "matrix": ("f", "t", "n", "faults", "kind", "delays", "path"),
            "crossover": ("f", "t", "delays by fault count"),
        },
    )
)


# ---------------------------------------------------------------------------
# E10 — the t-two-step property
# ---------------------------------------------------------------------------


def _fbft_factory(n: int, f: int, t: int):
    config = ProtocolConfig(n=n, f=f, t=t)
    registry = KeyRegistry.for_processes(config.process_ids)
    cls = FastBFTProcess if config.is_vanilla else GeneralizedFBFTProcess
    return lambda pid, value: cls(pid, config, registry, value)


def _pbft_factory(n: int, f: int):
    config = PBFTConfig(n=n, f=f)
    return lambda pid, value: PBFTProcess(pid, config, value)


def e10_driver(params: Dict[str, Any], seed: int) -> TaskResult:
    if params["section"] == "witness":
        witness = find_influential_process(_fbft_factory(4, 1, 1), n=4, t=1)
        return TaskResult(
            rows=[
                (
                    "witness",
                    [
                        witness.pid,
                        sorted(witness.t0_set), repr(witness.value0),
                        sorted(witness.t1_set), repr(witness.value1),
                        witness.check(),
                    ],
                )
            ]
        )
    name, n, f, t = params["name"], params["n"], params["f"], params["t"]
    limit = params["limit"]
    if name == "PBFT":
        factory = _pbft_factory(n, f)
    else:
        factory = _fbft_factory(n, f, t)
    report = check_t_two_step(
        factory, n=n, t=t, protocol_name=name, max_fault_sets=limit
    )
    return TaskResult(
        rows=[
            (
                "two_step",
                [
                    name, n, t, report.executions,
                    report.two_step_executions,
                    "YES" if report.is_t_two_step else "no",
                ],
            )
        ]
    )


_E10_CASES = [
    {"section": "two_step", "name": "FBFT", "n": 4, "f": 1, "t": 1, "limit": None},
    {"section": "two_step", "name": "FBFT", "n": 9, "f": 2, "t": 2, "limit": 20},
    {"section": "two_step", "name": "FBFT gen", "n": 7, "f": 2, "t": 1, "limit": None},
    {"section": "two_step", "name": "FBFT gen", "n": 12, "f": 3, "t": 2, "limit": 20},
    {"section": "two_step", "name": "PBFT", "n": 4, "f": 1, "t": 1, "limit": None},
    {"section": "two_step", "name": "PBFT", "n": 10, "f": 3, "t": 1, "limit": 10},
]

register(
    ExperimentSpec(
        id="E10",
        name="two-step",
        title="ours is t-two-step (PBFT is not); Lemma 4.4 witness search",
        paper_ref="Sections 4.1 / 4.3-4.4",
        driver=e10_driver,
        grid=_E10_CASES + [{"section": "witness"}],
        quick_grid=[_E10_CASES[0], _E10_CASES[4]] + [{"section": "witness"}],
        columns={
            "two_step": (
                "protocol", "n", "t", "executions", "two-step", "t-two-step?"
            ),
            "witness": ("pid", "T0", "value0", "T1", "value1", "valid"),
        },
    )
)


# ---------------------------------------------------------------------------
# E11 — the equivocator-exclusion ablation
# ---------------------------------------------------------------------------


def e11_driver(params: Dict[str, Any], seed: int) -> TaskResult:
    f, t = params["f"], params["t"]
    bound = min_processes_fast_bft(f, t)
    with_trick = run_splice_attack(f=f, t=t, n=bound, exclude_equivocator=True)
    without_trick = run_splice_attack(f=f, t=t, n=bound, exclude_equivocator=False)
    return TaskResult(
        rows=[
            (
                "main",
                [
                    f, t, bound,
                    "safe" if with_trick.safe else "DISAGREEMENT",
                    "safe" if without_trick.safe else "DISAGREEMENT",
                    min_processes_disjoint_roles(f, t),
                ],
            )
        ]
    )


register(
    ExperimentSpec(
        id="E11",
        name="ablation",
        title="the exclusion trick is load-bearing at n = 3f + 2t - 1",
        paper_ref="Sections 3.2 / 4.4",
        driver=e11_driver,
        grid=points({"f": 2, "t": 2}, {"f": 3, "t": 2}, {"f": 2, "t": 1}),
        quick_grid=points({"f": 2, "t": 2}, {"f": 2, "t": 1}),
        columns={
            "main": (
                "f", "t", "n (bound)", "with exclusion", "without exclusion",
                "disjoint-roles bound",
            )
        },
    )
)


# ---------------------------------------------------------------------------
# E12 — fast-path robustness across the design space
# ---------------------------------------------------------------------------

_E12_F, _E12_T = 2, 1


def _e12_build_family(key: str, faults: int):
    if key == "fbft":
        config = ProtocolConfig(n=3 * _E12_F + 2 * _E12_T - 1, f=_E12_F, t=_E12_T)
        registry = KeyRegistry.for_processes(config.process_ids)
        make = lambda pid: GeneralizedFBFTProcess(pid, config, registry, "v")
        n = config.n
    elif key == "fab":
        config = FaBConfig(n=3 * _E12_F + 2 * _E12_T + 1, f=_E12_F, t=_E12_T)
        make = lambda pid: FaBProcess(pid, config, "v")
        n = config.n
    elif key == "pbft":
        config = PBFTConfig(n=3 * _E12_F + 1, f=_E12_F)
        make = lambda pid: PBFTProcess(pid, config, "v")
        n = config.n
    else:
        config = OptimisticConfig(n=3 * _E12_F + 1, f=_E12_F)
        make = lambda pid: OptimisticProcess(pid, config, "v")
        n = config.n
    procs: List[Any] = []
    for pid in range(n):
        if pid >= n - faults:
            procs.append(SilentProcess(pid))
        else:
            procs.append(make(pid))
    return procs, n


_E12_LABELS = {
    "fbft": "FBFT gen (ours)",
    "fab": "FaB Paxos",
    "optimistic": "Kursawe-style",
    "pbft": "PBFT",
}


def e12_driver(params: Dict[str, Any], seed: int) -> TaskResult:
    key, faults = params["family"], params["faults"]
    procs, n = _e12_build_family(key, faults)
    cluster = Cluster(procs, delay_model=RoundSynchronousDelay(1.0))
    correct = range(n - faults)
    result = cluster.run_until_decided(correct_pids=correct, timeout=200)
    delays = (
        message_delays(result.decision_time, 1.0) if result.decided else None
    )
    return TaskResult(rows=[("main", [_E12_LABELS[key], n, faults, delays])])


register(
    ExperimentSpec(
        id="E12",
        name="fast-robustness",
        title="where each protocol family falls off the fast path",
        paper_ref="Section 5 (related-work positioning)",
        driver=e12_driver,
        grid=grid(
            family=("fbft", "fab", "optimistic", "pbft"),
            faults=tuple(range(_E12_F + 1)),
        ),
        quick_grid=grid(family=("fbft", "pbft"), faults=(0, 1, 2)),
        columns={"main": ("protocol", "n", "faults", "delays")},
    )
)


# ---------------------------------------------------------------------------
# E13 — scalability
# ---------------------------------------------------------------------------


def e13_driver(params: Dict[str, Any], seed: int) -> TaskResult:
    if params["section"] == "events":
        n, f = params["n"], params["f"]
        cluster = Cluster(
            _build_fbft(n, f), delay_model=RoundSynchronousDelay(1.0)
        )
        cluster.run_until_decided()
        return TaskResult(rows=[("events", [n, f, cluster.sim.events_processed])])
    f = params["f"]
    n = min_processes_fast_bft(f, f)
    result = run_common_case(_build_fbft(n, f))
    # Wall clock stays out of the rows (E16 owns events/sec): every cell
    # here is simulated and exact, so serial == parallel row-for-row.
    row = [
        n, f, result.delays, result.messages,
        round(result.messages / (n * n), 2),
    ]
    return TaskResult(rows=[("scale", row)])


def _stable_digest(payload: Any) -> str:
    import hashlib
    import json

    return hashlib.sha256(
        json.dumps(jsonify(payload), sort_keys=True).encode()
    ).hexdigest()


register(
    ExperimentSpec(
        id="E13",
        name="scalability",
        title="delays stay at 2 as n grows; messages grow ~n^2",
        paper_ref="reproduction due diligence (not a paper figure)",
        driver=e13_driver,
        grid=[
            {"section": "scale", "f": f} for f in (1, 2, 4, 6, 8, 10, 12)
        ]
        + [{"section": "events", "n": 19, "f": 4}],
        quick_grid=[{"section": "scale", "f": f} for f in (1, 2, 4)]
        + [{"section": "events", "n": 19, "f": 4}],
        columns={
            "scale": ("n", "f", "delays", "msgs", "msgs/n^2"),
            "events": ("n", "f", "events"),
        },
    )
)


# ---------------------------------------------------------------------------
# E14 — the scenario engine
# ---------------------------------------------------------------------------


def e14_driver(params: Dict[str, Any], seed: int) -> TaskResult:
    if params["section"] == "library":
        (result,) = run_scenarios([params["scenario"]])
        return TaskResult(
            rows=[
                (
                    "library",
                    [
                        result.spec.name,
                        result.spec.protocol,
                        result.ok,
                        result.steps,
                        result.messages_sent,
                        result.bytes_sent,
                        result.trace_digest,
                    ],
                )
            ]
        )
    start, seeds = params["start"], params["seeds"]
    report = run_fuzz(seeds=seeds, start=start, shrink=False)
    return TaskResult(
        rows=[
            (
                "fuzz",
                [start, seeds, report.ok, len(report.failures)],
            )
        ]
    )


def _e14_points(scenarios, fuzz_chunks) -> List[Dict[str, Any]]:
    pts = [{"section": "library", "scenario": name} for name in scenarios]
    pts += [
        {"section": "fuzz", "start": start, "seeds": seeds}
        for start, seeds in fuzz_chunks
    ]
    return pts


_E14_QUICK_SCENARIOS = (
    "fast-path-clean", "crash-quorum-edge", "pbft-clean", "fab-fast-path",
    "slow-path-commit", "equivocating-leader", "smr-crash-recovery",
)

register(
    ExperimentSpec(
        id="E14",
        name="scenarios",
        title="the canonical scenario library + fuzz campaign, all oracles green",
        paper_ref="every claim, as declarative fault scenarios",
        driver=e14_driver,
        grid=_e14_points(
            tuple(SCENARIOS), [(0, 5), (5, 5), (10, 5), (15, 5)]
        ),
        quick_grid=_e14_points(_E14_QUICK_SCENARIOS, [(0, 5)]),
        columns={
            "library": (
                "scenario", "protocol", "ok", "steps", "msgs", "bytes",
                "trace digest",
            ),
            "fuzz": ("start", "seeds", "ok", "failures"),
        },
    )
)


# ---------------------------------------------------------------------------
# E15 — batched, pipelined SMR throughput
# ---------------------------------------------------------------------------


def e15_driver(params: Dict[str, Any], seed: int) -> TaskResult:
    result = run_smr_throughput(
        backend=params["backend"],
        clients=params["clients"],
        requests_per_client=params["requests"],
        window=params["window"],
        batch_size=params["batch"],
        pipeline_depth=params["depth"],
    )
    if params.get("section") == "load":
        return TaskResult(
            rows=[
                (
                    "load",
                    [
                        params["backend"], params["batch"], params["depth"],
                        params["clients"], result.completed,
                        result.slots_used, round(result.ops_per_sec, 3),
                        round(result.latency.p95, 1),
                    ],
                )
            ]
        )
    return TaskResult(rows=[("main", result.row() + [round(result.duration, 1)])])


#: (backend, batch_size, pipeline_depth); first row = seed configuration.
E15_GRID = [
    ("fbft", 1, 1),
    ("fbft", 8, 1),
    ("fbft", 1, 4),
    ("fbft", 8, 4),
    ("pbft", 1, 1),
    ("pbft", 8, 4),
]


def _e15_points(clients: int, requests: int, window: int) -> List[Dict[str, Any]]:
    return [
        {
            "section": "main",
            "backend": backend, "batch": batch, "depth": depth,
            "clients": clients, "requests": requests, "window": window,
        }
        for backend, batch, depth in E15_GRID
    ]


def _e15_load_points() -> List[Dict[str, Any]]:
    """Throughput vs offered load: the engine must scale with clients."""
    pts = []
    for clients in (6, 8, 10):
        for batch, depth in ((1, 1), (8, 4)):
            pts.append(
                {
                    "section": "load", "backend": "fbft", "batch": batch,
                    "depth": depth, "clients": clients, "requests": 16,
                    "window": 8,
                }
            )
    return pts


register(
    ExperimentSpec(
        id="E15",
        name="throughput",
        title="batched+pipelined SMR sustains >= 5x the seed config ops/sec",
        paper_ref="the replication engine (Section 1.1 scaled up)",
        driver=e15_driver,
        grid=_e15_points(clients=4, requests=16, window=8) + _e15_load_points(),
        quick_grid=_e15_points(clients=2, requests=8, window=8),
        columns={
            "main": (
                "backend", "batch", "depth", "done", "slots", "ops/t",
                "p50", "p95", "duration",
            ),
            "load": (
                "backend", "batch", "depth", "clients", "done", "slots",
                "ops/t", "p95",
            ),
        },
    )
)


# ---------------------------------------------------------------------------
# E17 — durability: catchup latency and bytes vs lag depth and interval
# ---------------------------------------------------------------------------


def e17_driver(params: Dict[str, Any], seed: int) -> TaskResult:
    result = run_catchup(
        checkpoint_interval=params["interval"],
        lag_requests=params["lag"],
        disk=params["disk"],
    )
    return TaskResult(
        rows=[
            (
                "main",
                [
                    params["interval"],
                    params["disk"],
                    # The offered lag (grid param) alongside the measured
                    # one: cross-row assertions pair rows by the former,
                    # which batching changes cannot perturb.
                    params["lag"],
                    result.lag_slots,
                    round(result.catchup_time, 1),
                    result.catchup_messages,
                    result.catchup_bytes,
                    result.stable_slot,
                    result.wal_records,
                    result.digests_equal,
                ],
            )
        ]
    )


def _e17_points(intervals, lags, disks) -> List[Dict[str, Any]]:
    return [
        {"interval": interval, "lag": lag, "disk": disk}
        for disk in disks
        for interval in intervals
        for lag in lags
    ]


register(
    ExperimentSpec(
        id="E17",
        name="catchup",
        title="durable recovery: catchup latency/bytes vs lag depth and checkpoint interval",
        paper_ref="the durability subsystem (repro.storage; not a paper figure)",
        driver=e17_driver,
        grid=_e17_points((2, 4, 8), (8, 24), ("lost",))
        + _e17_points((4, 8), (8, 24), ("retained",)),
        quick_grid=_e17_points((4,), (8,), ("lost", "retained")),
        columns={
            "main": (
                "interval", "disk", "lag req", "lag slots", "catchup time",
                "catchup msgs", "catchup bytes", "stable slot",
                "wal records", "digest ok",
            )
        },
    )
)


# ---------------------------------------------------------------------------
# E16 — simulation-core events/sec (wall clock; never cached)
# ---------------------------------------------------------------------------


def e16_driver(params: Dict[str, Any], seed: int) -> TaskResult:
    churn, timers, n, rounds = (
        E16_QUICK_PARAMS if params["quick"] else E16_FULL_PARAMS
    )
    workload = params["workload"]
    if workload == "event_churn":
        eps = max(event_churn(churn) for _ in range(2))
    elif workload == "timer_churn":
        eps = max(timer_churn(timers) for _ in range(2))
    else:
        eps = max(broadcast_storm(n, rounds) for _ in range(2))
    # Events/sec are hardware-dependent: the digest covers the workload
    # identity only, so serial-vs-parallel digest checks stay meaningful.
    return TaskResult(
        rows=[("main", [workload, round(eps)])],
        digest=_stable_digest(["E16", workload]),
    )


# ---------------------------------------------------------------------------
# E18 — leader-performance monitor: tail latency with vs without
# ---------------------------------------------------------------------------


def e18_driver(params: Dict[str, Any], seed: int) -> TaskResult:
    result = run_monitor_tail(
        severity=params["severity"],
        window=params["window"],
        monitor_on=params["monitor"],
    )
    return TaskResult(
        rows=[
            (
                "main",
                [
                    params["severity"],
                    params["window"],
                    "on" if params["monitor"] else "off",
                    result.completed,
                    round(result.duration, 1),
                    round(result.latency.p50, 1),
                    round(result.latency.p95, 1),
                    round(result.latency.p99, 1),
                    result.demotions,
                    result.view_floor,
                ],
            )
        ]
    )


register(
    ExperimentSpec(
        id="E18",
        name="monitor",
        title="leader-performance monitor cuts p99 under a throttling leader",
        paper_ref="the performance attack liveness proofs ignore (repro.obs; not a paper figure)",
        driver=e18_driver,
        grid=grid(
            severity=(4.0, 8.0, 12.0),
            window=(15.0, 30.0),
            monitor=(True, False),
        ),
        quick_grid=grid(severity=(8.0,), window=(30.0,), monitor=(True, False)),
        columns={
            "main": (
                "severity", "window", "monitor", "done", "duration",
                "p50", "p95", "p99", "demotions", "view floor",
            )
        },
    )
)


# ---------------------------------------------------------------------------
# E19 — coverage-guided fuzzing: guided vs blind signature discovery
# ---------------------------------------------------------------------------


def e19_driver(params: Dict[str, Any], seed: int) -> TaskResult:
    """Guided-vs-blind campaign comparison at one budget.

    Serial by construction (``compare_campaigns`` never shards): this
    driver already runs inside a pool worker when the runner
    parallelizes, and daemonic workers cannot nest pools.  The seed
    stream is pinned by ``start``, so rows are deterministic.
    """
    comparison = compare_campaigns(
        budget=params["budget"], start_seed=params["start"]
    )
    rows: List[Tuple[str, List[Any]]] = [
        ("compare", row) for row in comparison.compare_rows()
    ]
    rows.extend(("trajectory", row) for row in comparison.trajectory_rows())
    return TaskResult(rows=rows)


register(
    ExperimentSpec(
        id="E19",
        name="fuzz",
        title="coverage-guided campaigns beat blind fuzzing at equal budget",
        paper_ref="robustness due diligence (repro.fuzz; not a paper figure)",
        driver=e19_driver,
        grid=grid(budget=(256, 384), start=(0,)),
        quick_grid=grid(budget=(256,), start=(0,)),
        columns={
            "compare": (
                "mode", "budget", "start", "executed", "unique sigs",
                "corpus", "features", "failures",
            ),
            "trajectory": (
                "mode", "budget", "round", "executed", "unique sigs",
                "corpus", "mutants",
            ),
        },
    )
)


register(
    ExperimentSpec(
        id="E16",
        name="simcore",
        title="events/sec of the simulation core on three canonical workloads",
        paper_ref="perf due diligence (see benchmarks/bench_e16_simcore.py)",
        driver=e16_driver,
        grid=grid(
            workload=("event_churn", "timer_churn", "broadcast_storm"),
            quick=(False,),
        ),
        quick_grid=grid(
            workload=("event_churn", "timer_churn", "broadcast_storm"),
            quick=(True,),
        ),
        columns={"main": ("workload", "events/sec")},
        cacheable=False,
        deterministic=False,
    )
)


# ---------------------------------------------------------------------------
# E20 — accelerator grid: backend x workload wall-clock rates
# ---------------------------------------------------------------------------


def e20_driver(params: Dict[str, Any], seed: int) -> TaskResult:
    """One (workload, variant) cell of the accelerator grid.

    The backend axis is ambient: the same grid run under
    ``REPRO_ACCEL=0`` and ``REPRO_ACCEL=1`` (see
    ``benchmarks/bench_e20_accel.py``) yields the backend column.  The
    ``reference`` variant pins the pre-optimization paths — legacy
    crypto via ``crypto_reference_mode`` and ``fast_paths=False``
    networks — so optimized/reference is a pure-Python-wins ratio
    measured on one machine.  ``timer_churn`` touches neither crypto
    nor the network fast paths, so its variants coincide by design.
    """
    from .. import _core

    workload = params["workload"]
    reference = params["variant"] == "reference"
    sizes = (E20_QUICK_SIZES if params["quick"] else E20_FULL_SIZES)[workload]
    # Sub-second cells (storms, churn) take best-of-3: on a busy machine
    # a single run can be 30% off; the wall-clock-heavy cells (SMR,
    # fuzz) amortize noise over seconds and best-of-2 suffices.
    if workload == "broadcast_storm":
        n, rounds = sizes
        if reference:
            rate = max(
                broadcast_storm(n, rounds, sim_net_factory=reference_sim_net)
                for _ in range(3)
            )
        else:
            rate = max(broadcast_storm(n, rounds) for _ in range(3))
        unit = "events/sec"
    elif workload == "cert_broadcast":
        n, rounds = sizes
        rate = max(cert_storm(n, rounds, reference=reference) for _ in range(3))
        unit = "events/sec"
    elif workload == "timer_churn":
        (timers,) = sizes
        rate = max(timer_churn(timers) for _ in range(3))
        unit = "ops/sec"
    elif workload == "smr_throughput":
        clients, requests = sizes
        rate = max(
            smr_wall_rate(clients, requests, reference=reference)
            for _ in range(2)
        )
        unit = "cmds/sec"
    elif workload == "fuzz_seeds":
        (budget,) = sizes
        rate = max(fuzz_seed_rate(budget, reference=reference) for _ in range(2))
        unit = "seeds/sec"
    else:
        (batches,) = sizes
        rate = max(
            crypto_verify_rate(batches, reference=reference) for _ in range(2)
        )
        unit = "verifies/sec"
    # Rates are hardware-dependent: as in E16, the digest covers the
    # cell identity only, so serial-vs-parallel checks stay meaningful.
    return TaskResult(
        rows=[
            (
                "main",
                [workload, params["variant"], _core.BACKEND, unit, round(rate)],
            )
        ],
        digest=_stable_digest(["E20", workload, params["variant"]]),
    )


register(
    ExperimentSpec(
        id="E20",
        name="accel",
        title="hot-path backend grid: optimized vs reference, per workload",
        paper_ref="perf due diligence (see benchmarks/bench_e20_accel.py)",
        driver=e20_driver,
        grid=grid(
            workload=(
                "broadcast_storm",
                "cert_broadcast",
                "timer_churn",
                "smr_throughput",
                "fuzz_seeds",
                "crypto_verify",
            ),
            variant=("reference", "optimized"),
            quick=(False,),
        ),
        quick_grid=grid(
            workload=(
                "broadcast_storm",
                "cert_broadcast",
                "timer_churn",
                "smr_throughput",
                "fuzz_seeds",
                "crypto_verify",
            ),
            variant=("reference", "optimized"),
            quick=(True,),
        ),
        columns={"main": ("workload", "variant", "backend", "unit", "rate")},
        cacheable=False,
        deterministic=False,
    )
)


# ---------------------------------------------------------------------------
# E21 — observability overhead: flight recorder on vs off
# ---------------------------------------------------------------------------


def e21_driver(params: Dict[str, Any], seed: int) -> TaskResult:
    """One (workload, variant) cell of the observability-overhead grid.

    ``variant="recorder"`` attaches a :class:`~repro.obs.recorder.
    FlightRecorder`; ``variant="off"`` runs bare.  The storm exercises
    the selective tracer's unwanted-payload path (one memoized ``wants``
    verdict per payload type, then the fast delivery post); the scenario
    sweep exercises full classification, causal buckets, and the replica
    hooks.  ``benchmarks/bench_e21_obsoverhead.py`` turns the cells into
    the gated ``recorder_on_ratio``.
    """
    from .. import _core

    workload = params["workload"]
    recorded = params["variant"] == "recorder"
    sizes = (E21_QUICK_SIZES if params["quick"] else E21_FULL_SIZES)[workload]
    if workload == "broadcast_storm":
        n, rounds = sizes
        if recorded:
            rate = max(
                broadcast_storm(n, rounds, sim_net_factory=recorder_sim_net)
                for _ in range(3)
            )
        else:
            rate = max(broadcast_storm(n, rounds) for _ in range(3))
        unit = "events/sec"
    else:
        (repeats,) = sizes
        rate = max(
            scenario_obs_rate(repeats, recorder=recorded) for _ in range(2)
        )
        unit = "scenarios/sec"
    return TaskResult(
        rows=[
            (
                "main",
                [workload, params["variant"], _core.BACKEND, unit, round(rate, 2)],
            )
        ],
        digest=_stable_digest(["E21", workload, params["variant"]]),
    )


register(
    ExperimentSpec(
        id="E21",
        name="obsoverhead",
        title="flight-recorder overhead: recorder-on vs recorder-off rates",
        paper_ref="perf due diligence (see benchmarks/bench_e21_obsoverhead.py)",
        driver=e21_driver,
        grid=grid(
            workload=("broadcast_storm", "scenario_sweep"),
            variant=("off", "recorder"),
            quick=(False,),
        ),
        quick_grid=grid(
            workload=("broadcast_storm", "scenario_sweep"),
            variant=("off", "recorder"),
            quick=(True,),
        ),
        columns={"main": ("workload", "variant", "backend", "unit", "rate")},
        cacheable=False,
        deterministic=False,
    )
)
