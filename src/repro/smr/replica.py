"""State machine replication on top of the consensus core.

Each log *slot* is decided by an independent instance of the paper's
consensus protocol; replicas multiplex the instances over one network by
wrapping every protocol message in a :class:`SlotMessage`.  The design:

* clients broadcast :class:`Request` messages; every replica queues them
  (deduplicating by ``(client, request_id)``);
* slots decide :class:`Batch` values — ordered tuples of
  ``(client, request_id, command)`` entries.  A replica packs up to
  ``batch_size`` pending commands into each proposal and may hold an
  under-full batch open for ``batch_timeout`` (see
  :class:`~repro.core.config.ReplicationConfig`); the instance's input is
  the replica's own batch of oldest unassigned commands (``NOOP`` if
  none), so whoever ends up leading the slot — including after view
  changes when the original leader crashed — proposes real work;
* up to ``pipeline_depth`` consensus instances run concurrently;
  decisions are applied to the state machine strictly in slot order
  regardless, and answered to clients with :class:`Reply`; a client
  accepts a result once ``f + 1`` replicas agree on it;
* replicas gossip :class:`SlotDecided` notifications; ``f + 1`` matching
  notifications are adopted as a decision (at most ``f`` Byzantine, so at
  least one sender is correct), which lets lagging replicas catch up and
  lets instances stop their pacemakers after deciding.

Execution deduplicates by ``(client, request_id)``: a command adopted
via gossip before its :class:`Request` arrived is recorded just like a
locally known one, so the late request is answered from the result cache
instead of being re-proposed (and the state machine never applies the
same request twice).  Crashing a replica halts the per-slot contexts and
their timers along with the parent (see
:meth:`~repro.sim.process.ProcessContext.adopt`), matching the
crash-recovery model of the scenario engine.

With a :class:`~repro.core.config.DurabilityConfig` the replica becomes
*durable* (see :mod:`repro.storage`): every adopted decision is appended
to a write-ahead log before it takes effect, application state is
checkpointed every ``checkpoint_interval`` slots and certified by
``2f + 1`` signed checkpoint votes, and the WAL plus the execution and
result caches are compacted up to the stable checkpoint.  Recovery then
*rebuilds* the replica from storage (checkpoint restore + WAL replay)
instead of resurrecting whatever volatile state survived in memory, and
a recovering or lagging replica catches the cluster up through the peer
state-transfer protocol of :mod:`repro.storage.catchup` — tolerating
Byzantine responders by certificate validation and ``f + 1``
cross-checking.

The SMR layer is deliberately protocol-agnostic: it accepts any factory
producing a :class:`~repro.core.protocol.DecidingProcess`-compatible
consensus instance (ours, or a baseline for comparison benchmarks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..core.certificates import (
    CheckpointCertificate,
    checkpoint_certificate_valid,
)
from ..core.config import (
    DurabilityConfig,
    MonitorConfig,
    ProtocolConfig,
    ReplicationConfig,
)
from ..core.generalized import GeneralizedFBFTProcess
from ..core.payloads import checkpoint_payload, demotion_payload
from ..core.quorums import majority_correct, one_correct
from ..crypto.keys import KeyRegistry, Signer
from ..obs.monitor import DemotionVote, LeaderMonitor
from ..sim.process import Process, ProcessContext
from ..storage.catchup import CatchupManager, CatchupReply, CatchupRequest
from ..storage.checkpoint import (
    Checkpoint,
    CheckpointManager,
    CheckpointVote,
    state_digest,
)
from ..storage.store import ReplicaStorage, make_storage
from .kvstore import NOOP, Command, StateMachine

__all__ = [
    "Batch",
    "Request",
    "Reply",
    "SlotMessage",
    "SlotDecided",
    "SMRReplica",
    "commands_of",
    "fbft_instance_factory",
]

#: The ``(client, request_id)`` identity of one submitted command.
RequestKey = Tuple[int, int]


@dataclass(frozen=True)
class Request:
    """Client command submission."""

    client: int
    request_id: int
    command: Command


@dataclass(frozen=True)
class Reply:
    """Replica's answer after executing the command."""

    client: int
    request_id: int
    result: Any
    slot: int


@dataclass(frozen=True)
class Batch:
    """An ordered tuple of commands decided together in one slot.

    Entries carry the submitting client's identity, so a replica that
    learns a batch through gossip (never having seen the underlying
    requests) can still reply, cache results and deduplicate.
    """

    entries: Tuple[Tuple[int, int, Command], ...]

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def commands(self) -> Tuple[Command, ...]:
        return tuple(command for _, _, command in self.entries)

    @property
    def keys(self) -> Tuple[RequestKey, ...]:
        return tuple((client, rid) for client, rid, _ in self.entries)

    def signing_fields(self) -> Tuple[Any, ...]:
        return (self.entries,)


def commands_of(value: Any) -> Tuple[Command, ...]:
    """The commands carried by a decided slot value (batch or legacy bare
    command); ``NOOP`` slots carry none."""
    if isinstance(value, Batch):
        return value.commands
    if value == NOOP:
        return ()
    return (value,)


@dataclass(frozen=True)
class SlotMessage:
    """A consensus protocol message scoped to one log slot."""

    slot: int
    inner: Any


@dataclass(frozen=True)
class SlotDecided:
    """Decision gossip: ``f + 1`` matching ones are adopted."""

    slot: int
    value: Any


class _SlotContext(ProcessContext):
    """Process context adapter that scopes one consensus instance to a slot.

    Outgoing payloads are wrapped in :class:`SlotMessage`; timer names are
    prefixed so instances do not trample each other's timers.  The parent
    context adopts each slot context, so a crash of the replica halts the
    slot's timers too (and recovery resumes them both).
    """

    def __init__(self, slot: int, parent: ProcessContext) -> None:
        super().__init__(parent.pid, parent.sim, parent.network)
        self._slot = slot
        self._parent = parent
        #: Timer-name prefix, rendered once: per-slot pacemakers arm and
        #: cancel timers constantly, and an f-string per call adds up.
        self._timer_prefix = f"slot{slot}:"
        parent.adopt(self)

    def send(self, dst: int, payload: Any) -> None:
        if self.halted or self._parent.halted:
            return
        self.network.send(self.pid, dst, SlotMessage(self._slot, payload))

    def broadcast(self, payload: Any, include_self: bool = True) -> None:
        if self.halted or self._parent.halted:
            return
        self.network.broadcast(
            self.pid, SlotMessage(self._slot, payload), include_self=include_self
        )

    def set_timer(self, name: str, delay: float, callback) -> Any:
        return super().set_timer(self._timer_prefix + name, delay, callback)

    def cancel_timer(self, name: str) -> None:
        super().cancel_timer(self._timer_prefix + name)

    def has_timer(self, name: str) -> bool:
        return super().has_timer(self._timer_prefix + name)


#: Builds one consensus instance: (pid, slot, input_value) -> process.
InstanceFactory = Callable[[int, int, Any], Any]


def fbft_instance_factory(
    config: ProtocolConfig,
    registry: KeyRegistry,
    base_timeout: float = 12.0,
) -> InstanceFactory:
    """Default factory: one generalized-protocol instance per slot."""

    def factory(pid: int, slot: int, input_value: Any) -> GeneralizedFBFTProcess:
        return GeneralizedFBFTProcess(
            pid,
            config,
            registry,
            input_value,
            base_timeout=base_timeout,
        )

    return factory


class SMRReplica(Process):
    """One replica of the batched, pipelined replicated state machine."""

    def __init__(
        self,
        pid: int,
        n: int,
        f: int,
        state_machine: StateMachine,
        instance_factory: InstanceFactory,
        replication: Optional[ReplicationConfig] = None,
        max_slots: Optional[int] = None,
        durability: Optional[DurabilityConfig] = None,
        storage: Optional[ReplicaStorage] = None,
        registry: Optional[KeyRegistry] = None,
        monitor: Optional[MonitorConfig] = None,
        metrics: Any = None,
    ) -> None:
        super().__init__(pid)
        self.n = n
        self.f = f
        self.state_machine = state_machine
        self.instance_factory = instance_factory
        self.replication = replication or ReplicationConfig()
        if max_slots is not None:
            from dataclasses import replace

            self.replication = replace(self.replication, max_slots=max_slots)
        # -- durability (all three stay None/absent for a legacy replica)
        self.durability = durability
        if storage is None and durability is not None:
            storage = make_storage(durability, pid)
        self.storage = storage
        self._registry = registry
        self._signer: Optional[Signer] = (
            registry.signer(pid) if registry is not None else None
        )
        interval = durability.checkpoint_interval if durability else 1
        self._checkpoints = CheckpointManager(interval)
        self._catchup = CatchupManager()
        self._instances: Dict[int, Any] = {}
        self._pending: List[Request] = []
        self._seen_requests: Set[RequestKey] = set()
        self._decided: Dict[int, Any] = {}
        self._decide_gossip: Dict[int, Dict[Any, Set[int]]] = {}
        self._executed_upto = -1  # highest contiguously applied slot
        self._results: Dict[RequestKey, Tuple[Any, int]] = {}
        self._executed_requests: Set[RequestKey] = set()
        #: Legacy bare commands applied without a known request: command ->
        #: (result, slot).  A late request for one of these adopts the
        #: recorded execution instead of re-proposing the command.  Bare
        #: values carry no submitter identity, so this dedup is by command
        #: key; a deployment must not mix bare and Batch values for the
        #: same logical request (the engine itself only proposes Batches).
        self._anon_executed: Dict[Command, Tuple[Any, int]] = {}
        #: slot -> request keys packed into OUR input batch for that slot;
        #: entries for undecided slots keep those requests out of newer
        #: proposals so concurrent slots carry disjoint work.
        self._assigned: Dict[int, Tuple[RequestKey, ...]] = {}
        self._batch_deadline: Optional[float] = None
        #: Every state-machine application, in order, tagged by request key
        #: (or a unique anonymous token) — the no-duplicate-execution
        #: oracle's evidence.
        self.applied_keys: List[Tuple[Any, ...]] = []
        # -- observability (all absent by default; see repro.obs)
        self.monitor_config = monitor
        self._monitor: Optional[LeaderMonitor] = (
            LeaderMonitor(pid, n, monitor) if monitor is not None else None
        )
        #: view -> senders of valid demotion votes for entering that view.
        self._demotion_votes: Dict[int, Set[int]] = {}
        #: views this replica already cast its own demotion vote for.
        self._demotion_voted: Set[int] = set()
        #: request key -> local arrival time (queue-delay observation;
        #: only populated when the monitor or metrics are active).
        self._arrival_times: Dict[RequestKey, float] = {}
        self.metrics: Any = None
        #: Optional flight recorder (``repro.obs.recorder``): local
        #: protocol transitions (decide, WAL, checkpoint, demotion) are
        #: recorded against it; ``None`` keeps every hot path a single
        #: ``is not None`` test.
        self._recorder: Any = None
        self.attach_metrics(metrics)

    def attach_metrics(self, metrics: Any) -> None:
        """Bind (or rebind) a :class:`~repro.obs.metrics.MetricsRegistry`.

        Instruments are pre-bound here so the hot paths pay a single
        ``is not None`` check when observability is off.  The scenario
        runner calls this after :meth:`ScenarioAdapter.build` when the
        CLI asks for ``--metrics-out``; call before ``start``.
        """
        self.metrics = metrics
        if metrics is not None and getattr(metrics, "enabled", False):
            ns = metrics.namespace(f"replica.{self.pid}")
            self._m_requests = ns.counter("requests")
            self._m_executed = ns.counter("commands_executed")
            self._m_slot_latency = ns.histogram("slot_latency")
            self._m_queue_delay = ns.histogram("queue_delay")
            self._m_demotion_votes = ns.counter("demotion_votes")
            self._m_demotions = ns.counter("demotions")
        else:
            self._m_requests = None
            self._m_executed = None
            self._m_slot_latency = None
            self._m_queue_delay = None
            self._m_demotion_votes = None
            self._m_demotions = None

    def attach_recorder(self, recorder: Any) -> None:
        """Bind (or unbind, with ``None``) a flight recorder.

        The recorder observes network traffic through the network tracer
        slot; this binding adds the *local* transitions — decides, WAL
        appends/truncates, checkpoint votes/stability, demotion votes,
        view advocacy — with their causal parents.  Call before
        ``start`` (the scenario runner does, mirroring
        :meth:`attach_metrics`).
        """
        self._recorder = recorder

    # ------------------------------------------------------------------
    # Introspection (used by tests and examples)
    # ------------------------------------------------------------------

    @property
    def max_slots(self) -> int:
        return self.replication.max_slots

    @property
    def log(self) -> Tuple[Tuple[int, Any], ...]:
        """Decided (slot, value) pairs in slot order."""
        return tuple(sorted(self._decided.items()))

    @property
    def executed_upto(self) -> int:
        return self._executed_upto

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def inflight_instances(self) -> int:
        """Consensus instances currently running for undecided slots."""
        return sum(1 for slot in self._instances if slot not in self._decided)

    @property
    def durable(self) -> bool:
        """Whether this replica persists decisions and checkpoints."""
        return self.storage is not None

    @property
    def stable_checkpoint_slot(self) -> int:
        """Highest stable-checkpoint slot (``-1`` before the first)."""
        return self._checkpoints.stable_slot

    @property
    def catchup_active(self) -> bool:
        """Whether the replica is mid state transfer from peers."""
        return self._catchup.active

    @property
    def checkpoint_quorum(self) -> int:
        """Votes that make a checkpoint stable: ``2f + 1`` — a majority
        of them are correct, so compacting below it never strands the
        cluster, and a certificate built from them convinces any
        recovering replica."""
        return majority_correct(self.f)

    @property
    def leader_monitor(self) -> Optional[LeaderMonitor]:
        """The performance monitor, when configured (see ``repro.obs``)."""
        return self._monitor

    @property
    def demotion_quorum(self) -> int:
        """Demotion votes that force a view change: ``2f + 1`` — at most
        ``f`` Byzantine replicas can neither fabricate a demotion nor
        (with ``2f + 1`` correct voters available) veto one."""
        return majority_correct(self.f)

    def monitor_stats(self) -> Optional[Dict[str, Any]]:
        """Monitor snapshot (view floor, votes, window means) or ``None``."""
        return self._monitor.stats() if self._monitor is not None else None

    def decided_value(self, slot: int) -> Optional[Any]:
        return self._decided.get(slot)

    def decided_command(self, slot: int) -> Optional[Any]:
        """Backward-compatible view: the decided value of ``slot``."""
        return self._decided.get(slot)

    def slot_commands(self, slot: int) -> Tuple[Command, ...]:
        """The commands a decided slot carries (empty if undecided/noop)."""
        value = self._decided.get(slot)
        return () if value is None else commands_of(value)

    @property
    def executed_command_log(self) -> Tuple[Command, ...]:
        """All commands in decided slots, in slot-then-batch order."""
        return tuple(
            command
            for _slot, value in self.log
            for command in commands_of(value)
        )

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------

    def on_message(self, sender: int, payload: Any) -> None:
        if isinstance(payload, Request):
            self._handle_request(payload)
        elif isinstance(payload, SlotMessage):
            self._handle_slot_message(sender, payload)
        elif isinstance(payload, SlotDecided):
            self._handle_slot_decided(sender, payload)
        elif isinstance(payload, CheckpointVote):
            self._handle_checkpoint_vote(sender, payload)
        elif isinstance(payload, DemotionVote):
            self._handle_demotion_vote(sender, payload)
        elif isinstance(payload, CatchupRequest):
            self._handle_catchup_request(sender, payload)
        elif isinstance(payload, CatchupReply):
            self._handle_catchup_reply(sender, payload)

    def _handle_request(self, request: Request) -> None:
        key = (request.client, request.request_id)
        if key in self._seen_requests:
            # Retransmission: if already executed, re-reply immediately.
            if key in self._results:
                result, slot = self._results[key]
                self.send(
                    request.client,
                    Reply(
                        client=request.client,
                        request_id=request.request_id,
                        result=result,
                        slot=slot,
                    ),
                )
            return
        self._seen_requests.add(key)
        if request.command in self._anon_executed:
            # The command was already executed via gossip adoption of a
            # legacy bare-command slot: adopt that execution rather than
            # re-proposing (which would apply it twice and starve the
            # client of this replica's reply).
            result, slot = self._anon_executed.pop(request.command)
            self._executed_requests.add(key)
            self._results[key] = (result, slot)
            self.send(
                request.client,
                Reply(
                    client=request.client,
                    request_id=request.request_id,
                    result=result,
                    slot=slot,
                ),
            )
            return
        if self._m_requests is not None:
            self._m_requests.inc()
        if self._monitor is not None or self._m_queue_delay is not None:
            self._arrival_times[key] = self.now
        self._pending.append(request)
        self._schedule_proposal_flush()

    def _handle_slot_message(self, sender: int, message: SlotMessage) -> None:
        instance = self._ensure_instance(message.slot)
        if instance is not None:
            instance._dispatch(sender, message.inner)

    def _handle_slot_decided(self, sender: int, message: SlotDecided) -> None:
        if message.slot in self._decided:
            return
        per_value = self._decide_gossip.setdefault(message.slot, {})
        senders = per_value.setdefault(message.value, set())
        senders.add(sender)
        if len(senders) >= one_correct(self.f):
            self._adopt_decision(message.slot, message.value)

    # ------------------------------------------------------------------
    # Slot lifecycle
    # ------------------------------------------------------------------

    def _unassigned_pending(self) -> List[Request]:
        """Pending requests not packed into any undecided slot's proposal
        and not already sitting in a decided-but-unexecuted batch."""
        assigned: Set[RequestKey] = set()
        for slot, keys in self._assigned.items():
            if slot not in self._decided:
                assigned.update(keys)
        # A slot adopted out of order (e.g. via gossip) is decided but not
        # yet executed, so its requests are still in _pending; re-proposing
        # them would burn a whole consensus instance on duplicates.
        for slot, value in self._decided.items():
            if slot > self._executed_upto and isinstance(value, Batch):
                assigned.update(value.keys)
        return [
            r for r in self._pending if (r.client, r.request_id) not in assigned
        ]

    def _next_unstarted_slot(self) -> int:
        slot = self._executed_upto + 1
        while slot in self._decided or slot in self._instances:
            slot += 1
        return slot

    def _make_batch(self, requests: List[Request], slot: int) -> Batch:
        self._assigned[slot] = tuple(
            (r.client, r.request_id) for r in requests
        )
        if self._arrival_times:
            # Queue delay (arrival -> packed into a batch) is the
            # monitor's backlog-drain baseline: it reflects *this
            # replica's* load, not the leader's speed — which is exactly
            # why it can serve as the degradation reference.
            now = self.now
            mon = self._monitor
            hist = self._m_queue_delay
            for r in requests:
                arrived = self._arrival_times.pop(
                    (r.client, r.request_id), None
                )
                if arrived is None:
                    continue
                delay = now - arrived
                if mon is not None:
                    mon.note_queue_delay(now, delay)
                if hist is not None:
                    hist.observe(delay)
        return Batch(
            entries=tuple(
                (r.client, r.request_id, r.command) for r in requests
            )
        )

    def _schedule_proposal_flush(self) -> None:
        """Coalesce same-instant request arrivals into one proposal round.

        Requests delivered at the same simulated time are separate events;
        proposing from each handler would scatter them over single-command
        slots.  A zero-delay timer runs after every delivery scheduled for
        this instant, so one flush sees the whole burst (and a crash
        cancels it like any other timer).
        """
        if not self.ctx.has_timer("proposal-flush"):
            self.ctx.set_timer("proposal-flush", 0.0, self._maybe_start_slots)

    def _maybe_start_slots(self) -> None:
        """Open consensus instances for pending work, up to the pipeline
        depth, packing up to ``batch_size`` commands per slot."""
        if self._catchup.active:
            # Mid state-transfer the next-free-slot estimate is stale:
            # proposing would re-run consensus for slots peers already
            # decided.  Pending work is proposed once catchup finishes.
            return
        cfg = self.replication
        while True:
            backlog = self._unassigned_pending()
            if not backlog:
                self._batch_deadline = None
                return
            if self.inflight_instances >= cfg.pipeline_depth:
                return
            if len(backlog) < cfg.batch_size and cfg.batch_timeout > 0:
                # Hold the under-full batch open until the deadline.
                if self._batch_deadline is None:
                    self._batch_deadline = self.now + cfg.batch_timeout
                    self.ctx.set_timer(
                        "batch-flush", cfg.batch_timeout, self._maybe_start_slots
                    )
                    return
                if self.now < self._batch_deadline:
                    if not self.ctx.has_timer("batch-flush"):
                        # A crash wiped the flush timer but left the
                        # deadline; re-arm or the batch never closes.
                        self.ctx.set_timer(
                            "batch-flush",
                            self._batch_deadline - self.now,
                            self._maybe_start_slots,
                        )
                    return
            if self._batch_deadline is not None:
                self._batch_deadline = None
                self.ctx.cancel_timer("batch-flush")
            slot = self._next_unstarted_slot()
            batch = self._make_batch(backlog[: cfg.batch_size], slot)
            self._create_instance(slot, batch)

    def _ensure_instance(self, slot: int) -> Optional[Any]:
        if slot in self._decided:
            return None
        instance = self._instances.get(slot)
        if instance is not None:
            return instance
        backlog = self._unassigned_pending()[: self.replication.batch_size]
        if backlog:
            input_value: Any = self._make_batch(backlog, slot)
        else:
            input_value = NOOP
        return self._create_instance(slot, input_value)

    def _create_instance(self, slot: int, input_value: Any) -> Any:
        if slot >= self.replication.max_slots:
            raise RuntimeError(
                f"slot {slot} exceeds max_slots={self.replication.max_slots}"
            )
        instance = self.instance_factory(self.pid, slot, input_value)
        ctx = _SlotContext(slot, self.ctx)
        instance.attach(ctx)
        instance.decision_hook = lambda value, s=slot: self._on_slot_decided(s, value)
        if self.storage is not None or self._recorder is not None:
            self._hook_view_changes(slot, instance)
        self._instances[slot] = instance
        mon = self._monitor
        if mon is not None:
            mon.note_slot_opened(slot, self.now)
        instance._start()
        if mon is not None and mon.view_floor > 1:
            # Every instance starts at view 1, so a demotion must carry
            # over to slots opened after it — otherwise each new slot
            # would re-elect the very leader the cluster just demoted.
            self._advocate_view(instance, mon.view_floor, slot=slot)
        return instance

    def _hook_view_changes(self, slot: int, instance: Any) -> None:
        """Record the slot's view changes in the WAL (durable replicas)
        and/or the flight recorder.

        Replay does not consume them — an unfinished instance restarts
        from view 1, which is always safe — but they are part of the
        durable record the log compaction accounts for (and recovery
        forensics: how contested a slot was before the crash).
        """
        inner = getattr(instance, "enter_view", None)
        if inner is None:
            return

        def recording_enter_view(view: int) -> None:
            if view > getattr(instance, "view", 0):
                if self.storage is not None:
                    self.storage.wal.append_view_change(slot, view)
                rec = self._recorder
                if rec is not None:
                    rec.record_view_change(self.pid, view, self.now, slot=slot)
            inner(view)

        instance.enter_view = recording_enter_view
        # The pacemaker captured the unwrapped bound method at instance
        # construction; repoint it or its view entries bypass the WAL.
        pacemaker = getattr(instance, "pacemaker", None)
        if pacemaker is not None and hasattr(pacemaker, "_enter_view"):
            pacemaker._enter_view = recording_enter_view

    def _on_slot_decided(self, slot: int, value: Any) -> None:
        self._adopt_decision(slot, value)

    def _adopt_decision(self, slot: int, value: Any) -> None:
        if slot in self._decided:
            return
        rec = self._recorder
        decide_id = (
            rec.record_decide(self.pid, value, self.now, slot=slot)
            if rec is not None
            else None
        )
        if self.storage is not None:
            # Write-ahead: the decision is on disk before it takes any
            # effect, so replay after a disk-retained crash reconstructs
            # exactly what this replica committed to.
            self.storage.wal.append_decide(slot, value)
            if rec is not None:
                rec.record_wal_append(
                    self.pid, slot, "decide", self.now, parent=decide_id
                )
        self._decided[slot] = value
        self._assigned.pop(slot, None)
        instance = self._instances.get(slot)
        if instance is not None and hasattr(instance, "pacemaker"):
            instance.pacemaker.stop()
        mon = self._monitor
        if mon is not None:
            latency = mon.note_slot_decided(slot, self.now)
            if latency is not None and self._m_slot_latency is not None:
                self._m_slot_latency.observe(latency)
            # Check on every decision: a slow-but-live leader keeps
            # decisions (not timeouts) flowing, so this is the signal
            # that actually fires for the degradation the paper's
            # timeout machinery never sees.
            self._maybe_vote_demotion()
        if not self._catchup.active:
            self.broadcast(SlotDecided(slot=slot, value=value), include_self=False)
        self._execute_ready()
        if self._catchup.active:
            # Gap slots during state transfer are not missing work — they
            # are decided slots still in flight from the peers' replies;
            # starting instances for them would re-run settled consensus.
            self._maybe_finish_catchup()
            return
        # An out-of-order decision (gossip, or a slot number steered far
        # ahead by a Byzantine sender) leaves gap slots below it: start
        # instances for them, or execution would never reach this slot —
        # its requests are parked (excluded from new proposals) and nobody
        # would ever propose the gaps.
        for gap in range(self._executed_upto + 1, slot):
            if gap not in self._decided and gap not in self._instances:
                self._ensure_instance(gap)
        self._maybe_start_slots()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _execute_ready(self) -> None:
        """Apply decided values strictly in slot order."""
        while (self._executed_upto + 1) in self._decided:
            slot = self._executed_upto + 1
            value = self._decided[slot]
            self._executed_upto = slot
            self._execute(slot, value)
            if self.storage is not None and self._checkpoints.boundary(slot):
                self._initiate_checkpoint(slot)

    def _execute(self, slot: int, value: Any) -> None:
        if isinstance(value, Batch):
            self._execute_batch(slot, value)
            return
        if value == NOOP:
            return
        self._execute_bare(slot, value)

    def _execute_batch(self, slot: int, batch: Batch) -> None:
        keys = set(batch.keys)
        self._pending = [
            r for r in self._pending if (r.client, r.request_id) not in keys
        ]
        for client, request_id, command in batch.entries:
            key = (client, request_id)
            # The batch carries the submitter's identity, so even a batch
            # adopted through gossip (request never seen) is recorded: a
            # late request is then a cache hit, not a re-proposal.
            self._seen_requests.add(key)
            if key in self._executed_requests:
                continue  # duplicate decision of a re-proposed command
            self._executed_requests.add(key)
            result = self.state_machine.apply(command)
            self.applied_keys.append(key)
            if self._m_executed is not None:
                self._m_executed.inc()
            self._results[key] = (result, slot)
            self.send(
                client,
                Reply(
                    client=client,
                    request_id=request_id,
                    result=result,
                    slot=slot,
                ),
            )

    def _execute_bare(self, slot: int, command: Command) -> None:
        """Legacy path: a slot decided a bare command (no identity)."""
        request = self._find_request(command)
        if request is not None:
            key = (request.client, request.request_id)
            self._pending = [
                r for r in self._pending if (r.client, r.request_id) != key
            ]
            if key in self._executed_requests:
                return  # duplicate decision of a re-proposed command
            self._executed_requests.add(key)
            result = self.state_machine.apply(command)
            self.applied_keys.append(key)
            self._results[key] = (result, slot)
            self.send(
                request.client,
                Reply(
                    client=request.client,
                    request_id=request.request_id,
                    result=result,
                    slot=slot,
                ),
            )
        else:
            # A command from a client we never heard from directly; record
            # it so the late request adopts this execution (dedup by
            # command key) instead of re-proposing.
            result = self.state_machine.apply(command)
            self.applied_keys.append(("anon", slot))
            self._anon_executed[command] = (result, slot)

    def _find_request(self, command: Command) -> Optional[Request]:
        for request in self._pending:
            if request.command == command:
                return request
        return None

    # ------------------------------------------------------------------
    # Checkpoints (durable replicas only)
    # ------------------------------------------------------------------

    def _initiate_checkpoint(self, slot: int) -> None:
        """Snapshot the state machine after executing ``slot`` and vote.

        The snapshot is kept pending until ``checkpoint_quorum`` votes
        agree on its digest — state keeps advancing meanwhile, so the
        vote must bind the state *as of this slot*, not as of whenever
        the quorum completes.
        """
        snapshot = self.state_machine.snapshot()
        digest = state_digest(snapshot)
        self._checkpoints.record_local(slot, snapshot, digest)
        signature = (
            self._signer.sign(checkpoint_payload(slot, digest))
            if self._signer is not None
            else None
        )
        vote = CheckpointVote(slot=slot, digest=digest, signature=signature)
        if self._recorder is not None:
            # The broadcast excludes self, so the local tally needs its
            # own event for the quorum's causal record to be complete.
            self._recorder.record_checkpoint_vote_local(self.pid, slot, self.now)
        self.broadcast(vote, include_self=False)
        self._record_checkpoint_vote(self.pid, vote, verify=False)

    def _handle_checkpoint_vote(self, sender: int, vote: CheckpointVote) -> None:
        self._record_checkpoint_vote(sender, vote, verify=True)

    def _record_checkpoint_vote(
        self, sender: int, vote: CheckpointVote, verify: bool
    ) -> None:
        if self.storage is None:
            return
        if vote.slot <= self._checkpoints.stable_slot:
            return
        if verify and self._registry is not None:
            signature = vote.signature
            if (
                signature is None
                or signature.signer != sender
                or not self._registry.verify(
                    signature, checkpoint_payload(vote.slot, vote.digest)
                )
            ):
                return
        self._checkpoints.record_vote(
            vote.slot, vote.digest, sender, vote.signature
        )
        self._maybe_stabilize(vote.slot, vote.digest)

    def _maybe_stabilize(self, slot: int, digest: str) -> None:
        ready = self._checkpoints.ready(slot, digest, self.checkpoint_quorum)
        if ready is None:
            return
        snapshot, signatures = ready
        cert = (
            CheckpointCertificate(slot=slot, digest=digest, signatures=signatures)
            if self._registry is not None
            else None
        )
        self._make_stable(
            Checkpoint(slot=slot, state=snapshot, digest=digest, cert=cert)
        )

    def _make_stable(self, checkpoint: Checkpoint) -> None:
        """Persist a stable checkpoint and compact everything below it."""
        self._checkpoints.install_stable(checkpoint)
        rec = self._recorder
        stable_id = (
            rec.record_checkpoint_stable(self.pid, checkpoint.slot, self.now)
            if rec is not None
            else None
        )
        truncated = self.storage.install_checkpoint(checkpoint)
        if rec is not None and truncated:
            rec.record_wal_truncate(
                self.pid, checkpoint.slot, self.now, parent=stable_id
            )
        self._prune_upto(checkpoint.slot)

    def _prune_upto(self, slot: int) -> None:
        """Drop execution/result caches the stable checkpoint covers.

        The request-key dedup sets (``_seen_requests`` /
        ``_executed_requests``) survive: they are the safety net against
        re-executing a retransmitted command, and they grow with request
        identity, not with payloads.
        """
        self._results = {
            key: entry for key, entry in self._results.items() if entry[1] > slot
        }
        self._anon_executed = {
            command: entry
            for command, entry in self._anon_executed.items()
            if entry[1] > slot
        }
        for stale in [s for s in self._decide_gossip if s <= slot]:
            del self._decide_gossip[stale]

    # ------------------------------------------------------------------
    # Leader demotion (performance monitor; see repro.obs.monitor)
    # ------------------------------------------------------------------

    def _advocate_view(
        self, instance: Any, view: int, slot: Optional[int] = None
    ) -> None:
        """Push one consensus instance toward ``view``.

        Preferably through its pacemaker's wish amplification — replicas
        that reach the demotion quorum at different times still enter
        together on ``2f + 1`` wishes, and stragglers are pulled along by
        ``f + 1`` amplification.  Instances without a pacemaker fall back
        to a direct (idempotent, monotone) view entry.
        """
        if self._recorder is not None:
            self._recorder.record_advocate(self.pid, view, self.now, slot=slot)
        pacemaker = getattr(instance, "pacemaker", None)
        if pacemaker is not None and hasattr(pacemaker, "advocate"):
            pacemaker.advocate(view)
            return
        enter = getattr(instance, "enter_view", None)
        if enter is not None:
            enter(view)

    def _maybe_vote_demotion(self) -> None:
        """Broadcast a signed demotion vote if the window says the leader
        degraded; one vote per target view, rate-limited by the monitor's
        cooldown."""
        mon = self._monitor
        if mon is None or not mon.should_demote(self.now):
            return
        view = mon.view_floor + 1
        if view in self._demotion_voted:
            return
        target = (view - 2) % self.n  # = leader_of(view - 1), the deposed
        signature = (
            self._signer.sign(demotion_payload(view, target))
            if self._signer is not None
            else None
        )
        vote = DemotionVote(view=view, target=target, signature=signature)
        self._demotion_voted.add(view)
        mon.note_vote_cast(self.now)
        if self._m_demotion_votes is not None:
            self._m_demotion_votes.inc()
        if self._recorder is not None:
            # include_self=False: our own vote has no network event.
            self._recorder.record_demotion_vote_local(self.pid, view, self.now)
        self.broadcast(vote, include_self=False)
        self._record_demotion_vote(self.pid, vote, verify=False)

    def _handle_demotion_vote(self, sender: int, vote: DemotionVote) -> None:
        self._record_demotion_vote(sender, vote, verify=True)

    def _record_demotion_vote(
        self, sender: int, vote: DemotionVote, verify: bool
    ) -> None:
        mon = self._monitor
        if mon is None:
            return
        if vote.view <= mon.view_floor:
            return  # stale: that demotion already happened
        if vote.target != (vote.view - 2) % self.n:
            return  # malformed: view does not succeed the named leader
        if verify and self._registry is not None:
            signature = vote.signature
            if (
                signature is None
                or signature.signer != sender
                or not self._registry.verify(
                    signature, demotion_payload(vote.view, vote.target)
                )
            ):
                return
        senders = self._demotion_votes.setdefault(vote.view, set())
        senders.add(sender)
        if len(senders) >= self.demotion_quorum:
            self._apply_demotion(vote.view)

    def _apply_demotion(self, view: int) -> None:
        """A ``2f + 1`` demotion quorum formed: raise the view floor and
        steer every undecided instance (and, via ``_create_instance``,
        every future one) past the demoted leader."""
        mon = self._monitor
        if mon is None or view <= mon.view_floor:
            return
        mon.note_demotion(self.now, view)
        if self._m_demotions is not None:
            self._m_demotions.inc()
        if self._recorder is not None:
            self._recorder.record_demotion(self.pid, view, self.now)
        for stale in [v for v in self._demotion_votes if v <= view]:
            del self._demotion_votes[stale]
        for slot, instance in list(self._instances.items()):
            if slot not in self._decided:
                self._advocate_view(instance, view, slot=slot)

    # ------------------------------------------------------------------
    # Catchup (peer state transfer)
    # ------------------------------------------------------------------

    def _handle_catchup_request(self, sender: int, request: CatchupRequest) -> None:
        """Serve our stable checkpoint + decided suffix to a peer.

        A durable replica answers from storage (checkpoint + WAL — the
        authoritative durable record); a legacy replica still answers
        from its in-memory log, so mixed deployments can host laggards.
        """
        low = request.low_slot
        if self.storage is not None:
            checkpoint = self.storage.checkpoint
            if checkpoint is not None and checkpoint.slot < low:
                checkpoint = None
            entries = tuple(
                (slot, value)
                for slot, value in self.storage.wal.decides()
                if slot >= low
            )
        else:
            checkpoint = None
            entries = tuple(
                (slot, value)
                for slot, value in sorted(self._decided.items())
                if slot >= low
            )
        high = max(self._decided, default=-1)
        self.send(
            sender,
            CatchupReply(
                low_slot=low,
                high_slot=high,
                checkpoint=checkpoint,
                entries=entries,
            ),
        )

    def _handle_catchup_reply(self, sender: int, reply: CatchupReply) -> None:
        if not self._catchup.active or sender == self.pid or sender >= self.n:
            return
        self._catchup.record_reply(sender, reply)
        checkpoint = reply.checkpoint
        if (
            checkpoint is not None
            and checkpoint.slot > self._executed_upto
            and self._checkpoint_acceptable(checkpoint)
        ):
            self._install_remote_checkpoint(checkpoint)
        for slot, value in reply.entries:
            if slot <= self._executed_upto or slot in self._decided:
                continue
            # Each reply's (slot, value) claims join the same f+1-matching
            # tally as live SlotDecided gossip: at most f responders lie.
            self._handle_slot_decided(sender, SlotDecided(slot=slot, value=value))
        self._maybe_finish_catchup()

    def _checkpoint_acceptable(self, checkpoint: Checkpoint) -> bool:
        """Whether a peer-shipped checkpoint may be installed.

        The shipped state must re-hash to the claimed digest (a valid
        certificate over a tampered payload proves nothing), and the
        claim needs either a valid ``2f + 1`` certificate or — when the
        deployment is unsigned — ``f + 1`` repliers agreeing on it.
        """
        if state_digest(checkpoint.state) != checkpoint.digest:
            return False
        if self._registry is not None:
            return checkpoint_certificate_valid(
                checkpoint.cert,
                checkpoint.slot,
                checkpoint.digest,
                self._registry,
                self.checkpoint_quorum,
            )
        claims = self._catchup.checkpoint_claims(
            checkpoint.slot, checkpoint.digest
        )
        return len(claims) >= one_correct(self.f)

    def _install_remote_checkpoint(self, checkpoint: Checkpoint) -> None:
        """Jump the replica's execution to a peer's stable checkpoint."""
        self.state_machine.restore(checkpoint.state)
        # The state machine restarted from a snapshot: the applications
        # that produced the snapshot happened on other replicas, so the
        # per-replica application timeline starts over (see the
        # no-duplicate-execution oracle, which judges one timeline).
        self.applied_keys.clear()
        self._executed_upto = max(self._executed_upto, checkpoint.slot)
        self._make_stable(checkpoint)
        self._execute_ready()

    def _start_catchup(self) -> None:
        low = self._executed_upto + 1
        self._catchup.begin(low)
        self.broadcast(CatchupRequest(low_slot=low), include_self=False)
        retry = self.durability.catchup_retry if self.durability else 20.0
        self.ctx.set_timer("catchup-retry", retry, self._retry_catchup)

    def _retry_catchup(self) -> None:
        if self._catchup.active:
            self._start_catchup()

    def _maybe_finish_catchup(self) -> None:
        """Declare catchup done once we reached the trusted target.

        The target is the ``(f + 1)``-th highest ``high_slot`` reported:
        at least one of the top ``f + 1`` reports is from a correct
        replica, so it is reachable, and ``f`` inflated Byzantine
        reports cannot raise it beyond every correct replica's progress.
        """
        if not self._catchup.active:
            return
        target = self._catchup.target(self.f)
        if target is None or self._executed_upto < target:
            return
        self._catchup.finish(self.now)
        self.ctx.cancel_timer("catchup-retry")
        # Re-announce what we adopted during transfer (suppressed while
        # active) is unnecessary — peers already have it.  Just resume
        # proposing the client work that queued up meanwhile.
        self._maybe_start_slots()

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------

    def wipe_storage(self) -> None:
        """The disk-loss fault: called while crashed, before recovery."""
        if self.storage is not None:
            self.storage.wipe()

    def on_recover(self) -> None:
        """Rebuild from storage instead of resurrecting volatile state.

        Legacy replicas (no storage) keep the old model — in-memory
        state survives, missed messages are simply lost.  Durable
        replicas discard *everything* volatile, restore the stable
        checkpoint, replay the WAL suffix, and then run the catchup
        protocol to fetch whatever the cluster decided while they were
        down (all of it, when the disk was lost with the crash).
        """
        if self.storage is None:
            return
        self._rebuild_from_storage()
        self._start_catchup()

    def _rebuild_from_storage(self) -> None:
        # -- drop every piece of volatile state
        self._instances.clear()
        self._pending.clear()
        self._seen_requests.clear()
        self._decided.clear()
        self._decide_gossip.clear()
        self._results.clear()
        self._executed_requests.clear()
        self._anon_executed.clear()
        self._assigned.clear()
        self._batch_deadline = None
        self.applied_keys.clear()
        self._arrival_times.clear()
        self._demotion_votes.clear()
        self._checkpoints.reset()
        # -- restore the durable prefix
        checkpoint = self.storage.checkpoint
        if checkpoint is not None:
            self.state_machine.restore(checkpoint.state)
            self._executed_upto = checkpoint.slot
            self._checkpoints.install_stable(checkpoint)
        else:
            self.state_machine.restore(type(self.state_machine)().snapshot())
            self._executed_upto = -1
        # -- replay the WAL suffix: adopt, then execute in slot order.
        #    Replies are re-sent (clients deduplicate); re-announcing via
        #    gossip is skipped — peers decided these slots long ago.
        for slot, value in self.storage.wal.decides():
            if slot > self._executed_upto and slot not in self._decided:
                self._decided[slot] = value
        self._execute_ready()
