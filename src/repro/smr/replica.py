"""State machine replication on top of the consensus core.

Each log *slot* is decided by an independent instance of the paper's
consensus protocol; replicas multiplex the instances over one network by
wrapping every protocol message in a :class:`SlotMessage`.  The design:

* clients broadcast :class:`Request` messages; every replica queues them
  (deduplicating by ``(client, request_id)``);
* a replica starts the consensus instance for the lowest undecided slot
  as soon as it has pending commands; the instance's input is the
  replica's oldest pending command (``NOOP`` if none), so whoever ends up
  leading the slot — including after view changes when the original
  leader crashed — proposes real work;
* decisions are applied to the state machine strictly in slot order and
  answered to clients with :class:`Reply`; a client accepts a result once
  ``f + 1`` replicas agree on it;
* replicas gossip :class:`SlotDecided` notifications; ``f + 1`` matching
  notifications are adopted as a decision (at most ``f`` Byzantine, so at
  least one sender is correct), which lets lagging replicas catch up and
  lets instances stop their pacemakers after deciding.

The SMR layer is deliberately protocol-agnostic: it accepts any factory
producing a :class:`~repro.core.protocol.DecidingProcess`-compatible
consensus instance (ours, or a baseline for comparison benchmarks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..core.config import ProtocolConfig
from ..core.generalized import GeneralizedFBFTProcess
from ..crypto.keys import KeyRegistry
from ..sim.process import Process, ProcessContext
from .kvstore import NOOP, Command, StateMachine

__all__ = [
    "Request",
    "Reply",
    "SlotMessage",
    "SlotDecided",
    "SMRReplica",
    "fbft_instance_factory",
]


@dataclass(frozen=True)
class Request:
    """Client command submission."""

    client: int
    request_id: int
    command: Command


@dataclass(frozen=True)
class Reply:
    """Replica's answer after executing the command."""

    client: int
    request_id: int
    result: Any
    slot: int


@dataclass(frozen=True)
class SlotMessage:
    """A consensus protocol message scoped to one log slot."""

    slot: int
    inner: Any


@dataclass(frozen=True)
class SlotDecided:
    """Decision gossip: ``f + 1`` matching ones are adopted."""

    slot: int
    value: Any


class _SlotContext(ProcessContext):
    """Process context adapter that scopes one consensus instance to a slot.

    Outgoing payloads are wrapped in :class:`SlotMessage`; timer names are
    prefixed so instances do not trample each other's timers.
    """

    def __init__(self, slot: int, parent: ProcessContext) -> None:
        super().__init__(parent.pid, parent.sim, parent.network)
        self._slot = slot
        self._parent = parent

    def send(self, dst: int, payload: Any) -> None:
        if self.halted or self._parent.halted:
            return
        self.network.send(self.pid, dst, SlotMessage(self._slot, payload))

    def broadcast(self, payload: Any, include_self: bool = True) -> None:
        if self.halted or self._parent.halted:
            return
        self.network.broadcast(
            self.pid, SlotMessage(self._slot, payload), include_self=include_self
        )

    def set_timer(self, name: str, delay: float, callback) -> Any:
        return super().set_timer(f"slot{self._slot}:{name}", delay, callback)

    def cancel_timer(self, name: str) -> None:
        super().cancel_timer(f"slot{self._slot}:{name}")

    def has_timer(self, name: str) -> bool:
        return super().has_timer(f"slot{self._slot}:{name}")


#: Builds one consensus instance: (pid, slot, input_value) -> process.
InstanceFactory = Callable[[int, int, Any], Any]


def fbft_instance_factory(
    config: ProtocolConfig,
    registry: KeyRegistry,
    base_timeout: float = 12.0,
) -> InstanceFactory:
    """Default factory: one generalized-protocol instance per slot."""

    def factory(pid: int, slot: int, input_value: Any) -> GeneralizedFBFTProcess:
        return GeneralizedFBFTProcess(
            pid,
            config,
            registry,
            input_value,
            base_timeout=base_timeout,
        )

    return factory


class SMRReplica(Process):
    """One replica of the replicated state machine."""

    def __init__(
        self,
        pid: int,
        n: int,
        f: int,
        state_machine: StateMachine,
        instance_factory: InstanceFactory,
        max_slots: int = 10_000,
    ) -> None:
        super().__init__(pid)
        self.n = n
        self.f = f
        self.state_machine = state_machine
        self.instance_factory = instance_factory
        self.max_slots = max_slots
        self._instances: Dict[int, Any] = {}
        self._pending: List[Request] = []
        self._seen_requests: Set[Tuple[int, int]] = set()
        self._decided: Dict[int, Command] = {}
        self._decide_gossip: Dict[int, Dict[Any, Set[int]]] = {}
        self._executed_upto = -1  # highest contiguously applied slot
        self._results: Dict[Tuple[int, int], Tuple[Any, int]] = {}
        self._executed_requests: Set[Tuple[int, int]] = set()

    # ------------------------------------------------------------------
    # Introspection (used by tests and examples)
    # ------------------------------------------------------------------

    @property
    def log(self) -> Tuple[Tuple[int, Command], ...]:
        """Decided (slot, command) pairs in slot order."""
        return tuple(sorted(self._decided.items()))

    @property
    def executed_upto(self) -> int:
        return self._executed_upto

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def decided_command(self, slot: int) -> Optional[Command]:
        return self._decided.get(slot)

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------

    def on_message(self, sender: int, payload: Any) -> None:
        if isinstance(payload, Request):
            self._handle_request(payload)
        elif isinstance(payload, SlotMessage):
            self._handle_slot_message(sender, payload)
        elif isinstance(payload, SlotDecided):
            self._handle_slot_decided(sender, payload)

    def _handle_request(self, request: Request) -> None:
        key = (request.client, request.request_id)
        if key in self._seen_requests:
            # Retransmission: if already executed, re-reply immediately.
            if key in self._results:
                result, slot = self._results[key]
                self.send(
                    request.client,
                    Reply(
                        client=request.client,
                        request_id=request.request_id,
                        result=result,
                        slot=slot,
                    ),
                )
            return
        self._seen_requests.add(key)
        self._pending.append(request)
        self._maybe_start_next_slot()

    def _handle_slot_message(self, sender: int, message: SlotMessage) -> None:
        instance = self._ensure_instance(message.slot)
        if instance is not None:
            instance._dispatch(sender, message.inner)

    def _handle_slot_decided(self, sender: int, message: SlotDecided) -> None:
        if message.slot in self._decided:
            return
        per_value = self._decide_gossip.setdefault(message.slot, {})
        senders = per_value.setdefault(message.value, set())
        senders.add(sender)
        if len(senders) >= self.f + 1:
            self._adopt_decision(message.slot, message.value)

    # ------------------------------------------------------------------
    # Slot lifecycle
    # ------------------------------------------------------------------

    def _next_undecided_slot(self) -> int:
        slot = self._executed_upto + 1
        while slot in self._decided:
            slot += 1
        return slot

    def _maybe_start_next_slot(self) -> None:
        """Start the consensus instance for the lowest undecided slot."""
        if not self._pending:
            return
        slot = self._next_undecided_slot()
        self._ensure_instance(slot)

    def _ensure_instance(self, slot: int) -> Optional[Any]:
        if slot in self._decided:
            return None
        instance = self._instances.get(slot)
        if instance is not None:
            return instance
        if slot >= self.max_slots:
            raise RuntimeError(f"slot {slot} exceeds max_slots={self.max_slots}")
        input_value = self._pending[0].command if self._pending else NOOP
        instance = self.instance_factory(self.pid, slot, input_value)
        ctx = _SlotContext(slot, self.ctx)
        instance.attach(ctx)
        instance.decision_hook = lambda value, s=slot: self._on_slot_decided(s, value)
        self._instances[slot] = instance
        instance._start()
        return instance

    def _on_slot_decided(self, slot: int, value: Command) -> None:
        self._adopt_decision(slot, value)

    def _adopt_decision(self, slot: int, value: Command) -> None:
        if slot in self._decided:
            return
        self._decided[slot] = value
        instance = self._instances.get(slot)
        if instance is not None and hasattr(instance, "pacemaker"):
            instance.pacemaker.stop()
        self.broadcast(SlotDecided(slot=slot, value=value), include_self=False)
        self._execute_ready()
        self._maybe_start_next_slot()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _execute_ready(self) -> None:
        """Apply decided commands strictly in slot order."""
        while (self._executed_upto + 1) in self._decided:
            slot = self._executed_upto + 1
            command = self._decided[slot]
            self._executed_upto = slot
            self._execute(slot, command)

    def _execute(self, slot: int, command: Command) -> None:
        request = self._find_request(command)
        if request is not None:
            key = (request.client, request.request_id)
            self._pending = [
                r for r in self._pending if (r.client, r.request_id) != key
            ]
            if key in self._executed_requests:
                return  # duplicate decision of a re-proposed command
            self._executed_requests.add(key)
            result = self.state_machine.apply(command)
            self._results[key] = (result, slot)
            self.send(
                request.client,
                Reply(
                    client=request.client,
                    request_id=request.request_id,
                    result=result,
                    slot=slot,
                ),
            )
        elif command != NOOP:
            # A command from a client we never heard from directly.
            self.state_machine.apply(command)

    def _find_request(self, command: Command) -> Optional[Request]:
        for request in self._pending:
            if request.command == command:
                return request
        return None
