"""State machines to replicate.

The paper's motivation (Section 1.1) is state machine replication: agree
on each next command and every replica ends up executing the same
sequence.  Commands are plain tuples so they can travel through the
simulated network and be compared/hashed for deduplication.
"""

from __future__ import annotations

from typing import Any, Dict, List, Protocol, Tuple

__all__ = ["Command", "NOOP", "StateMachine", "KVStore", "AppendLog", "Counter"]

#: Commands are tuples: ("set", key, value), ("get", key), ("del", key), ...
Command = Tuple[Any, ...]

#: The do-nothing command a leader proposes when it has nothing pending.
NOOP: Command = ("noop",)


class StateMachine(Protocol):
    """Anything with a deterministic ``apply``.

    Durable replicas (``repro.storage``) additionally require
    ``snapshot()`` (a canonical-serializable copy of the full state) and
    ``restore(state)`` (the exact inverse): checkpoints ship snapshots
    between replicas, so two machines restored from the same snapshot
    must be indistinguishable under further ``apply`` calls.
    """

    def apply(self, command: Command) -> Any:  # pragma: no cover - protocol
        ...


class KVStore:
    """A dictionary with SET/GET/DEL commands — the canonical SMR payload.

    >>> store = KVStore()
    >>> store.apply(("set", "k", 1))
    'OK'
    >>> store.apply(("get", "k"))
    1
    >>> store.apply(("del", "k"))
    'OK'
    >>> store.apply(("get", "k")) is None
    True
    """

    def __init__(self) -> None:
        self._data: Dict[Any, Any] = {}
        self.applied_count = 0

    def apply(self, command: Command) -> Any:
        op = command[0]
        self.applied_count += 1
        if op == "noop":
            return None
        if op == "set":
            _, key, value = command
            self._data[key] = value
            return "OK"
        if op == "get":
            _, key = command
            return self._data.get(key)
        if op == "del":
            _, key = command
            self._data.pop(key, None)
            return "OK"
        raise ValueError(f"unknown KV command {command!r}")

    def snapshot(self) -> Dict[Any, Any]:
        """A copy of the full store (checkpoint payload)."""
        return dict(self._data)

    def restore(self, state: Dict[Any, Any]) -> None:
        """Replace the store's contents with a snapshot's.

        ``applied_count`` is a volatile metric of *this process's* apply
        calls, not part of the replicated state, so it is left alone.
        """
        self._data = dict(state)


class AppendLog:
    """Appends every non-noop command — handy for checking replica order."""

    def __init__(self) -> None:
        self.entries: List[Command] = []
        self.applied_count = 0

    def apply(self, command: Command) -> Any:
        if command == NOOP:
            return None
        self.applied_count += 1
        self.entries.append(command)
        return len(self.entries) - 1

    def snapshot(self) -> List[Command]:
        return list(self.entries)

    def restore(self, state: List[Command]) -> None:
        self.entries = [tuple(entry) for entry in state]


class Counter:
    """Increment/decrement/read — the smallest useful state machine."""

    def __init__(self) -> None:
        self.value = 0
        self.applied_count = 0

    def apply(self, command: Command) -> Any:
        op = command[0]
        if op != "noop":
            self.applied_count += 1
        if op == "noop":
            return None
        if op == "inc":
            amount = command[1] if len(command) > 1 else 1
            self.value += amount
            return self.value
        if op == "dec":
            amount = command[1] if len(command) > 1 else 1
            self.value -= amount
            return self.value
        if op == "read":
            return self.value
        raise ValueError(f"unknown counter command {command!r}")

    def snapshot(self) -> Dict[str, int]:
        return {"value": self.value}

    def restore(self, state: Dict[str, int]) -> None:
        self.value = state["value"]
