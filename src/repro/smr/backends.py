"""Per-slot consensus backends the SMR engine can replicate over.

One construction site for the ``(config, registry, instance_factory)``
triple, shared by the scenario adapters (``fbft-smr`` / ``pbft-smr``)
and the throughput harness, so every consumer measures the same engine.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from ..crypto.keys import KeyRegistry
from .replica import InstanceFactory, fbft_instance_factory

__all__ = ["SMR_BACKENDS", "smr_backend"]

#: Backend names accepted by :func:`smr_backend`.
SMR_BACKENDS = ("fbft", "pbft")


def smr_backend(
    backend: str,
    n: int,
    f: int,
    t: int = 1,
    base_timeout: float = 12.0,
) -> Tuple[Any, Optional[KeyRegistry], InstanceFactory]:
    """Build ``(config, registry-or-None, per-slot instance factory)``.

    ``fbft`` is this paper's generalized protocol (needs the registry for
    its signatures); ``pbft`` is the unsigned baseline, so its registry
    slot is ``None``.
    """
    if backend == "fbft":
        from ..core.config import ProtocolConfig

        config = ProtocolConfig(n=n, f=f, t=t)
        registry = KeyRegistry.for_processes(config.process_ids)
        factory = fbft_instance_factory(
            config, registry, base_timeout=base_timeout
        )
        return config, registry, factory
    if backend == "pbft":
        from ..baselines.pbft import PBFTConfig, PBFTProcess

        config = PBFTConfig(n=n, f=f)

        def factory(pid: int, slot: int, input_value: Any) -> PBFTProcess:
            return PBFTProcess(pid, config, input_value, base_timeout=base_timeout)

        return config, None, factory
    raise ValueError(
        f"unknown SMR backend {backend!r}; known: {', '.join(SMR_BACKENDS)}"
    )
