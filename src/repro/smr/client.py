"""SMR client: submits commands, accepts f + 1 matching replies.

A client is itself a simulated process.  It broadcasts each command to
every replica (so any current or future leader learns it), then waits for
``f + 1`` replicas to report the same result for the same request — at
most ``f`` replicas are Byzantine, so at least one of those replies comes
from a correct replica that really executed the command.  Unanswered
requests are retransmitted with exponential backoff.

Closed-loop clients keep up to ``window`` requests in flight (the knob
the throughput harness turns to saturate the replicas' batches and
pipeline); open-loop clients submit everything immediately at start.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..core.quorums import one_correct
from ..sim.process import Process
from .kvstore import Command
from .replica import Reply, Request

__all__ = ["CommandOutcome", "SMRClient"]


@dataclass
class CommandOutcome:
    """Lifecycle of one submitted command."""

    request_id: int
    command: Command
    submitted_at: float
    completed_at: Optional[float] = None
    result: Any = None
    slot: Optional[int] = None

    @property
    def completed(self) -> bool:
        return self.completed_at is not None

    @property
    def latency(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at


class SMRClient(Process):
    """Submits a workload of commands to a replica group."""

    def __init__(
        self,
        pid: int,
        replica_pids: Sequence[int],
        f: int,
        retry_timeout: float = 40.0,
        window: int = 1,
        on_complete: Optional[Callable[[CommandOutcome], None]] = None,
    ) -> None:
        super().__init__(pid)
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.replica_pids = tuple(replica_pids)
        self.f = f
        self.retry_timeout = retry_timeout
        self.window = window
        self.on_complete = on_complete
        self._next_request_id = 0
        self.outcomes: Dict[int, CommandOutcome] = {}
        self._reply_votes: Dict[int, Dict[Tuple[Any, int], Set[int]]] = {}
        self._workload: List[Command] = []
        self._inflight: Set[int] = set()
        self._closed_loop = True

    # ------------------------------------------------------------------
    # Workload driving
    # ------------------------------------------------------------------

    def load_workload(self, commands: Sequence[Command], closed_loop: bool = True) -> None:
        """Queue commands; closed-loop keeps up to ``window`` in flight,
        open-loop submits everything immediately at start."""
        self._workload = list(commands)
        self._closed_loop = closed_loop

    def on_start(self) -> None:
        if not self._workload:
            return
        if self._closed_loop:
            self._fill_window()
        else:
            while self._workload:
                self.submit(self._workload.pop(0))

    def _fill_window(self) -> None:
        while self._workload and len(self._inflight) < self.window:
            self._inflight.add(self.submit(self._workload.pop(0)))

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(self, command: Command) -> int:
        """Submit one command; returns its request id."""
        request_id = self._next_request_id
        self._next_request_id += 1
        self.outcomes[request_id] = CommandOutcome(
            request_id=request_id, command=command, submitted_at=self.now
        )
        self._send_request(request_id, self.retry_timeout)
        return request_id

    def _send_request(self, request_id: int, backoff: float) -> None:
        outcome = self.outcomes[request_id]
        if outcome.completed:
            return
        request = Request(
            client=self.pid, request_id=request_id, command=outcome.command
        )
        send = self.send
        for replica in self.replica_pids:
            send(replica, request)
        # Timer keys are ("retry", id) tuples, not formatted strings: one
        # timer is armed per request send, so the f-string was hot-path.
        self.ctx.set_timer(
            ("retry", request_id),
            backoff,
            lambda: self._send_request(request_id, backoff * 2),
        )

    # ------------------------------------------------------------------
    # Replies
    # ------------------------------------------------------------------

    def on_message(self, sender: int, payload: Any) -> None:
        if not isinstance(payload, Reply):
            return
        if sender not in self.replica_pids or payload.client != self.pid:
            return
        outcome = self.outcomes.get(payload.request_id)
        if outcome is None or outcome.completed:
            return
        votes = self._reply_votes.setdefault(payload.request_id, {})
        key = (payload.result, payload.slot)
        senders = votes.setdefault(key, set())
        senders.add(sender)
        if len(senders) >= one_correct(self.f):
            outcome.completed_at = self.now
            outcome.result = payload.result
            outcome.slot = payload.slot
            self.ctx.cancel_timer(("retry", payload.request_id))
            self._inflight.discard(payload.request_id)
            if self.on_complete is not None:
                self.on_complete(outcome)
            if self._closed_loop:
                self._fill_window()

    # ------------------------------------------------------------------
    @property
    def completed_count(self) -> int:
        return sum(1 for o in self.outcomes.values() if o.completed)

    @property
    def all_completed(self) -> bool:
        return bool(self.outcomes) and all(
            o.completed for o in self.outcomes.values()
        ) and not self._workload

    def latencies(self) -> List[float]:
        return [
            o.latency for o in self.outcomes.values() if o.latency is not None
        ]
