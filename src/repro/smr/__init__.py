"""State machine replication built on the consensus core (Section 1.1)."""

from .client import CommandOutcome, SMRClient
from .kvstore import NOOP, AppendLog, Command, Counter, KVStore, StateMachine
from .replica import (
    Reply,
    Request,
    SlotDecided,
    SlotMessage,
    SMRReplica,
    fbft_instance_factory,
)

__all__ = [
    "AppendLog",
    "Command",
    "CommandOutcome",
    "Counter",
    "KVStore",
    "NOOP",
    "Reply",
    "Request",
    "SMRClient",
    "SMRReplica",
    "SlotDecided",
    "SlotMessage",
    "StateMachine",
    "fbft_instance_factory",
]
