"""State machine replication built on the consensus core (Section 1.1)."""

from .backends import SMR_BACKENDS, smr_backend
from .client import CommandOutcome, SMRClient
from .kvstore import NOOP, AppendLog, Command, Counter, KVStore, StateMachine
from .replica import (
    Batch,
    Reply,
    Request,
    SlotDecided,
    SlotMessage,
    SMRReplica,
    commands_of,
    fbft_instance_factory,
)

__all__ = [
    "AppendLog",
    "Batch",
    "Command",
    "CommandOutcome",
    "Counter",
    "KVStore",
    "NOOP",
    "Reply",
    "SMR_BACKENDS",
    "smr_backend",
    "Request",
    "SMRClient",
    "SMRReplica",
    "SlotDecided",
    "SlotMessage",
    "StateMachine",
    "commands_of",
    "fbft_instance_factory",
]
