"""Diff two flight dumps.

Event ids are assignment order and may differ between runs that
interleave differently, so the diff compares **normalized** events —
``(time, phase, kind, pid, peer, slot, view, detail)`` — in record
order.  Two runs of the same deterministic schedule (pure vs accel
backend, or a re-run of a fuzz reproducer) diff empty; a failing seed
vs its shrunk form shows exactly where the executions part ways.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from ..obs.recorder import FlightEvent
from .dump import FlightDump
from .timeline import format_event

__all__ = ["normalize", "diff_dumps", "render_diff"]

NormalizedEvent = Tuple[Any, ...]


def normalize(event: FlightEvent) -> NormalizedEvent:
    return (
        event.time,
        event.phase,
        event.kind,
        event.pid,
        event.peer,
        event.slot,
        event.view,
        event.detail,
    )


def diff_dumps(
    a: FlightDump, b: FlightDump
) -> Optional[Tuple[int, Optional[FlightEvent], Optional[FlightEvent]]]:
    """First divergence as ``(index, event_a, event_b)``; ``None`` when
    the normalized event sequences are identical."""
    events_a, events_b = a.events, b.events
    for index in range(min(len(events_a), len(events_b))):
        if normalize(events_a[index]) != normalize(events_b[index]):
            return index, events_a[index], events_b[index]
    if len(events_a) != len(events_b):
        index = min(len(events_a), len(events_b))
        return (
            index,
            events_a[index] if index < len(events_a) else None,
            events_b[index] if index < len(events_b) else None,
        )
    return None


def _kind_counts(dump: FlightDump) -> dict:
    counts: dict = {}
    for event in dump.events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    return counts


def render_diff(
    a: FlightDump, b: FlightDump, label_a: str, label_b: str
) -> Tuple[str, bool]:
    """(report text, identical) for the ``diff`` verb."""
    lines: List[str] = []
    divergence = diff_dumps(a, b)
    if divergence is None:
        return (
            f"identical: {len(a.events)} events match between "
            f"{label_a} and {label_b}",
            True,
        )
    index, event_a, event_b = divergence
    lines.append(
        f"dumps diverge at event {index} "
        f"({len(a.events)} events in {label_a}, {len(b.events)} in {label_b})"
    )
    lines.append(
        f"  {label_a}: "
        + (format_event(event_a).strip() if event_a else "(record ends)")
    )
    lines.append(
        f"  {label_b}: "
        + (format_event(event_b).strip() if event_b else "(record ends)")
    )
    counts_a, counts_b = _kind_counts(a), _kind_counts(b)
    deltas = []
    for kind in sorted(set(counts_a) | set(counts_b)):
        delta = counts_b.get(kind, 0) - counts_a.get(kind, 0)
        if delta:
            deltas.append(f"{kind}: {delta:+d}")
    if deltas:
        lines.append("event-count deltas (" + label_b + " - " + label_a + "):")
        lines.extend(f"  {entry}" for entry in deltas)
    return "\n".join(lines), False
