"""Post-mortem analysis of flight-recorder dumps.

The diagnosis workflow this package closes:

1. **dump** — run with a :class:`~repro.obs.recorder.FlightRecorder`
   attached (``run_scenario(recorder=...)``, ``--record-out`` on the
   scenarios CLI, or automatically on fuzz-campaign failures) and write
   the JSON-lines flight record;
2. **timeline** — reconstruct what happened, whole-run or per
   slot/view (``python -m repro.postmortem timeline|slot|view``);
3. **explain** — on an oracle violation, compute the minimal causal
   cut of events that produced the conflicting decisions
   (``python -m repro.postmortem explain``);
4. **diff** — compare two dumps, e.g. a failing fuzz seed vs its
   shrunk reproducer, or a pure- vs accel-backend run
   (``python -m repro.postmortem diff``).
"""

from .diff import diff_dumps, normalize, render_diff
from .dump import FlightDump, PostmortemError, load_dump
from .explain import Violation, find_violations, render_explanation
from .timeline import format_event, render_slot, render_timeline, render_view

__all__ = [
    "FlightDump",
    "PostmortemError",
    "load_dump",
    "Violation",
    "find_violations",
    "render_explanation",
    "diff_dumps",
    "normalize",
    "render_diff",
    "format_event",
    "render_slot",
    "render_timeline",
    "render_view",
]
