"""Load and index flight-recorder dumps (JSON lines).

A dump is one header object (``{"flight": 1, "meta": {...}, ...}``)
followed by one event object per line, as written by
:meth:`repro.obs.recorder.FlightRecorder.dump`.  :class:`FlightDump`
indexes the events for the timeline/explain/diff verbs: by id, by slot,
by view, and by causal ancestry.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from ..obs.recorder import FlightEvent

__all__ = ["FlightDump", "load_dump", "PostmortemError"]


class PostmortemError(Exception):
    """A dump could not be read or does not contain what a verb needs."""


class FlightDump:
    """An in-memory flight record: header metadata plus indexed events."""

    def __init__(self, header: Dict[str, Any], events: List[FlightEvent]) -> None:
        self.header = header
        self.events = events
        self.by_id: Dict[int, FlightEvent] = {e.id: e for e in events}

    @property
    def meta(self) -> Dict[str, Any]:
        return self.header.get("meta", {})

    @property
    def dropped(self) -> int:
        return int(self.header.get("dropped", 0))

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------

    def slots(self) -> List[int]:
        """Every slot number any event carries, sorted."""
        return sorted({e.slot for e in self.events if e.slot is not None})

    def views(self) -> List[int]:
        """Every view number any event carries, sorted."""
        return sorted({e.view for e in self.events if e.view is not None})

    def events_for_slot(self, slot: Optional[int]) -> List[FlightEvent]:
        return [e for e in self.events if e.slot == slot]

    def events_for_view(self, view: int) -> List[FlightEvent]:
        return [e for e in self.events if e.view == view]

    def decides(self) -> List[FlightEvent]:
        return [e for e in self.events if e.kind == "decide"]

    def ancestors(self, roots: Iterable[int]) -> Set[int]:
        """Transitive causal closure (event ids), including the roots.

        Parents evicted from the bounded ring are silently absent — the
        cut is minimal over what the record retained.
        """
        seen: Set[int] = set()
        stack = [eid for eid in roots]
        while stack:
            eid = stack.pop()
            if eid in seen:
                continue
            event = self.by_id.get(eid)
            if event is None:
                continue  # evicted
            seen.add(eid)
            stack.extend(event.parents)
        return seen

    def causal_cut(self, roots: Iterable[int]) -> List[FlightEvent]:
        """The ancestor events of ``roots``, in (time, id) order."""
        ids = self.ancestors(roots)
        return sorted(
            (self.by_id[eid] for eid in ids), key=lambda e: (e.time, e.id)
        )


def _event_from_dict(record: Dict[str, Any]) -> FlightEvent:
    return FlightEvent(
        id=record["id"],
        parents=tuple(record.get("parents", ())),
        kind=record["kind"],
        phase=record["phase"],
        time=record["time"],
        pid=record["pid"],
        peer=record.get("peer"),
        slot=record.get("slot"),
        view=record.get("view"),
        detail=record.get("detail"),
    )


def load_dump(path: str) -> FlightDump:
    """Parse a JSON-lines flight dump into a :class:`FlightDump`."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            lines = [line for line in fh.read().splitlines() if line.strip()]
    except OSError as exc:
        raise PostmortemError(f"cannot read dump {path!r}: {exc}") from exc
    if not lines:
        raise PostmortemError(f"dump {path!r} is empty")
    try:
        header = json.loads(lines[0])
        events = [_event_from_dict(json.loads(line)) for line in lines[1:]]
    except (json.JSONDecodeError, KeyError, TypeError) as exc:
        raise PostmortemError(f"malformed dump {path!r}: {exc}") from exc
    if header.get("flight") != 1:
        raise PostmortemError(
            f"{path!r} is not a flight dump (missing 'flight': 1 header)"
        )
    return FlightDump(header, events)
