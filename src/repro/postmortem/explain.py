"""Explain an oracle violation from a flight dump.

The explainer looks for disagreement evidence in the record — decide
events where honest replicas committed different values for the same
slot (or, in consensus mode, for the single instance), or a same-pid
re-decide with a different value — and computes the **minimal causal
cut**: the transitive causal ancestors of the conflicting decides, as
retained by the bounded ring.  For a quorum-certificate protocol that
cut contains exactly the vote deliveries (and transitively their
sends) that formed each conflicting certificate, which is what makes
"why did p3 decide B when p0 decided A" answerable from the dump alone.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..obs.recorder import FlightEvent
from .dump import FlightDump
from .timeline import format_event

__all__ = ["Violation", "find_violations", "render_explanation"]


class Violation:
    """One detected disagreement: the slot and the conflicting decides."""

    def __init__(self, slot: Optional[int], decides: List[FlightEvent]) -> None:
        self.slot = slot
        self.decides = decides

    @property
    def values(self) -> List[str]:
        return sorted({e.detail or "?" for e in self.decides})

    def describe(self) -> str:
        where = (
            "the consensus instance" if self.slot is None else f"slot {self.slot}"
        )
        who = ", ".join(
            f"p{e.pid}={e.detail}" for e in sorted(self.decides, key=lambda e: e.pid)
        )
        return f"conflicting decisions for {where}: {who}"


def find_violations(dump: FlightDump) -> List[Violation]:
    """Disagreements among the run's honest processes, one per slot.

    Uses ``meta.honest_pids`` when the dump carries it (Byzantine
    processes are allowed to "decide" anything); falls back to all
    deciders otherwise.
    """
    honest = dump.meta.get("honest_pids")
    by_slot: Dict[Optional[int], Dict[int, List[FlightEvent]]] = {}
    for event in dump.decides():
        if honest is not None and event.pid not in honest:
            continue
        by_slot.setdefault(event.slot, {}).setdefault(event.pid, []).append(event)
    violations: List[Violation] = []
    for slot, by_pid in sorted(
        by_slot.items(), key=lambda item: (item[0] is None, item[0])
    ):
        # One decide per pid (its latest) for the cross-pid check, but a
        # same-pid re-decide with a different value is itself evidence.
        conflicting: List[FlightEvent] = []
        values = set()
        for decides in by_pid.values():
            pid_values = {e.detail for e in decides}
            if len(pid_values) > 1:
                conflicting.extend(decides)
            values.update(pid_values)
        if len(values) > 1:
            # Keep one representative decide per (pid, value).
            seen: set = set()
            for decides in by_pid.values():
                for event in decides:
                    key = (event.pid, event.detail)
                    if key not in seen:
                        seen.add(key)
                        conflicting.append(event)
        if conflicting:
            unique = sorted({e.id for e in conflicting})
            violations.append(
                Violation(slot, [dump.by_id[eid] for eid in unique])
            )
    return violations


def _views_of(cut: List[FlightEvent]) -> List[int]:
    return sorted({e.view for e in cut if e.view is not None})


def render_explanation(dump: FlightDump) -> Tuple[str, bool]:
    """(report text, violation_found) for the ``explain`` verb.

    When the record holds no disagreement but the run's metadata says
    an oracle failed (e.g. a liveness oracle), the report says so — the
    causal-cut machinery only applies to safety violations the decides
    witness.
    """
    meta = dump.meta
    lines: List[str] = []
    violations = find_violations(dump)
    if not violations:
        if meta.get("safety_violation") or meta.get("failures"):
            lines.append("oracle failure recorded, but the retained events")
            lines.append("hold no conflicting decisions:")
            if meta.get("safety_violation"):
                lines.append(f"  safety_violation: {meta['safety_violation']}")
            for name in meta.get("failures", ()):
                lines.append(f"  failed oracle: {name}")
            if dump.dropped:
                lines.append(
                    f"  ({dump.dropped} events were dropped by the ring — "
                    "a larger recorder capacity may retain the evidence)"
                )
            return "\n".join(lines), False
        return "no violation found: all recorded decisions agree", False

    if meta.get("safety_violation"):
        lines.append(f"recorded violation: {meta['safety_violation']}")
    for violation in violations:
        lines.append(violation.describe())
        cut = dump.causal_cut([e.id for e in violation.decides])
        views = _views_of(cut)
        if views:
            lines.append(
                f"views involved: {', '.join(str(v) for v in views)}"
            )
        votes = sum(1 for e in cut if e.kind == "vote" and e.phase == "deliver")
        lines.append(
            f"minimal causal cut: {len(cut)} events "
            f"({votes} certificate vote deliveries)"
        )
        lines.extend(format_event(event) for event in cut)
    if dump.dropped:
        lines.append(
            f"note: {dump.dropped} earliest events were dropped by the ring; "
            "the cut is minimal over what was retained"
        )
    return "\n".join(lines), True
