"""``python -m repro.postmortem`` — flight-dump analysis verbs.

::

    python -m repro.postmortem timeline DUMP [--limit N]
    python -m repro.postmortem slot DUMP N
    python -m repro.postmortem view DUMP V
    python -m repro.postmortem explain DUMP
    python -m repro.postmortem diff DUMP_A DUMP_B

``explain`` exits 0 when it found and explained a violation (that is
what the verb is *for*: running it on a clean dump exits 1 with "no
violation found").  ``diff`` exits 0 when the dumps are identical.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .diff import render_diff
from .dump import PostmortemError, load_dump
from .explain import render_explanation
from .timeline import render_slot, render_timeline, render_view

__all__ = ["main"]


def _cmd_timeline(args: argparse.Namespace) -> int:
    dump = load_dump(args.dump)
    print(render_timeline(dump, limit=args.limit))
    return 0


def _cmd_slot(args: argparse.Namespace) -> int:
    dump = load_dump(args.dump)
    print(render_slot(dump, args.slot))
    return 0


def _cmd_view(args: argparse.Namespace) -> int:
    dump = load_dump(args.dump)
    print(render_view(dump, args.view))
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    dump = load_dump(args.dump)
    report, found = render_explanation(dump)
    print(report)
    return 0 if found else 1


def _cmd_diff(args: argparse.Namespace) -> int:
    a = load_dump(args.dump_a)
    b = load_dump(args.dump_b)
    report, identical = render_diff(a, b, args.dump_a, args.dump_b)
    print(report)
    return 0 if identical else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.postmortem",
        description=__doc__.splitlines()[0],
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_timeline = sub.add_parser(
        "timeline", help="render the whole record chronologically"
    )
    p_timeline.add_argument("dump", help="flight dump (JSON lines)")
    p_timeline.add_argument(
        "--limit", type=int, default=None, help="show only the last N events"
    )
    p_timeline.set_defaults(func=_cmd_timeline)

    p_slot = sub.add_parser("slot", help="one slot's state-machine timeline")
    p_slot.add_argument("dump", help="flight dump (JSON lines)")
    p_slot.add_argument("slot", type=int, help="slot number")
    p_slot.set_defaults(func=_cmd_slot)

    p_view = sub.add_parser("view", help="one view's timeline across slots")
    p_view.add_argument("dump", help="flight dump (JSON lines)")
    p_view.add_argument("view", type=int, help="view number")
    p_view.set_defaults(func=_cmd_view)

    p_explain = sub.add_parser(
        "explain",
        help="explain an oracle violation via its minimal causal cut",
    )
    p_explain.add_argument("dump", help="flight dump (JSON lines)")
    p_explain.set_defaults(func=_cmd_explain)

    p_diff = sub.add_parser("diff", help="diff two dumps (normalized events)")
    p_diff.add_argument("dump_a", help="first flight dump")
    p_diff.add_argument("dump_b", help="second flight dump")
    p_diff.set_defaults(func=_cmd_diff)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except PostmortemError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:  # e.g. piped into `head`
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
