"""Render flight dumps as human-readable timelines.

Three granularities, matching the CLI verbs:

* :func:`render_timeline` — the whole record, chronological;
* :func:`render_slot` — one slot's state-machine story (propose →
  votes → certificate → decide → WAL/checkpoint), plus a per-replica
  decision summary;
* :func:`render_view` — one view's story across slots (view votes,
  wishes, view entries, demotion activity).
"""

from __future__ import annotations

from typing import List, Optional

from ..obs.recorder import FlightEvent
from .dump import FlightDump

__all__ = ["format_event", "render_timeline", "render_slot", "render_view"]


def format_event(event: FlightEvent) -> str:
    arrow = "<-" if event.phase == "deliver" else "->"
    peer = "" if event.peer is None else f"{arrow}p{event.peer}"
    slot = "" if event.slot is None else f" slot={event.slot}"
    view = "" if event.view is None else f" view={event.view}"
    detail = "" if not event.detail else f"  {event.detail}"
    parents = (
        ""
        if not event.parents
        else "  <- " + ",".join(str(p) for p in event.parents)
    )
    return (
        f"{event.time:10.2f}  #{event.id:<6} {event.phase:<7} "
        f"{event.kind:<17} p{event.pid}{peer}{slot}{view}{detail}{parents}"
    )


def _header_lines(dump: FlightDump) -> List[str]:
    meta = dump.meta
    lines = []
    if meta:
        scenario = meta.get("scenario", "?")
        protocol = meta.get("protocol", "?")
        lines.append(
            f"run        : {scenario} [{protocol}] "
            f"n={meta.get('n', '?')} f={meta.get('f', '?')} "
            f"mode={meta.get('mode', '?')}"
        )
        if meta.get("safety_violation"):
            lines.append(f"violation  : {meta['safety_violation']}")
        if meta.get("failures"):
            lines.append(f"failures   : {', '.join(meta['failures'])}")
    if dump.dropped:
        lines.append(
            f"note       : ring dropped {dump.dropped} earliest events; "
            "timelines start mid-run"
        )
    return lines


def render_timeline(dump: FlightDump, limit: Optional[int] = None) -> str:
    lines = _header_lines(dump)
    events = dump.events
    shown = events if limit is None else events[-limit:]
    if limit is not None and len(events) > limit:
        lines.append(f"... ({len(events) - limit} earlier events elided)")
    lines.extend(format_event(event) for event in shown)
    if not events:
        lines.append("(no events recorded)")
    return "\n".join(lines)


def render_slot(dump: FlightDump, slot: int) -> str:
    events = dump.events_for_slot(slot)
    lines = _header_lines(dump)
    lines.append(f"slot {slot}: {len(events)} events")
    if not events:
        known = dump.slots()
        lines.append(
            f"(no events for slot {slot}; slots in record: {known or 'none'})"
        )
        return "\n".join(lines)
    lines.extend(format_event(event) for event in events)
    decides = [e for e in events if e.kind == "decide"]
    if decides:
        lines.append("decisions:")
        lines.extend(
            f"  p{e.pid} decided {e.detail} at t={e.time}" for e in decides
        )
    view_changes = [e for e in events if e.kind == "view-change"]
    if view_changes:
        top = max(e.view for e in view_changes if e.view is not None)
        lines.append(f"contested  : reached view {top}")
    return "\n".join(lines)


def render_view(dump: FlightDump, view: int) -> str:
    events = dump.events_for_view(view)
    lines = _header_lines(dump)
    lines.append(f"view {view}: {len(events)} events")
    if not events:
        known = dump.views()
        lines.append(
            f"(no events for view {view}; views in record: {known or 'none'})"
        )
        return "\n".join(lines)
    lines.extend(format_event(event) for event in events)
    entered = sorted(
        {e.pid for e in events if e.kind in ("view-change", "advocate")}
    )
    if entered:
        lines.append(
            "entered by : " + ", ".join(f"p{pid}" for pid in entered)
        )
    return "\n".join(lines)
