"""repro — Fast Byzantine Consensus with Optimal Resilience.

A faithful, executable reproduction of *"Revisiting Optimal Resilience of
Fast Byzantine Consensus"* (Kuznetsov, Tonkikh & Zhang, PODC 2021):

* the vanilla two-step protocol for ``n >= 5f - 1``
  (:class:`~repro.core.FastBFTProcess`);
* the generalized protocol for ``n >= 3f + 2t - 1`` with a PBFT-like slow
  path (:class:`~repro.core.GeneralizedFBFTProcess`);
* the matching lower bound as executable adversaries
  (:mod:`repro.lowerbound`);
* baselines — PBFT, FaB Paxos, crash Paxos (:mod:`repro.baselines`);
* a deterministic discrete-event simulator everything runs on
  (:mod:`repro.sim`);
* replicated state machines on top of the consensus core
  (:mod:`repro.smr`).

Quick start::

    from repro import ProtocolConfig, FastBFTProcess, Cluster, KeyRegistry

    config = ProtocolConfig(n=4, f=1)          # f = t = 1 needs only 4!
    registry = KeyRegistry.for_processes(config.process_ids)
    processes = [
        FastBFTProcess(pid, config, registry, input_value=f"v{pid}")
        for pid in config.process_ids
    ]
    result = Cluster(processes).run_until_decided()
    print(result.decision_value, result.decision_time)
"""

from .core import (
    FastBFTProcess,
    FBFTBase,
    GeneralizedFBFTProcess,
    ProtocolConfig,
    min_processes_fab,
    min_processes_fast_bft,
    min_processes_paxos_crash,
    min_processes_pbft,
)
from .crypto import KeyRegistry
from .sim import (
    Cluster,
    ClusterResult,
    ConsistencyViolation,
    RandomDelay,
    RoundSynchronousDelay,
    SimulationError,
    Simulator,
    SynchronousDelay,
    message_delays,
)

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "ClusterResult",
    "ConsistencyViolation",
    "FBFTBase",
    "FastBFTProcess",
    "GeneralizedFBFTProcess",
    "KeyRegistry",
    "ProtocolConfig",
    "RandomDelay",
    "RoundSynchronousDelay",
    "SimulationError",
    "Simulator",
    "SynchronousDelay",
    "message_delays",
    "min_processes_fab",
    "min_processes_fast_bft",
    "min_processes_paxos_crash",
    "min_processes_pbft",
]
