"""Key management for the simulated signature scheme.

The paper assumes each process holds a private key whose public counterpart
everyone knows, and a computationally bounded adversary that cannot forge
correct processes' signatures.  Inside a deterministic simulation we get
the same guarantee *by construction*: a :class:`KeyRegistry` holds one
secret per process, signing requires the secret, and the adversary API only
ever hands Byzantine processes their own :class:`Signer`.  Verification
needs no secret — it goes through the registry, mirroring public keys.

The scheme is HMAC-like (SHA-256 over secret || canonical message bytes).
It is *not* cryptographically meaningful outside the simulation and is not
intended to be; see DESIGN.md's substitution table.
"""

from __future__ import annotations

import hashlib
import hmac
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Tuple

__all__ = ["KeyRegistry", "Signature", "Signer", "canonical_bytes"]

ProcessId = int


def canonical_bytes(obj: Any) -> bytes:
    """Deterministically serialize a message payload for signing.

    Supports the value types protocol messages are built from: ``None``,
    ``bool``, ``int``, ``float``, ``str``, ``bytes``, tuples/lists, frozensets
    (sorted by serialization), dicts (sorted by key serialization), and any
    object exposing ``signing_fields()`` (the protocol dataclasses).
    Type tags prevent cross-type collisions such as ``1`` vs ``"1"``.
    """
    if obj is None:
        return b"N"
    if isinstance(obj, bool):
        return b"B1" if obj else b"B0"
    if isinstance(obj, int):
        data = str(obj).encode()
        return b"I" + len(data).to_bytes(4, "big") + data
    if isinstance(obj, float):
        data = repr(obj).encode()
        return b"F" + len(data).to_bytes(4, "big") + data
    if isinstance(obj, str):
        data = obj.encode()
        return b"S" + len(data).to_bytes(4, "big") + data
    if isinstance(obj, bytes):
        return b"Y" + len(obj).to_bytes(4, "big") + obj
    if isinstance(obj, (tuple, list)):
        parts = [canonical_bytes(item) for item in obj]
        body = b"".join(parts)
        return b"T" + len(parts).to_bytes(4, "big") + body
    if isinstance(obj, (set, frozenset)):
        parts = sorted(canonical_bytes(item) for item in obj)
        body = b"".join(parts)
        return b"E" + len(parts).to_bytes(4, "big") + body
    if isinstance(obj, dict):
        items = sorted(
            (canonical_bytes(k), canonical_bytes(v)) for k, v in obj.items()
        )
        body = b"".join(k + v for k, v in items)
        return b"D" + len(items).to_bytes(4, "big") + body
    fields = getattr(obj, "signing_fields", None)
    if callable(fields):
        tag = type(obj).__name__.encode()
        body = canonical_bytes(fields())
        return b"O" + len(tag).to_bytes(2, "big") + tag + body
    raise TypeError(f"cannot canonicalize {type(obj).__name__}: {obj!r}")


@dataclass(frozen=True)
class Signature:
    """A signature over some payload by ``signer``.

    The ``digest`` binds signer, payload and the registry's domain tag.
    Signatures are values: hashable, comparable, safe to embed in messages.
    """

    signer: ProcessId
    digest: bytes

    def signing_fields(self) -> Tuple[Any, ...]:
        return (self.signer, self.digest)


class Signer:
    """Signing capability for one process.  Hand it only to its owner."""

    def __init__(self, pid: ProcessId, secret: bytes) -> None:
        self._pid = pid
        self._secret = secret

    @property
    def pid(self) -> ProcessId:
        return self._pid

    def sign(self, payload: Any) -> Signature:
        digest = hmac.new(
            self._secret, canonical_bytes(payload), hashlib.sha256
        ).digest()
        return Signature(signer=self._pid, digest=digest)


class KeyRegistry:
    """Key material for a set of processes plus public verification.

    >>> reg = KeyRegistry.for_processes(range(4))
    >>> sig = reg.signer(2).sign(("propose", "x", 1))
    >>> reg.verify(sig, ("propose", "x", 1))
    True
    >>> reg.verify(sig, ("propose", "y", 1))
    False

    Verification results are memoized per ``(signer, digest)``: protocols
    re-validate the same certificate signatures many times (every replica
    checks every signature of every certificate it relays, and the SMR
    layer multiplies that by slots and batches), so a successful
    verification records the payload hash the digest was checked against
    and later calls skip the HMAC recomputation.  A signature can only
    ever verify against one payload (the digest binds it), so a cache hit
    with a *different* payload hash is a definitive ``False``.

    The memo is a bounded LRU: a long workload signs an unbounded stream
    of distinct payloads (every slot, batch and checkpoint vote mints new
    signatures), so at ``CACHE_LIMIT`` entries the least-recently-used
    one is evicted (counted in ``cache_evictions``) instead of growing —
    or, as before this cap, periodically dropping the whole cache, which
    threw away exactly the hot certificate entries the memo exists for.
    """

    #: Entries kept before least-recently-used eviction kicks in.
    CACHE_LIMIT = 1 << 16

    def __init__(self, domain: bytes = b"repro-fbft") -> None:
        self._domain = domain
        self._secrets: Dict[ProcessId, bytes] = {}
        #: (signer, signature digest) -> sha256 of the canonical payload
        #: bytes that this digest successfully verified against; ordered
        #: oldest-use-first for LRU eviction.
        self._verify_cache: "OrderedDict[Tuple[ProcessId, bytes], bytes]" = (
            OrderedDict()
        )
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_evictions = 0

    @classmethod
    def for_processes(
        cls, pids: Iterable[ProcessId], domain: bytes = b"repro-fbft"
    ) -> "KeyRegistry":
        registry = cls(domain=domain)
        for pid in pids:
            registry.add_process(pid)
        return registry

    def add_process(self, pid: ProcessId) -> None:
        if pid in self._secrets:
            raise ValueError(f"process {pid} already has a key")
        # Deterministic per-process secret: fine inside the simulation, the
        # adversary has no oracle access to the registry internals.
        self._secrets[pid] = hashlib.sha256(
            self._domain + b"|" + str(pid).encode()
        ).digest()

    @property
    def process_ids(self) -> Tuple[ProcessId, ...]:
        return tuple(sorted(self._secrets))

    def signer(self, pid: ProcessId) -> Signer:
        """Return the signing capability of ``pid`` (private: owner only)."""
        if pid not in self._secrets:
            raise KeyError(f"no key for process {pid}")
        return Signer(pid, self._secrets[pid])

    def verify(self, signature: Signature, payload: Any) -> bool:
        """Check that ``signature`` is ``signer``'s signature over ``payload``."""
        secret = self._secrets.get(signature.signer)
        if secret is None:
            return False
        message = canonical_bytes(payload)
        key = (signature.signer, signature.digest)
        cached = self._verify_cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            self._verify_cache.move_to_end(key)
            return hmac.compare_digest(cached, hashlib.sha256(message).digest())
        self.cache_misses += 1
        expected = hmac.new(secret, message, hashlib.sha256).digest()
        valid = hmac.compare_digest(expected, signature.digest)
        if valid:
            while len(self._verify_cache) >= self.CACHE_LIMIT:
                self._verify_cache.popitem(last=False)
                self.cache_evictions += 1
            self._verify_cache[key] = hashlib.sha256(message).digest()
        return valid

    def verify_all(self, signatures: Iterable[Signature], payload: Any) -> bool:
        """Check every signature in the set verifies over ``payload``."""
        return all(self.verify(sig, payload) for sig in signatures)
