"""Key management for the simulated signature scheme.

The paper assumes each process holds a private key whose public counterpart
everyone knows, and a computationally bounded adversary that cannot forge
correct processes' signatures.  Inside a deterministic simulation we get
the same guarantee *by construction*: a :class:`KeyRegistry` holds one
secret per process, signing requires the secret, and the adversary API only
ever hands Byzantine processes their own :class:`Signer`.  Verification
needs no secret — it goes through the registry, mirroring public keys.

The scheme is HMAC-like (SHA-256 over secret || canonical message bytes).
It is *not* cryptographically meaningful outside the simulation and is not
intended to be; see DESIGN.md's substitution table.

The two hot primitives — canonical serialization and the HMAC digest —
live in the pluggable backend layer (:mod:`repro._core`): the pure-Python
reference always exists, and the optional compiled extension serializes
byte-identically.  On top of either backend the registry layers two
pure-Python wins:

* a bounded :class:`repro._core.CanonicalMemo` keyed on payload
  *identity* (safe lifetime: entries pin their payload, hits require an
  ``is`` check), so signing and re-verifying the same payload object
  serializes it once;
* batched :meth:`KeyRegistry.verify_all`, which canonicalizes and hashes
  the payload once per certificate instead of once per signature.
"""

from __future__ import annotations

import hashlib
import hmac
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Iterator, Optional, Tuple

from .._core import CanonicalMemo, canonical_bytes, hmac_sha256

__all__ = [
    "KeyRegistry",
    "Signature",
    "Signer",
    "canonical_bytes",
    "crypto_reference_mode",
]

ProcessId = int


@dataclass(frozen=True)
class Signature:
    """A signature over some payload by ``signer``.

    The ``digest`` binds signer, payload and the registry's domain tag.
    Signatures are values: hashable, comparable, safe to embed in messages.
    """

    signer: ProcessId
    digest: bytes

    def signing_fields(self) -> Tuple[Any, ...]:
        return (self.signer, self.digest)


class Signer:
    """Signing capability for one process.  Hand it only to its owner."""

    def __init__(
        self,
        pid: ProcessId,
        secret: bytes,
        canonical: Callable[[Any], bytes] = canonical_bytes,
    ) -> None:
        self._pid = pid
        self._secret = secret
        #: The registry's canonical serializer (its memo when enabled),
        #: so a leader that signs a payload and immediately verifies
        #: relayed signatures over it serializes the object once.
        self._canonical = canonical

    @property
    def pid(self) -> ProcessId:
        return self._pid

    def sign(self, payload: Any) -> Signature:
        digest = hmac_sha256(self._secret, self._canonical(payload))
        return Signature(signer=self._pid, digest=digest)


class KeyRegistry:
    """Key material for a set of processes plus public verification.

    >>> reg = KeyRegistry.for_processes(range(4))
    >>> sig = reg.signer(2).sign(("propose", "x", 1))
    >>> reg.verify(sig, ("propose", "x", 1))
    True
    >>> reg.verify(sig, ("propose", "y", 1))
    False

    Verification results are memoized per ``(signer, digest)``: protocols
    re-validate the same certificate signatures many times (every replica
    checks every signature of every certificate it relays, and the SMR
    layer multiplies that by slots and batches), so a successful
    verification records the payload hash the digest was checked against
    and later calls skip the HMAC recomputation.  A signature can only
    ever verify against one payload (the digest binds it), so a cache hit
    with a *different* payload hash is a definitive ``False``.

    The memo is a bounded LRU: a long workload signs an unbounded stream
    of distinct payloads (every slot, batch and checkpoint vote mints new
    signatures), so at ``CACHE_LIMIT`` entries the least-recently-used
    one is evicted (counted in ``cache_evictions``) instead of growing —
    or, as before this cap, periodically dropping the whole cache, which
    threw away exactly the hot certificate entries the memo exists for.

    On top of that sit the canonicalization fast paths (both optional,
    for apples-to-apples reference measurements in E20):

    * ``canonical_memo`` — serialize a payload *object* once across
      sign/verify/verify_all (bounded, identity-keyed, safe lifetime);
    * ``batch_verify`` — :meth:`verify_all` canonicalizes and hashes the
      payload once per call instead of once per signature.
    """

    #: Entries kept before least-recently-used eviction kicks in.
    CACHE_LIMIT = 1 << 16

    #: Bound of the canonical-serialization memo (payload objects pinned).
    CANONICAL_MEMO_LIMIT = 256

    #: Constructor defaults, overridable per instance and flipped
    #: globally by :func:`crypto_reference_mode` for E20 reference rows.
    DEFAULT_CANONICAL_MEMO = True
    DEFAULT_BATCH_VERIFY = True

    def __init__(
        self,
        domain: bytes = b"repro-fbft",
        *,
        canonical_memo: Optional[bool] = None,
        batch_verify: Optional[bool] = None,
    ) -> None:
        self._domain = domain
        self._secrets: Dict[ProcessId, bytes] = {}
        #: (signer, signature digest) -> sha256 of the canonical payload
        #: bytes that this digest successfully verified against; ordered
        #: oldest-use-first for LRU eviction.
        self._verify_cache: "OrderedDict[Tuple[ProcessId, bytes], bytes]" = (
            OrderedDict()
        )
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_evictions = 0
        #: Batched verify_all invocations (hit-counter coverage for E20).
        self.batch_verifies = 0
        if canonical_memo is None:
            canonical_memo = type(self).DEFAULT_CANONICAL_MEMO
        if batch_verify is None:
            batch_verify = type(self).DEFAULT_BATCH_VERIFY
        self._canonical_memo: Optional[CanonicalMemo] = (
            CanonicalMemo(self.CANONICAL_MEMO_LIMIT, canonical_bytes)
            if canonical_memo
            else None
        )
        self._canonical: Callable[[Any], bytes] = (
            self._canonical_memo.get
            if self._canonical_memo is not None
            else canonical_bytes
        )
        self._batch_verify = bool(batch_verify)

    @classmethod
    def for_processes(
        cls, pids: Iterable[ProcessId], domain: bytes = b"repro-fbft"
    ) -> "KeyRegistry":
        registry = cls(domain=domain)
        for pid in pids:
            registry.add_process(pid)
        return registry

    def add_process(self, pid: ProcessId) -> None:
        if pid in self._secrets:
            raise ValueError(f"process {pid} already has a key")
        # Deterministic per-process secret: fine inside the simulation, the
        # adversary has no oracle access to the registry internals.
        self._secrets[pid] = hashlib.sha256(
            self._domain + b"|" + str(pid).encode()
        ).digest()

    @property
    def process_ids(self) -> Tuple[ProcessId, ...]:
        return tuple(sorted(self._secrets))

    @property
    def canonical_hits(self) -> int:
        """Canonical-memo hits (0 when the memo is disabled)."""
        memo = self._canonical_memo
        return memo.hits if memo is not None else 0

    @property
    def canonical_misses(self) -> int:
        """Canonical-memo misses (0 when the memo is disabled)."""
        memo = self._canonical_memo
        return memo.misses if memo is not None else 0

    def signer(self, pid: ProcessId) -> Signer:
        """Return the signing capability of ``pid`` (private: owner only)."""
        if pid not in self._secrets:
            raise KeyError(f"no key for process {pid}")
        return Signer(pid, self._secrets[pid], self._canonical)

    def verify(self, signature: Signature, payload: Any) -> bool:
        """Check that ``signature`` is ``signer``'s signature over ``payload``."""
        secret = self._secrets.get(signature.signer)
        if secret is None:
            return False
        return self._verify_message(
            signature, secret, self._canonical(payload), None
        )

    def _verify_message(
        self,
        signature: Signature,
        secret: bytes,
        message: bytes,
        msg_hash: Optional[bytes],
    ) -> bool:
        """Verify one signature over pre-canonicalized ``message`` bytes.

        ``msg_hash`` is the batch-level sha256 of ``message`` when the
        caller already computed it (verify_all), else it is derived
        lazily — only the paths that actually compare or store a payload
        hash pay for it.
        """
        key = (signature.signer, signature.digest)
        cached = self._verify_cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            self._verify_cache.move_to_end(key)
            if msg_hash is None:
                msg_hash = hashlib.sha256(message).digest()
            return hmac.compare_digest(cached, msg_hash)
        self.cache_misses += 1
        expected = hmac_sha256(secret, message)
        valid = hmac.compare_digest(expected, signature.digest)
        if valid:
            while len(self._verify_cache) >= self.CACHE_LIMIT:
                self._verify_cache.popitem(last=False)
                self.cache_evictions += 1
            if msg_hash is None:
                msg_hash = hashlib.sha256(message).digest()
            self._verify_cache[key] = msg_hash
        return valid

    def verify_all(self, signatures: Iterable[Signature], payload: Any) -> bool:
        """Check every signature in the set verifies over ``payload``.

        Batched: the payload is canonicalized and hashed **once per
        call**, not once per signature — a certificate's 2f+1 signatures
        share one serialization.  Short-circuits on the first failure,
        exactly like the ``all()`` loop it replaces.
        """
        if not self._batch_verify:
            return all(self.verify(sig, payload) for sig in signatures)
        self.batch_verifies += 1
        message: Optional[bytes] = None
        msg_hash: Optional[bytes] = None
        for signature in signatures:
            secret = self._secrets.get(signature.signer)
            if secret is None:
                return False
            if message is None:
                message = self._canonical(payload)
                msg_hash = hashlib.sha256(message).digest()
            if not self._verify_message(signature, secret, message, msg_hash):
                return False
        return True


@contextmanager
def crypto_reference_mode() -> Iterator[None]:
    """Disable the canonical memo and batched verification for registries
    constructed inside the context.

    This is the measuring stick for E20's ``reference`` rows: the
    reference workloads must run the pre-optimization crypto path
    (per-signature canonicalization, no identity memo) without keeping a
    forked copy of the registry around.  Results are value-identical
    either way — only the constant factor changes.
    """
    previous = (
        KeyRegistry.DEFAULT_CANONICAL_MEMO,
        KeyRegistry.DEFAULT_BATCH_VERIFY,
    )
    KeyRegistry.DEFAULT_CANONICAL_MEMO = False
    KeyRegistry.DEFAULT_BATCH_VERIFY = False
    try:
        yield
    finally:
        KeyRegistry.DEFAULT_CANONICAL_MEMO = previous[0]
        KeyRegistry.DEFAULT_BATCH_VERIFY = previous[1]
