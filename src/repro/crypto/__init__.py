"""Simulated cryptography: authenticated signatures within the simulator.

See :mod:`repro.crypto.keys` for the model and its justification.
"""

from .keys import KeyRegistry, Signature, Signer, canonical_bytes

__all__ = ["KeyRegistry", "Signature", "Signer", "canonical_bytes"]
