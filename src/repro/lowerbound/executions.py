"""T-faulty two-step executions (Section 4.1), executable.

The lower bound reasons about executions with very specific shapes:

* rounds are lock-step — every message sent in round ``i`` is delivered
  exactly at time ``i * DELTA`` (our
  :class:`~repro.sim.network.RoundSynchronousDelay`);
* the ``t`` processes in ``T`` follow the protocol honestly during the
  first round and then crash (our
  :class:`~repro.byzantine.behaviors.CrashAfter` with
  ``crash_time = DELTA``);
* every correct process decides no later than time ``2 * DELTA``.

:func:`run_t_faulty_execution` builds and runs exactly that execution for
a given protocol factory, initial configuration and fault set, and
reports whether it was two-step.  The checker (experiment E10) uses it to
verify our protocol *is* t-two-step; Lemma 4.4's influential-process
search replays it over the binary initial configurations ``I_0 .. I_n``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Tuple

from ..byzantine.behaviors import CrashAfter
from ..sim.network import RoundSynchronousDelay
from ..sim.process import Process
from ..sim.runner import Cluster

__all__ = [
    "InitialConfiguration",
    "binary_configuration",
    "TFaultyResult",
    "run_t_faulty_execution",
]

#: A protocol factory builds the process with the given pid and input.
ProtocolFactory = Callable[[int, Any], Process]


@dataclass(frozen=True)
class InitialConfiguration:
    """``I : Pi -> V`` — every process's input value (Section 4.1)."""

    inputs: Tuple[Any, ...]

    @property
    def n(self) -> int:
        return len(self.inputs)

    def input_of(self, pid: int) -> Any:
        return self.inputs[pid]

    def with_input(self, pid: int, value: Any) -> "InitialConfiguration":
        inputs = list(self.inputs)
        inputs[pid] = value
        return InitialConfiguration(inputs=tuple(inputs))


def binary_configuration(n: int, ones: int) -> InitialConfiguration:
    """``I_i`` from Lemma 4.4: the first ``ones`` processes propose 1,
    the rest propose 0."""
    if not (0 <= ones <= n):
        raise ValueError(f"need 0 <= ones <= n, got {ones}/{n}")
    return InitialConfiguration(
        inputs=tuple(1 if pid < ones else 0 for pid in range(n))
    )


@dataclass(frozen=True)
class TFaultyResult:
    """Outcome of one T-faulty execution."""

    two_step: bool
    consensus_value: Any
    decision_times: Tuple[Tuple[int, float], ...]
    faulty: Tuple[int, ...]

    @property
    def decided_all(self) -> bool:
        return self.two_step or bool(self.decision_times)


def run_t_faulty_execution(
    factory: ProtocolFactory,
    configuration: InitialConfiguration,
    faulty: Iterable[int],
    delta: float = 1.0,
    grace_rounds: int = 0,
) -> TFaultyResult:
    """Run the T-faulty execution and report whether it was two-step.

    ``grace_rounds`` extends the observation window past ``2 * DELTA``
    (useful for diagnosing *why* a protocol is not two-step); the
    ``two_step`` verdict always refers to decisions by ``2 * DELTA``.
    """
    faulty_set = tuple(sorted(set(faulty)))
    n = configuration.n
    for pid in faulty_set:
        if not (0 <= pid < n):
            raise ValueError(f"faulty pid {pid} out of range")
    processes: list[Process] = []
    for pid in range(n):
        proc = factory(pid, configuration.input_of(pid))
        if pid in faulty_set:
            proc = CrashAfter(proc, crash_time=delta)
        processes.append(proc)
    correct = [pid for pid in range(n) if pid not in faulty_set]
    cluster = Cluster(processes, delay_model=RoundSynchronousDelay(delta))
    horizon = (2 + grace_rounds) * delta
    cluster.run(until=horizon + delta * 1e-6)
    trace = cluster.trace
    times = trace.decision_times(correct)
    value = trace.check_agreement(correct)  # raises on disagreement
    two_step = len(times) == len(correct) and all(
        t <= 2 * delta + 1e-9 for t in times.values()
    )
    return TFaultyResult(
        two_step=two_step,
        consensus_value=value,
        decision_times=tuple(sorted(times.items())),
        faulty=faulty_set,
    )
