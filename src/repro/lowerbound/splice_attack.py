"""The executable Theorem 4.5: disagreement at n = 3f + 2t - 2.

This module assembles the full splice attack against *our own protocol*
run one process below the bound, demonstrating the lower bound the way
the paper's Figures 2-4 do on paper:

* the influential process — the view-1 leader ``q`` — equivocates,
  showing ``x`` to one side of the system and ``y`` to the other;
* ``f - 1`` Byzantine companions acknowledge ``x`` towards the x-side, so
  the x-side correct processes decide ``x`` fast (this plays the role of
  executions rho1/rho2 deciding 1);
* after the view change, the Byzantine leader of view 2 presents a
  carefully chosen subset of genuine, validly signed votes under which
  the honest selection algorithm *admits* ``y`` — possible below the
  bound because after excluding the proven equivocator, only
  ``(n - f) - (f - 1) - t = f + t - 1`` x-votes are forced into any
  ``n - f`` vote set, one short of the ``f + t`` threshold (``2f`` in the
  vanilla protocol);
* correct processes certify and acknowledge ``y`` — disagreement.

Run the *same adversary* at ``n = 3f + 2t - 1`` and the crafted subset
does not exist: every admissible vote set pins ``x``, the attack leader
can only stay silent, and a later correct leader re-proposes ``x``.
``run_splice_attack`` returns which of the two outcomes happened, and the
benchmark/test suite asserts the flip at exactly the bound.

The construction needs ``f >= 2``; for ``t <= 1`` the bound
``3f + 2t - 2 <= 3f`` is already below the classic ``3f + 1`` bound
(Theorem 4.5's easy case), so there is nothing to attack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from ..byzantine.behaviors import ByzantineForge, EquivocatingLeader, ScriptedSend
from ..byzantine.splice import SpliceCompanion, SpliceViewTwoLeader
from ..core.config import ProtocolConfig
from ..core.fastbft import FastBFTProcess
from ..core.generalized import GeneralizedFBFTProcess
from ..core.quorums import min_processes_fast_bft
from ..crypto.keys import KeyRegistry
from ..sim.network import SynchronousDelay
from ..sim.process import Process
from ..sim.runner import Cluster
from ..sim.trace import ConsistencyViolation

__all__ = ["SpliceOutcome", "run_splice_attack", "splice_boundary_demo"]

X_VALUE = "x"
Y_VALUE = "y"


@dataclass(frozen=True)
class SpliceOutcome:
    """Result of one splice-attack run."""

    n: int
    f: int
    t: int
    violated: bool
    fast_decisions: Tuple[Tuple[int, Any, float], ...]
    final_value: Optional[Any]
    detail: str

    @property
    def safe(self) -> bool:
        return not self.violated


def run_splice_attack(
    f: int,
    t: Optional[int] = None,
    n: Optional[int] = None,
    delta: float = 1.0,
    base_timeout: float = 12.0,
    horizon: float = 400.0,
    exclude_equivocator: bool = True,
) -> SpliceOutcome:
    """Run the splice adversary against our protocol at size ``n``.

    Defaults: ``t = f`` (vanilla protocol) and ``n = 3f + 2t - 2`` (one
    below the bound).  Returns whether consistency was violated.

    ``exclude_equivocator=False`` runs the E11 ablation: the correct
    processes use the selection variant *without* the paper's
    equivocator-exclusion trick, and the adversary additionally exploits
    the equivocator's own lying nil vote — at ``n = 3f + 2t - 1`` the
    attack then succeeds, demonstrating that the trick is what the two
    saved processes are paid for.
    """
    if t is None:
        t = f
    if f < 2 or t < 2 and t != f:
        pass  # validated below in detail
    if f < 2:
        raise ValueError("the splice construction needs f >= 2")
    if t < 1 or t > f:
        raise ValueError(f"need 1 <= t <= f, got t={t}")
    min_n = min_processes_fast_bft(f, t) - 1
    if n is None:
        n = min_n
    if n < min_n:
        raise ValueError(f"n={n} below the attack's structure (needs >= {min_n})")

    config = ProtocolConfig(n=n, f=f, t=t, allow_sub_resilient=True)
    registry = KeyRegistry.for_processes(config.process_ids)

    # Roles (see module docstring).  Byzantine: q = 0 plus pids 1..f-1.
    equivocator = 0
    byzantine = list(range(f))
    view2_leader = config.leader_of(2)
    assert view2_leader == 1, "round-robin leader map puts view 2 on pid 1"
    correct = [pid for pid in range(n) if pid not in byzantine]
    # Correct members of a full fast quorum once all f Byzantine join it.
    x_count = config.fast_quorum - f
    x_group = tuple(correct[:x_count])
    y_group = tuple(correct[x_count:])
    assert len(y_group) == t

    vanilla = t == f
    proto_cls = FastBFTProcess if vanilla else GeneralizedFBFTProcess

    processes: List[Process] = []
    # q: equivocating leader of view 1.  It acknowledges x towards the
    # x-side and later supports the view change with a wish.
    assignments = {pid: X_VALUE for pid in x_group}
    assignments.update({pid: Y_VALUE for pid in y_group})
    forge_q = ByzantineForge(equivocator, registry, config)
    extra_script = []
    if not exclude_equivocator:
        # Ablation: the equivocator lies to the new leader with a nil
        # vote of its own — usable filler once exclusion is disabled.
        extra_script.append(
            ScriptedSend(
                time=base_timeout + delta,
                to=(view2_leader,),
                payload=forge_q.vote_message(None, 2),
            )
        )
    processes.append(
        EquivocatingLeader(
            pid=equivocator,
            registry=registry,
            config=config,
            view=1,
            assignments=assignments,
            ack_value=X_VALUE,
            ack_to=x_group,
            ack_time=delta,
            wishes=[(base_timeout - delta, 2)],
            extra_script=extra_script,
        )
    )
    # pid 1: Byzantine leader of view 2 pushing y.
    processes.append(
        SpliceViewTwoLeader(
            pid=view2_leader,
            registry=registry,
            config=config,
            x_value=X_VALUE,
            y_value=Y_VALUE,
            x_group=x_group,
            equivocator=equivocator,
            ack_time=delta,
            wish_time=base_timeout - delta,
            exclude_equivocator=exclude_equivocator,
        )
    )
    # Remaining companions (f - 2 of them, when f > 2).
    for pid in byzantine[2:]:
        processes.append(
            SpliceCompanion(
                pid=pid,
                registry=registry,
                config=config,
                x_value=X_VALUE,
                x_group=x_group,
                leader_pid=view2_leader,
                ack_time=delta,
                vote_time=base_timeout + delta,
                wish_time=base_timeout - delta,
            )
        )
    # Correct processes run the real protocol, inputs irrelevant.
    for pid in correct:
        processes.append(
            proto_cls(
                pid,
                config,
                registry,
                input_value=f"input-{pid}",
                base_timeout=base_timeout,
                exclude_equivocator=exclude_equivocator,
            )
        )

    cluster = Cluster(processes, delay_model=SynchronousDelay(delta))
    violated = False
    detail = ""
    try:
        cluster.run(until=horizon)
        cluster.trace.check_agreement(correct)
    except ConsistencyViolation as exc:
        violated = True
        detail = str(exc)

    fast = tuple(
        (d.pid, d.value, d.time)
        for d in cluster.trace.decisions
        if d.pid in correct and d.time <= 2 * delta + 1e-9
    )
    final_value = None
    if not violated:
        final_value = cluster.trace.check_agreement(correct)
    return SpliceOutcome(
        n=n,
        f=f,
        t=t,
        violated=violated,
        fast_decisions=fast,
        final_value=final_value,
        detail=detail,
    )


def splice_boundary_demo(f: int, t: Optional[int] = None) -> Tuple[SpliceOutcome, SpliceOutcome]:
    """Run the attack one process below the bound and at the bound.

    Returns ``(below, at)``; the paper's Theorem 4.5 plus the protocol's
    correctness proof predict ``below.violated and at.safe``.
    """
    if t is None:
        t = f
    bound = min_processes_fast_bft(f, t)
    below = run_splice_attack(f=f, t=t, n=bound - 1)
    at = run_splice_attack(f=f, t=t, n=bound)
    return below, at
