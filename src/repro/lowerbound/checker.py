"""The t-two-step property checker (Definition in Section 4.1).

A protocol is *t-two-step* if for every initial configuration considered
and every fault set ``T`` of size ``t``, there is a T-faulty two-step
execution.  Our simulator is deterministic, so "there exists" becomes
"the canonical schedule produces one": we simply run the execution the
paper itself exhibits (Section 4.1 shows it for our protocol) and check
every correct process decides by ``2 * DELTA``.

Experiment E10 sweeps this check across fault sets and configurations for
our protocol (which must pass) and for PBFT (which must fail — it needs
three message delays even in failure-free runs).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from ..core.quorums import min_suspect_set
from .executions import (
    InitialConfiguration,
    ProtocolFactory,
    run_t_faulty_execution,
)

__all__ = ["TwoStepReport", "check_t_two_step", "all_fault_sets"]


def all_fault_sets(
    n: int, t: int, limit: Optional[int] = None
) -> List[Tuple[int, ...]]:
    """All (or the first ``limit``) size-``t`` subsets of ``0..n-1``."""
    sets = itertools.combinations(range(n), t)
    if limit is not None:
        return list(itertools.islice(sets, limit))
    return list(sets)


def suspect_fault_sets(
    suspects: Sequence[int], t: int, limit: Optional[int] = None
) -> List[Tuple[int, ...]]:
    """Size-``t`` fault sets drawn from a *suspects* set M (Section 4.3).

    The weakened t-two-step definition only demands two-step executions
    for ``T`` within some ``M`` of size at least ``2t + 2`` — enough for
    the lower-bound proof to still pick two disjoint fault sets avoiding
    two distinguished processes.  Protocols whose fast path relies on a
    designated leader's second-round participation can exclude that
    leader from M and the bound still holds.
    """
    if len(suspects) < min_suspect_set(t):
        raise ValueError(
            f"the suspects set must have at least 2t + 2 = {min_suspect_set(t)} "
            f"members (got {len(suspects)}); below that the lower-bound "
            f"argument cannot pick its disjoint fault sets"
        )
    sets = itertools.combinations(sorted(suspects), t)
    if limit is not None:
        return list(itertools.islice(sets, limit))
    return list(sets)


@dataclass(frozen=True)
class TwoStepReport:
    """Aggregate verdict of the t-two-step check."""

    protocol: str
    n: int
    t: int
    executions: int
    two_step_executions: int
    failures: Tuple[Tuple[Tuple[int, ...], Any], ...]

    @property
    def is_t_two_step(self) -> bool:
        return self.executions > 0 and self.two_step_executions == self.executions


def check_t_two_step(
    factory: ProtocolFactory,
    n: int,
    t: int,
    configurations: Optional[Sequence[InitialConfiguration]] = None,
    fault_sets: Optional[Sequence[Tuple[int, ...]]] = None,
    delta: float = 1.0,
    protocol_name: str = "protocol",
    max_fault_sets: Optional[int] = None,
) -> TwoStepReport:
    """Check the t-two-step property over the given fault sets and inputs.

    Defaults: every size-``t`` fault set, and the all-same-input
    configuration (the one weak validity pins down, Lemma 4.3).
    """
    if configurations is None:
        configurations = [
            InitialConfiguration(inputs=tuple("v" for _ in range(n)))
        ]
    if fault_sets is None:
        fault_sets = all_fault_sets(n, t, limit=max_fault_sets)
    executions = 0
    passed = 0
    failures: List[Tuple[Tuple[int, ...], Any]] = []
    for configuration in configurations:
        for faulty in fault_sets:
            result = run_t_faulty_execution(
                factory, configuration, faulty, delta=delta
            )
            executions += 1
            if result.two_step:
                passed += 1
            else:
                failures.append((tuple(faulty), result.consensus_value))
    return TwoStepReport(
        protocol=protocol_name,
        n=n,
        t=t,
        executions=executions,
        two_step_executions=passed,
        failures=tuple(failures),
    )
