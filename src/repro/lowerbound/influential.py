"""Influential-process search — Lemma 4.4, executable.

A process ``p`` is *influential* if flipping only ``p``'s input can flip
the consensus value of T-faulty two-step executions whose fault sets
avoid ``p`` and are disjoint.  Lemma 4.4 proves every t-two-step protocol
has one, by walking the binary configurations ``I_0 .. I_n`` (first ``i``
processes propose 1) and locating the first index ``j`` where some fault
set yields consensus value 1.

This module performs that walk on a concrete protocol.  For our
leader-based protocol the search lands on the first-view leader —
process 0 — whose input is what the fast path decides; the witness it
returns is exactly the object Theorem 4.5's splice construction consumes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from .executions import (
    InitialConfiguration,
    ProtocolFactory,
    binary_configuration,
    run_t_faulty_execution,
)

__all__ = ["InfluentialWitness", "find_influential_process"]


@dataclass(frozen=True)
class InfluentialWitness:
    """Everything the definition of "influential" requires, made concrete.

    Executions ``rho0`` (from ``config0``, faults ``t0_set``, value
    ``value0``) and ``rho1`` (from ``config1``, faults ``t1_set``, value
    ``value1``) differ only in ``pid``'s input yet decide differently;
    the fault sets are disjoint and avoid ``pid``.
    """

    pid: int
    config0: InitialConfiguration
    config1: InitialConfiguration
    t0_set: Tuple[int, ...]
    t1_set: Tuple[int, ...]
    value0: Any
    value1: Any

    def check(self) -> bool:
        """Re-validate the witness's structural side conditions."""
        if self.value0 == self.value1:
            return False
        if set(self.t0_set) & set(self.t1_set):
            return False
        if self.pid in self.t0_set or self.pid in self.t1_set:
            return False
        diffs = [
            i
            for i in range(self.config0.n)
            if self.config0.input_of(i) != self.config1.input_of(i)
        ]
        return diffs == [self.pid]


def _fault_sets_avoiding(
    n: int, t: int, avoid: frozenset, limit: int
) -> List[Tuple[int, ...]]:
    candidates = (pid for pid in range(n) if pid not in avoid)
    return list(itertools.islice(itertools.combinations(candidates, t), limit))


def find_influential_process(
    factory: ProtocolFactory,
    n: int,
    t: int,
    delta: float = 1.0,
    max_fault_sets: int = 16,
) -> Optional[InfluentialWitness]:
    """Walk ``I_0 .. I_n`` (Lemma 4.4) and return an influential witness.

    Returns ``None`` only if the protocol under test is not t-two-step on
    the schedules tried (every t-two-step protocol has a witness).
    """
    # pred(j): some T1 avoiding p_j yields consensus value 1 from I_j.
    witness_t1: Optional[Tuple[int, ...]] = None
    j: Optional[int] = None
    for i in range(1, n + 1):
        configuration = binary_configuration(n, i)
        pid = i - 1  # p_i in the paper's 1-based indexing
        for t1 in _fault_sets_avoiding(n, t, frozenset({pid}), max_fault_sets):
            result = run_t_faulty_execution(factory, configuration, t1, delta)
            if result.two_step and result.consensus_value == 1:
                witness_t1 = t1
                j = i
                break
        if j is not None:
            break
    if j is None or witness_t1 is None:
        return None
    pid = j - 1
    config1 = binary_configuration(n, j)
    config0 = binary_configuration(n, j - 1)
    avoid = frozenset(witness_t1) | {pid} | ({pid - 1} if j > 1 else set())
    for t0 in _fault_sets_avoiding(n, t, avoid, max_fault_sets):
        result = run_t_faulty_execution(factory, config0, t0, delta)
        if result.two_step and result.consensus_value != 1:
            return InfluentialWitness(
                pid=pid,
                config0=config0,
                config1=config1,
                t0_set=tuple(t0),
                t1_set=tuple(witness_t1),
                value0=result.consensus_value,
                value1=1,
            )
    return None
