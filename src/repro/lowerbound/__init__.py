"""Section 4 (the lower bound), executable.

* :mod:`~repro.lowerbound.executions` — T-faulty two-step executions;
* :mod:`~repro.lowerbound.checker` — the t-two-step property check;
* :mod:`~repro.lowerbound.influential` — Lemma 4.4's search;
* :mod:`~repro.lowerbound.splice_attack` — Theorem 4.5 as an attack that
  succeeds at ``n = 3f + 2t - 2`` and fails at ``n = 3f + 2t - 1``.
"""

from .checker import (
    TwoStepReport,
    all_fault_sets,
    check_t_two_step,
    suspect_fault_sets,
)
from .executions import (
    InitialConfiguration,
    TFaultyResult,
    binary_configuration,
    run_t_faulty_execution,
)
from .influential import InfluentialWitness, find_influential_process
from .splice_attack import SpliceOutcome, run_splice_attack, splice_boundary_demo

__all__ = [
    "InfluentialWitness",
    "InitialConfiguration",
    "SpliceOutcome",
    "TFaultyResult",
    "TwoStepReport",
    "all_fault_sets",
    "binary_configuration",
    "check_t_two_step",
    "find_influential_process",
    "run_splice_attack",
    "run_t_faulty_execution",
    "splice_boundary_demo",
    "suspect_fault_sets",
]
