/* Compiled backend of the simulation hot path (repro._core._accel).
 *
 * This extension is the second implementation of the backend contract
 * defined by repro/_core/pure.py — the pure-Python module is the
 * executable specification, this file is the same algorithms with the
 * heap, the drain loops, the fast-path send and the canonical
 * serializer in C.  The contract is byte-for-byte equivalence: same
 * event order, same exception types and messages, same canonical bytes,
 * same structural sizes, same stats counters.  The golden trace digests
 * and tests/test_core_backend.py enforce it.
 *
 * Design notes:
 *
 * - Queue entries remain plain Python lists [time, seq, callback], so
 *   EventHandle (and its cancel-by-overwrite protocol) works unchanged
 *   across backends.  The heap itself is a C array of
 *   {double key, long long seq, PyObject *list}: comparisons never
 *   re-enter the interpreter, while the original time *object* is kept
 *   in the entry so int-vs-float timing is preserved exactly (digests
 *   record times; 5 must stay 5, not become 5.0).
 *
 * - `now` is likewise a PyObject* plus a cached double key.  Delivery
 *   times are computed with PyNumber_Add(now, delay) so numeric typing
 *   follows Python semantics.
 *
 * - Callbacks may re-enter the core (schedule, cancel, compact), so the
 *   run loops re-read all core state from the struct after every
 *   callback and never cache the heap pointer across one.
 *
 * - register() wires in the objects the backends must share (the FIRED
 *   sentinel, the exception classes, the payload_size fallback used for
 *   dataclass/object payloads); repro._core calls it at import time.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <math.h>
#include <string.h>

/* ------------------------------------------------------------------ */
/* Shared objects injected by register()                               */
/* ------------------------------------------------------------------ */

static PyObject *g_fired = NULL;         /* repro._core.pure.FIRED */
static PyObject *g_sim_error = NULL;     /* SimulationError */
static PyObject *g_sim_timeout = NULL;   /* SimulationTimeout */
static PyObject *g_size_fallback = NULL; /* pure.payload_size */
static Py_ssize_t g_size_memo_limit = 16;

/* Interned attribute names (created at module init). */
static PyObject *s_messages_sent = NULL;
static PyObject *s_messages_delivered = NULL;
static PyObject *s_bytes_sent = NULL;
static PyObject *s_size_cache_hits = NULL;
static PyObject *s_size_cache_misses = NULL;
static PyObject *s_delay = NULL;
static PyObject *s_signing_fields = NULL;
static PyObject *s_name = NULL; /* "__name__" */

static int
check_registered(void)
{
    if (g_fired == NULL) {
        PyErr_SetString(PyExc_RuntimeError,
                        "repro._core._accel.register() has not been called; "
                        "import the backend through repro._core");
        return -1;
    }
    return 0;
}

/* stats.<attr> += amount   (attr is an interned str, amount a C long) */
static int
stats_inc(PyObject *stats, PyObject *attr, long amount)
{
    PyObject *cur = PyObject_GetAttr(stats, attr);
    if (cur == NULL)
        return -1;
    PyObject *delta = PyLong_FromLong(amount);
    if (delta == NULL) {
        Py_DECREF(cur);
        return -1;
    }
    PyObject *next = PyNumber_Add(cur, delta);
    Py_DECREF(cur);
    Py_DECREF(delta);
    if (next == NULL)
        return -1;
    int rc = PyObject_SetAttr(stats, attr, next);
    Py_DECREF(next);
    return rc;
}

/* stats.<attr> += obj      (obj is a Python number) */
static int
stats_add(PyObject *stats, PyObject *attr, PyObject *obj)
{
    PyObject *cur = PyObject_GetAttr(stats, attr);
    if (cur == NULL)
        return -1;
    PyObject *next = PyNumber_Add(cur, obj);
    Py_DECREF(cur);
    if (next == NULL)
        return -1;
    int rc = PyObject_SetAttr(stats, attr, next);
    Py_DECREF(next);
    return rc;
}

/* ------------------------------------------------------------------ */
/* SimCore: the event heap, clock and run loops                        */
/* ------------------------------------------------------------------ */

typedef struct {
    double key;     /* time as double: heap comparisons stay in C */
    long long seq;  /* tie-break, strictly increasing */
    PyObject *list; /* owned [time, seq, callback] Python list */
} HeapEntry;

typedef struct {
    PyObject_HEAD
    HeapEntry *heap;
    Py_ssize_t size;
    Py_ssize_t capacity;
    PyObject *now; /* owned; the exact object (int or float) */
    double now_key;
    long long seq;
    long long events_processed;
    Py_ssize_t cancelled;
    long long compactions;
    Py_ssize_t compact_min;
} SimCore;

static PyTypeObject SimCore_Type;

static inline int
entry_lt(const HeapEntry *a, const HeapEntry *b)
{
    if (a->key != b->key)
        return a->key < b->key;
    return a->seq < b->seq;
}

static int
heap_reserve(SimCore *self, Py_ssize_t need)
{
    if (need <= self->capacity)
        return 0;
    Py_ssize_t cap = self->capacity ? self->capacity : 64;
    while (cap < need)
        cap += cap;
    HeapEntry *heap = PyMem_Realloc(self->heap, (size_t)cap * sizeof(HeapEntry));
    if (heap == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    self->heap = heap;
    self->capacity = cap;
    return 0;
}

/* Bubble the entry at `pos` up toward the root. */
static void
heap_siftup(HeapEntry *heap, Py_ssize_t pos)
{
    HeapEntry item = heap[pos];
    while (pos > 0) {
        Py_ssize_t parent = (pos - 1) >> 1;
        if (!entry_lt(&item, &heap[parent]))
            break;
        heap[pos] = heap[parent];
        pos = parent;
    }
    heap[pos] = item;
}

/* Bubble the entry at `pos` down into place (children are heaps). */
static void
heap_siftdown(HeapEntry *heap, Py_ssize_t size, Py_ssize_t pos)
{
    HeapEntry item = heap[pos];
    for (;;) {
        Py_ssize_t child = 2 * pos + 1;
        if (child >= size)
            break;
        if (child + 1 < size && entry_lt(&heap[child + 1], &heap[child]))
            child += 1;
        if (!entry_lt(&heap[child], &item))
            break;
        heap[pos] = heap[child];
        pos = child;
    }
    heap[pos] = item;
}

static int
heap_push(SimCore *self, double key, long long seq, PyObject *list)
{
    if (heap_reserve(self, self->size + 1) < 0)
        return -1;
    HeapEntry *e = &self->heap[self->size++];
    e->key = key;
    e->seq = seq;
    e->list = list; /* steals the reference */
    heap_siftup(self->heap, self->size - 1);
    return 0;
}

/* Pop the minimum entry.  Caller owns the returned list reference. */
static HeapEntry
heap_pop(SimCore *self)
{
    HeapEntry top = self->heap[0];
    self->size -= 1;
    if (self->size > 0) {
        self->heap[0] = self->heap[self->size];
        heap_siftdown(self->heap, self->size, 0);
    }
    return top;
}

static void
set_now(SimCore *self, PyObject *time, double key)
{
    Py_INCREF(time);
    Py_SETREF(self->now, time);
    self->now_key = key;
}

static PyObject *
SimCore_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    Py_ssize_t compact_min = 64;
    static char *kwlist[] = {"compact_min", NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|n", kwlist, &compact_min))
        return NULL;
    if (check_registered() < 0)
        return NULL;
    SimCore *self = (SimCore *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    self->heap = NULL;
    self->size = 0;
    self->capacity = 0;
    self->now = PyFloat_FromDouble(0.0);
    if (self->now == NULL) {
        Py_DECREF(self);
        return NULL;
    }
    self->now_key = 0.0;
    self->seq = 0;
    self->events_processed = 0;
    self->cancelled = 0;
    self->compactions = 0;
    self->compact_min = compact_min;
    return (PyObject *)self;
}

static int
SimCore_traverse(SimCore *self, visitproc visit, void *arg)
{
    Py_VISIT(self->now);
    for (Py_ssize_t i = 0; i < self->size; i++)
        Py_VISIT(self->heap[i].list);
    return 0;
}

static int
SimCore_clear_impl(SimCore *self)
{
    Py_CLEAR(self->now);
    for (Py_ssize_t i = 0; i < self->size; i++)
        Py_CLEAR(self->heap[i].list);
    self->size = 0;
    return 0;
}

static void
SimCore_dealloc(SimCore *self)
{
    PyObject_GC_UnTrack(self);
    SimCore_clear_impl(self);
    PyMem_Free(self->heap);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

/* Build the entry list, validate the time, push.  Returns the entry
 * list as a NEW reference (push) or NULL on error. */
static PyObject *
simcore_push_entry(SimCore *self, PyObject *time, PyObject *callback)
{
    double key = PyFloat_AsDouble(time);
    if (key == -1.0 && PyErr_Occurred())
        return NULL;
    if (key < self->now_key) {
        PyErr_Format(g_sim_error,
                     "cannot schedule in the past: time=%S < now=%S",
                     time, self->now);
        return NULL;
    }
    long long seq = self->seq;
    PyObject *seq_obj = PyLong_FromLongLong(seq);
    if (seq_obj == NULL)
        return NULL;
    PyObject *list = PyList_New(3);
    if (list == NULL) {
        Py_DECREF(seq_obj);
        return NULL;
    }
    Py_INCREF(time);
    PyList_SET_ITEM(list, 0, time);
    PyList_SET_ITEM(list, 1, seq_obj);
    Py_INCREF(callback);
    PyList_SET_ITEM(list, 2, callback);
    Py_INCREF(list); /* the heap's reference; `list` stays the caller's */
    if (heap_push(self, key, seq, list) < 0) {
        Py_DECREF(list);
        Py_DECREF(list);
        return NULL;
    }
    self->seq = seq + 1;
    return list;
}

static PyObject *
SimCore_push(SimCore *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError, "push(time, callback)");
        return NULL;
    }
    return simcore_push_entry(self, args[0], args[1]);
}

static PyObject *
SimCore_post(SimCore *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError, "post(time, callback)");
        return NULL;
    }
    PyObject *list = simcore_push_entry(self, args[0], args[1]);
    if (list == NULL)
        return NULL;
    Py_DECREF(list);
    Py_RETURN_NONE;
}

/* Drop cancelled entries in place and restore the heap invariant. */
static void
simcore_compact(SimCore *self)
{
    Py_ssize_t live = 0;
    for (Py_ssize_t i = 0; i < self->size; i++) {
        HeapEntry *e = &self->heap[i];
        if (PyList_GET_ITEM(e->list, 2) == Py_None) {
            Py_DECREF(e->list);
        }
        else {
            self->heap[live++] = *e;
        }
    }
    self->size = live;
    for (Py_ssize_t i = live / 2 - 1; i >= 0; i--)
        heap_siftdown(self->heap, live, i);
    self->cancelled = 0;
    self->compactions += 1;
}

static PyObject *
SimCore_note_cancel(SimCore *self, PyObject *Py_UNUSED(ignored))
{
    Py_ssize_t cancelled = self->cancelled + 1;
    self->cancelled = cancelled;
    if (cancelled >= self->compact_min && cancelled * 2 > self->size)
        simcore_compact(self);
    Py_RETURN_NONE;
}

static PyObject *
SimCore_compact_method(SimCore *self, PyObject *Py_UNUSED(ignored))
{
    simcore_compact(self);
    Py_RETURN_NONE;
}

/* Pop-skip-fire one event.  Returns 1 if an event ran, 0 if the queue
 * was empty, -1 on error (exception set). */
static int
simcore_step(SimCore *self)
{
    while (self->size > 0) {
        HeapEntry top = heap_pop(self);
        PyObject *callback = PyList_GET_ITEM(top.list, 2); /* borrowed */
        if (callback == Py_None) {
            self->cancelled -= 1;
            Py_DECREF(top.list);
            continue;
        }
        Py_INCREF(callback);
        Py_INCREF(g_fired);
        PyList_SetItem(top.list, 2, g_fired); /* decrefs old callback */
        set_now(self, PyList_GET_ITEM(top.list, 0), top.key);
        self->events_processed += 1;
        Py_DECREF(top.list);
        PyObject *result = PyObject_CallNoArgs(callback);
        Py_DECREF(callback);
        if (result == NULL)
            return -1;
        Py_DECREF(result);
        return 1;
    }
    return 0;
}

static PyObject *
SimCore_step(SimCore *self, PyObject *Py_UNUSED(ignored))
{
    int rc = simcore_step(self);
    if (rc < 0)
        return NULL;
    return PyBool_FromLong(rc);
}

static PyObject *
SimCore_drain(SimCore *self, PyObject *Py_UNUSED(ignored))
{
    /* The unbounded drain: identical to step() in a loop, without the
     * per-event Python method dispatch.  State is re-read from the
     * struct every iteration because callbacks re-enter the core. */
    while (self->size > 0) {
        int rc = simcore_step(self);
        if (rc < 0)
            return NULL;
    }
    Py_RETURN_NONE;
}

/* now = max(now, until): Python max() keeps the first argument on ties,
 * so only a strictly larger `until` replaces the clock object. */
static void
advance_now_to(SimCore *self, PyObject *until, double until_key)
{
    if (until_key > self->now_key)
        set_now(self, until, until_key);
}

static PyObject *
SimCore_run_bounded(SimCore *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError, "run_bounded(until, max_events)");
        return NULL;
    }
    PyObject *until = args[0];
    PyObject *max_events = args[1];
    int has_until = until != Py_None;
    int has_max = max_events != Py_None;
    double until_key = 0.0;
    long long max_key = 0;
    if (has_until) {
        until_key = PyFloat_AsDouble(until);
        if (until_key == -1.0 && PyErr_Occurred())
            return NULL;
    }
    if (has_max) {
        max_key = PyLong_AsLongLong(max_events);
        if (max_key == -1 && PyErr_Occurred())
            return NULL;
    }
    long long executed = 0;
    while (self->size > 0) {
        HeapEntry *top = &self->heap[0];
        PyObject *callback = PyList_GET_ITEM(top->list, 2);
        if (callback == Py_None) {
            HeapEntry dead = heap_pop(self);
            self->cancelled -= 1;
            Py_DECREF(dead.list);
            continue;
        }
        if (has_until && top->key > until_key) {
            advance_now_to(self, until, until_key);
            Py_RETURN_NONE;
        }
        if (has_max && executed >= max_key) {
            return PyErr_Format(g_sim_error,
                                "exceeded max_events=%S at time %S",
                                max_events, self->now);
        }
        HeapEntry live = heap_pop(self);
        Py_INCREF(callback);
        Py_INCREF(g_fired);
        PyList_SetItem(live.list, 2, g_fired);
        set_now(self, PyList_GET_ITEM(live.list, 0), live.key);
        self->events_processed += 1;
        executed += 1;
        Py_DECREF(live.list);
        PyObject *result = PyObject_CallNoArgs(callback);
        Py_DECREF(callback);
        if (result == NULL)
            return NULL;
        Py_DECREF(result);
    }
    if (has_until)
        advance_now_to(self, until, until_key);
    Py_RETURN_NONE;
}

static PyObject *
SimCore_run_pred(SimCore *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 3) {
        PyErr_SetString(PyExc_TypeError,
                        "run_pred(predicate, timeout, max_events)");
        return NULL;
    }
    PyObject *predicate = args[0];
    PyObject *timeout = args[1];
    PyObject *max_events = args[2];
    double timeout_key = PyFloat_AsDouble(timeout);
    if (timeout_key == -1.0 && PyErr_Occurred())
        return NULL;
    long long max_key = PyLong_AsLongLong(max_events);
    if (max_key == -1 && PyErr_Occurred())
        return NULL;

    PyObject *verdict = PyObject_CallNoArgs(predicate);
    if (verdict == NULL)
        return NULL;
    int truth = PyObject_IsTrue(verdict);
    Py_DECREF(verdict);
    if (truth < 0)
        return NULL;
    if (truth)
        return Py_NewRef(self->now);

    long long executed = 0;
    while (self->size > 0) {
        HeapEntry *top = &self->heap[0];
        PyObject *callback = PyList_GET_ITEM(top->list, 2);
        if (callback == Py_None) {
            HeapEntry dead = heap_pop(self);
            self->cancelled -= 1;
            Py_DECREF(dead.list);
            continue;
        }
        if (top->key > timeout_key)
            break;
        if (executed >= max_key) {
            return PyErr_Format(g_sim_error,
                                "exceeded max_events=%S at time %S",
                                max_events, self->now);
        }
        HeapEntry live = heap_pop(self);
        Py_INCREF(callback);
        Py_INCREF(g_fired);
        PyList_SetItem(live.list, 2, g_fired);
        set_now(self, PyList_GET_ITEM(live.list, 0), live.key);
        self->events_processed += 1;
        executed += 1;
        Py_DECREF(live.list);
        PyObject *result = PyObject_CallNoArgs(callback);
        Py_DECREF(callback);
        if (result == NULL)
            return NULL;
        Py_DECREF(result);
        verdict = PyObject_CallNoArgs(predicate);
        if (verdict == NULL)
            return NULL;
        truth = PyObject_IsTrue(verdict);
        Py_DECREF(verdict);
        if (truth < 0)
            return NULL;
        if (truth)
            return Py_NewRef(self->now);
    }
    /* min(now, timeout): min() keeps the first argument on ties. */
    PyObject *at = self->now_key <= timeout_key ? self->now : timeout;
    return PyErr_Format(g_sim_timeout,
                        "predicate not satisfied by time %S "
                        "(%lld events executed)",
                        at, executed);
}

static PyObject *
SimCore_get_now(SimCore *self, void *Py_UNUSED(closure))
{
    return Py_NewRef(self->now);
}

static PyObject *
SimCore_get_events_processed(SimCore *self, void *Py_UNUSED(closure))
{
    return PyLong_FromLongLong(self->events_processed);
}

static PyObject *
SimCore_get_pending(SimCore *self, void *Py_UNUSED(closure))
{
    return PyLong_FromSsize_t(self->size - self->cancelled);
}

static PyObject *
SimCore_get_depth(SimCore *self, void *Py_UNUSED(closure))
{
    return PyLong_FromSsize_t(self->size);
}

static PyObject *
SimCore_get_compactions(SimCore *self, void *Py_UNUSED(closure))
{
    return PyLong_FromLongLong(self->compactions);
}

static PyMethodDef SimCore_methods[] = {
    {"push", (PyCFunction)(void (*)(void))SimCore_push, METH_FASTCALL,
     "push(time, callback) -> entry list; schedule and return the entry"},
    {"post", (PyCFunction)(void (*)(void))SimCore_post, METH_FASTCALL,
     "post(time, callback); schedule with no handle (delivery hot path)"},
    {"note_cancel", (PyCFunction)SimCore_note_cancel, METH_NOARGS,
     "count one cancellation and compact when tombstones dominate"},
    {"compact", (PyCFunction)SimCore_compact_method, METH_NOARGS,
     "drop cancelled entries and re-heapify"},
    {"step", (PyCFunction)SimCore_step, METH_NOARGS,
     "run the next live event; returns True if one ran"},
    {"drain", (PyCFunction)SimCore_drain, METH_NOARGS,
     "run every queued event in order"},
    {"run_bounded", (PyCFunction)(void (*)(void))SimCore_run_bounded,
     METH_FASTCALL, "run_bounded(until, max_events)"},
    {"run_pred", (PyCFunction)(void (*)(void))SimCore_run_pred,
     METH_FASTCALL, "run_pred(predicate, timeout, max_events) -> time"},
    {NULL, NULL, 0, NULL},
};

static PyGetSetDef SimCore_getset[] = {
    {"now", (getter)SimCore_get_now, NULL, "current simulation time", NULL},
    {"events_processed", (getter)SimCore_get_events_processed, NULL,
     "events executed so far", NULL},
    {"pending_events", (getter)SimCore_get_pending, NULL,
     "live (non-cancelled) queued events", NULL},
    {"queue_depth", (getter)SimCore_get_depth, NULL,
     "raw queue length, tombstones included", NULL},
    {"compactions", (getter)SimCore_get_compactions, NULL,
     "number of queue compactions so far", NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyTypeObject SimCore_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._core._accel.SimCore",
    .tp_basicsize = sizeof(SimCore),
    .tp_dealloc = (destructor)SimCore_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "C event heap + clock + run loops of the simulator",
    .tp_traverse = (traverseproc)SimCore_traverse,
    .tp_clear = (inquiry)SimCore_clear_impl,
    .tp_methods = SimCore_methods,
    .tp_getset = SimCore_getset,
    .tp_new = SimCore_new,
};

/* ------------------------------------------------------------------ */
/* CDeliver: the posted fast-path delivery callback                    */
/* (C twin of repro._core.pure.make_deliver + functools.partial)       */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    PyObject *handlers; /* the network's live handler dict (borrow-alike, owned ref) */
    PyObject *stats;
    PyObject *dst;
    PyObject *src;
    PyObject *payload;
} CDeliver;

static PyTypeObject CDeliver_Type;

static int
CDeliver_traverse(CDeliver *self, visitproc visit, void *arg)
{
    Py_VISIT(self->handlers);
    Py_VISIT(self->stats);
    Py_VISIT(self->dst);
    Py_VISIT(self->src);
    Py_VISIT(self->payload);
    return 0;
}

static int
CDeliver_clear(CDeliver *self)
{
    Py_CLEAR(self->handlers);
    Py_CLEAR(self->stats);
    Py_CLEAR(self->dst);
    Py_CLEAR(self->src);
    Py_CLEAR(self->payload);
    return 0;
}

static void
CDeliver_dealloc(CDeliver *self)
{
    PyObject_GC_UnTrack(self);
    CDeliver_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyObject *
CDeliver_call(CDeliver *self, PyObject *args, PyObject *kwargs)
{
    /* Handler lookup happens at delivery time: the destination may have
     * been unregistered while the message was in flight. */
    PyObject *handler = PyDict_GetItemWithError(self->handlers, self->dst);
    if (handler == NULL) {
        if (PyErr_Occurred())
            return NULL;
        Py_RETURN_NONE;
    }
    Py_INCREF(handler);
    if (stats_inc(self->stats, s_messages_delivered, 1) < 0) {
        Py_DECREF(handler);
        return NULL;
    }
    PyObject *result =
        PyObject_CallFunctionObjArgs(handler, self->src, self->payload, NULL);
    Py_DECREF(handler);
    return result;
}

static PyTypeObject CDeliver_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._core._accel.CDeliver",
    .tp_basicsize = sizeof(CDeliver),
    .tp_dealloc = (destructor)CDeliver_dealloc,
    .tp_call = (ternaryfunc)CDeliver_call,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "posted zero-rule delivery callback (compiled fast path)",
    .tp_traverse = (traverseproc)CDeliver_traverse,
    .tp_clear = (inquiry)CDeliver_clear,
};

/* ------------------------------------------------------------------ */
/* NetCore: the compiled fast-path send                                */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    SimCore *sim;         /* owned */
    PyObject *handlers;   /* the network's handler dict */
    PyObject *stats;      /* NetworkStats */
    PyObject *envelope;   /* the Envelope NamedTuple class */
    PyObject *fixed;      /* fixed delay (float) or Py_None */
    PyObject *model;      /* the delay model, used when fixed is None */
} NetCore;

static PyTypeObject NetCore_Type;

static PyObject *
NetCore_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    PyObject *sim, *handlers, *stats, *envelope;
    static char *kwlist[] = {"simcore", "handlers", "stats", "envelope_cls",
                             NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O!O!OO", kwlist,
                                     &SimCore_Type, &sim, &PyDict_Type,
                                     &handlers, &stats, &envelope))
        return NULL;
    if (check_registered() < 0)
        return NULL;
    NetCore *self = (NetCore *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    self->sim = (SimCore *)Py_NewRef(sim);
    self->handlers = Py_NewRef(handlers);
    self->stats = Py_NewRef(stats);
    self->envelope = Py_NewRef(envelope);
    self->fixed = Py_NewRef(Py_None);
    self->model = Py_NewRef(Py_None);
    return (PyObject *)self;
}

static int
NetCore_traverse(NetCore *self, visitproc visit, void *arg)
{
    Py_VISIT((PyObject *)self->sim);
    Py_VISIT(self->handlers);
    Py_VISIT(self->stats);
    Py_VISIT(self->envelope);
    Py_VISIT(self->fixed);
    Py_VISIT(self->model);
    return 0;
}

static int
NetCore_clear(NetCore *self)
{
    Py_CLEAR(self->sim);
    Py_CLEAR(self->handlers);
    Py_CLEAR(self->stats);
    Py_CLEAR(self->envelope);
    Py_CLEAR(self->fixed);
    Py_CLEAR(self->model);
    return 0;
}

static void
NetCore_dealloc(NetCore *self)
{
    PyObject_GC_UnTrack(self);
    NetCore_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyObject *
NetCore_set_delay(NetCore *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError, "set_delay(fixed_or_None, model)");
        return NULL;
    }
    Py_INCREF(args[0]);
    Py_SETREF(self->fixed, args[0]);
    Py_INCREF(args[1]);
    Py_SETREF(self->model, args[1]);
    Py_RETURN_NONE;
}

static PyObject *
NetCore_send(NetCore *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 4) {
        PyErr_SetString(PyExc_TypeError, "send(src, dst, payload, size)");
        return NULL;
    }
    PyObject *src = args[0];
    PyObject *dst = args[1];
    PyObject *payload = args[2];
    PyObject *size = args[3];
    SimCore *sim = self->sim;

    int has = PyDict_Contains(self->handlers, dst);
    if (has < 0)
        return NULL;
    if (!has) {
        PyErr_Format(PyExc_ValueError, "unknown destination process %S", dst);
        return NULL;
    }

    PyObject *now = sim->now; /* borrowed: sim holds it for this scope */
    PyObject *deliver;
    if (self->fixed != Py_None) {
        deliver = PyNumber_Add(now, self->fixed);
        if (deliver == NULL)
            return NULL;
    }
    else {
        PyObject *delay = PyObject_CallMethodObjArgs(self->model, s_delay,
                                                     src, dst, now, NULL);
        if (delay == NULL)
            return NULL;
        double d = PyFloat_AsDouble(delay);
        if (d == -1.0 && PyErr_Occurred()) {
            Py_DECREF(delay);
            return NULL;
        }
        /* !(d >= 0 && d < inf) also rejects NaN, like the pure chain. */
        if (!(d >= 0.0 && d < INFINITY)) {
            PyErr_Format(PyExc_ValueError,
                         "delay model returned invalid delay %S", delay);
            Py_DECREF(delay);
            return NULL;
        }
        deliver = PyNumber_Add(now, delay);
        Py_DECREF(delay);
        if (deliver == NULL)
            return NULL;
    }

    PyObject *envelope = PyObject_CallFunctionObjArgs(
        self->envelope, src, dst, payload, now, deliver, NULL);
    if (envelope == NULL) {
        Py_DECREF(deliver);
        return NULL;
    }
    if (stats_inc(self->stats, s_messages_sent, 1) < 0 ||
        stats_add(self->stats, s_bytes_sent, size) < 0) {
        Py_DECREF(deliver);
        Py_DECREF(envelope);
        return NULL;
    }

    CDeliver *cb = PyObject_GC_New(CDeliver, &CDeliver_Type);
    if (cb == NULL) {
        Py_DECREF(deliver);
        Py_DECREF(envelope);
        return NULL;
    }
    cb->handlers = Py_NewRef(self->handlers);
    cb->stats = Py_NewRef(self->stats);
    cb->dst = Py_NewRef(dst);
    cb->src = Py_NewRef(src);
    cb->payload = Py_NewRef(payload);
    PyObject_GC_Track(cb);

    PyObject *entry = simcore_push_entry(sim, deliver, (PyObject *)cb);
    Py_DECREF(deliver);
    Py_DECREF(cb);
    if (entry == NULL) {
        Py_DECREF(envelope);
        return NULL;
    }
    Py_DECREF(entry);
    return envelope;
}

static PyMethodDef NetCore_methods[] = {
    {"set_delay", (PyCFunction)(void (*)(void))NetCore_set_delay,
     METH_FASTCALL,
     "set_delay(fixed_or_None, model): install the delay strategy"},
    {"send", (PyCFunction)(void (*)(void))NetCore_send, METH_FASTCALL,
     "send(src, dst, payload, size) -> Envelope (zero-rule fast path)"},
    {NULL, NULL, 0, NULL},
};

static PyTypeObject NetCore_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._core._accel.NetCore",
    .tp_basicsize = sizeof(NetCore),
    .tp_dealloc = (destructor)NetCore_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "compiled zero-rule fast-path send for the network",
    .tp_traverse = (traverseproc)NetCore_traverse,
    .tp_clear = (inquiry)NetCore_clear,
    .tp_methods = NetCore_methods,
    .tp_new = NetCore_new,
};

/* ------------------------------------------------------------------ */
/* canonical_bytes: the deterministic serializer                       */
/* ------------------------------------------------------------------ */

/* A tiny growable byte buffer for one serialization. */
typedef struct {
    char *data;
    Py_ssize_t len;
    Py_ssize_t cap;
} Buf;

static int
buf_reserve(Buf *b, Py_ssize_t extra)
{
    if (b->len + extra <= b->cap)
        return 0;
    Py_ssize_t cap = b->cap ? b->cap : 64;
    while (cap < b->len + extra)
        cap += cap;
    char *data = PyMem_Realloc(b->data, (size_t)cap);
    if (data == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    b->data = data;
    b->cap = cap;
    return 0;
}

static int
buf_put(Buf *b, const char *bytes, Py_ssize_t n)
{
    if (buf_reserve(b, n) < 0)
        return -1;
    memcpy(b->data + b->len, bytes, (size_t)n);
    b->len += n;
    return 0;
}

static int
buf_put_char(Buf *b, char c)
{
    return buf_put(b, &c, 1);
}

/* 4-byte big-endian length, matching len(data).to_bytes(4, "big"). */
static int
buf_put_be32(Buf *b, Py_ssize_t n)
{
    if (n > 0xffffffffLL || n < 0) {
        PyErr_SetString(PyExc_OverflowError,
                        "canonical_bytes: length exceeds 4 bytes");
        return -1;
    }
    unsigned char be[4] = {(unsigned char)((n >> 24) & 0xff),
                           (unsigned char)((n >> 16) & 0xff),
                           (unsigned char)((n >> 8) & 0xff),
                           (unsigned char)(n & 0xff)};
    return buf_put(b, (const char *)be, 4);
}

static int
buf_put_be16(Buf *b, Py_ssize_t n)
{
    if (n > 0xffffLL || n < 0) {
        PyErr_SetString(PyExc_OverflowError,
                        "canonical_bytes: type tag exceeds 2 bytes");
        return -1;
    }
    unsigned char be[2] = {(unsigned char)((n >> 8) & 0xff),
                           (unsigned char)(n & 0xff)};
    return buf_put(b, (const char *)be, 2);
}

static int canon(PyObject *obj, Buf *out);

/* Serialize one object into a fresh PyBytes (for sort-then-join). */
static PyObject *
canon_to_bytes(PyObject *obj)
{
    Buf b = {NULL, 0, 0};
    if (canon(obj, &b) < 0) {
        PyMem_Free(b.data);
        return NULL;
    }
    PyObject *result = PyBytes_FromStringAndSize(b.data, b.len);
    PyMem_Free(b.data);
    return result;
}

static int
bytes_cmp(PyObject *a, PyObject *b)
{
    Py_ssize_t la = PyBytes_GET_SIZE(a);
    Py_ssize_t lb = PyBytes_GET_SIZE(b);
    Py_ssize_t n = la < lb ? la : lb;
    int c = memcmp(PyBytes_AS_STRING(a), PyBytes_AS_STRING(b), (size_t)n);
    if (c != 0)
        return c;
    return la < lb ? -1 : (la > lb ? 1 : 0);
}

static int
cmp_bytes_qsort(const void *pa, const void *pb)
{
    return bytes_cmp(*(PyObject *const *)pa, *(PyObject *const *)pb);
}

typedef struct {
    PyObject *k;
    PyObject *v;
} KVPair;

static int
cmp_kv_qsort(const void *pa, const void *pb)
{
    const KVPair *a = (const KVPair *)pa;
    const KVPair *b = (const KVPair *)pb;
    int c = bytes_cmp(a->k, b->k);
    if (c != 0)
        return c;
    return bytes_cmp(a->v, b->v);
}

static int
canon(PyObject *obj, Buf *out)
{
    if (obj == Py_None)
        return buf_put_char(out, 'N');
    if (PyBool_Check(obj))
        return buf_put(out, obj == Py_True ? "B1" : "B0", 2);
    if (PyLong_Check(obj)) {
        PyObject *str = PyObject_Str(obj);
        if (str == NULL)
            return -1;
        Py_ssize_t n;
        const char *utf8 = PyUnicode_AsUTF8AndSize(str, &n);
        if (utf8 == NULL || buf_put_char(out, 'I') < 0 ||
            buf_put_be32(out, n) < 0 || buf_put(out, utf8, n) < 0) {
            Py_DECREF(str);
            return -1;
        }
        Py_DECREF(str);
        return 0;
    }
    if (PyFloat_Check(obj)) {
        PyObject *repr = PyObject_Repr(obj);
        if (repr == NULL)
            return -1;
        Py_ssize_t n;
        const char *utf8 = PyUnicode_AsUTF8AndSize(repr, &n);
        if (utf8 == NULL || buf_put_char(out, 'F') < 0 ||
            buf_put_be32(out, n) < 0 || buf_put(out, utf8, n) < 0) {
            Py_DECREF(repr);
            return -1;
        }
        Py_DECREF(repr);
        return 0;
    }
    if (PyUnicode_Check(obj)) {
        Py_ssize_t n;
        const char *utf8 = PyUnicode_AsUTF8AndSize(obj, &n);
        if (utf8 == NULL)
            return -1;
        if (buf_put_char(out, 'S') < 0 || buf_put_be32(out, n) < 0)
            return -1;
        return buf_put(out, utf8, n);
    }
    if (PyBytes_Check(obj)) {
        Py_ssize_t n = PyBytes_GET_SIZE(obj);
        if (buf_put_char(out, 'Y') < 0 || buf_put_be32(out, n) < 0)
            return -1;
        return buf_put(out, PyBytes_AS_STRING(obj), n);
    }
    if (PyTuple_Check(obj) || PyList_Check(obj)) {
        if (Py_EnterRecursiveCall(" in canonical_bytes"))
            return -1;
        Py_ssize_t n = PySequence_Fast_GET_SIZE(obj);
        int rc = buf_put_char(out, 'T') < 0 || buf_put_be32(out, n) < 0 ? -1 : 0;
        for (Py_ssize_t i = 0; rc == 0 && i < n; i++) {
            PyObject *item = PyTuple_Check(obj) ? PyTuple_GET_ITEM(obj, i)
                                                : PyList_GET_ITEM(obj, i);
            rc = canon(item, out);
        }
        Py_LeaveRecursiveCall();
        return rc;
    }
    if (PyAnySet_Check(obj)) {
        if (Py_EnterRecursiveCall(" in canonical_bytes"))
            return -1;
        Py_ssize_t n = PySet_GET_SIZE(obj);
        PyObject **parts = PyMem_Malloc((size_t)(n ? n : 1) * sizeof(PyObject *));
        if (parts == NULL) {
            Py_LeaveRecursiveCall();
            PyErr_NoMemory();
            return -1;
        }
        Py_ssize_t count = 0;
        int rc = 0;
        PyObject *iter = PyObject_GetIter(obj);
        if (iter == NULL)
            rc = -1;
        else {
            PyObject *item;
            while ((item = PyIter_Next(iter)) != NULL) {
                PyObject *bytes = canon_to_bytes(item);
                Py_DECREF(item);
                if (bytes == NULL) {
                    rc = -1;
                    break;
                }
                parts[count++] = bytes;
            }
            if (PyErr_Occurred())
                rc = -1;
            Py_DECREF(iter);
        }
        if (rc == 0) {
            qsort(parts, (size_t)count, sizeof(PyObject *), cmp_bytes_qsort);
            rc = buf_put_char(out, 'E') < 0 || buf_put_be32(out, count) < 0
                     ? -1
                     : 0;
            for (Py_ssize_t i = 0; rc == 0 && i < count; i++)
                rc = buf_put(out, PyBytes_AS_STRING(parts[i]),
                             PyBytes_GET_SIZE(parts[i]));
        }
        for (Py_ssize_t i = 0; i < count; i++)
            Py_DECREF(parts[i]);
        PyMem_Free(parts);
        Py_LeaveRecursiveCall();
        return rc;
    }
    if (PyDict_Check(obj)) {
        if (Py_EnterRecursiveCall(" in canonical_bytes"))
            return -1;
        Py_ssize_t n = PyDict_GET_SIZE(obj);
        KVPair *pairs = PyMem_Malloc((size_t)(n ? n : 1) * sizeof(KVPair));
        if (pairs == NULL) {
            Py_LeaveRecursiveCall();
            PyErr_NoMemory();
            return -1;
        }
        Py_ssize_t count = 0;
        int rc = 0;
        Py_ssize_t pos = 0;
        PyObject *key, *value;
        while (rc == 0 && PyDict_Next(obj, &pos, &key, &value)) {
            PyObject *kb = canon_to_bytes(key);
            if (kb == NULL) {
                rc = -1;
                break;
            }
            PyObject *vb = canon_to_bytes(value);
            if (vb == NULL) {
                Py_DECREF(kb);
                rc = -1;
                break;
            }
            pairs[count].k = kb;
            pairs[count].v = vb;
            count++;
        }
        if (rc == 0) {
            qsort(pairs, (size_t)count, sizeof(KVPair), cmp_kv_qsort);
            rc = buf_put_char(out, 'D') < 0 || buf_put_be32(out, count) < 0
                     ? -1
                     : 0;
            for (Py_ssize_t i = 0; rc == 0 && i < count; i++) {
                rc = buf_put(out, PyBytes_AS_STRING(pairs[i].k),
                             PyBytes_GET_SIZE(pairs[i].k));
                if (rc == 0)
                    rc = buf_put(out, PyBytes_AS_STRING(pairs[i].v),
                                 PyBytes_GET_SIZE(pairs[i].v));
            }
        }
        for (Py_ssize_t i = 0; i < count; i++) {
            Py_DECREF(pairs[i].k);
            Py_DECREF(pairs[i].v);
        }
        PyMem_Free(pairs);
        Py_LeaveRecursiveCall();
        return rc;
    }
    /* Objects exposing signing_fields() — the protocol dataclasses. */
    PyObject *fields_method = PyObject_GetAttr(obj, s_signing_fields);
    if (fields_method == NULL) {
        if (!PyErr_ExceptionMatches(PyExc_AttributeError))
            return -1;
        PyErr_Clear();
    }
    if (fields_method != NULL && PyCallable_Check(fields_method)) {
        if (Py_EnterRecursiveCall(" in canonical_bytes")) {
            Py_DECREF(fields_method);
            return -1;
        }
        int rc = 0;
        PyObject *type_name =
            PyObject_GetAttr((PyObject *)Py_TYPE(obj), s_name);
        Py_ssize_t tag_len = 0;
        const char *tag = NULL;
        if (type_name == NULL)
            rc = -1;
        else {
            tag = PyUnicode_AsUTF8AndSize(type_name, &tag_len);
            if (tag == NULL)
                rc = -1;
        }
        if (rc == 0)
            rc = buf_put_char(out, 'O') < 0 || buf_put_be16(out, tag_len) < 0 ||
                         buf_put(out, tag, tag_len) < 0
                     ? -1
                     : 0;
        if (rc == 0) {
            PyObject *fields = PyObject_CallNoArgs(fields_method);
            if (fields == NULL)
                rc = -1;
            else {
                rc = canon(fields, out);
                Py_DECREF(fields);
            }
        }
        Py_XDECREF(type_name);
        Py_DECREF(fields_method);
        Py_LeaveRecursiveCall();
        return rc;
    }
    Py_XDECREF(fields_method);
    PyObject *type_name = PyObject_GetAttr((PyObject *)Py_TYPE(obj), s_name);
    if (type_name == NULL)
        return -1;
    PyErr_Format(PyExc_TypeError, "cannot canonicalize %S: %R", type_name,
                 obj);
    Py_DECREF(type_name);
    return -1;
}

static PyObject *
accel_canonical_bytes(PyObject *Py_UNUSED(module), PyObject *obj)
{
    return canon_to_bytes(obj);
}

/* ------------------------------------------------------------------ */
/* payload_size: the structural size model                             */
/* ------------------------------------------------------------------ */

static int size_of(PyObject *obj, long long *out);

static int
size_of_iterable(PyObject *obj, long long *out)
{
    PyObject *iter = PyObject_GetIter(obj);
    if (iter == NULL)
        return -1;
    long long total = 2;
    PyObject *item;
    while ((item = PyIter_Next(iter)) != NULL) {
        long long part;
        int rc = size_of(item, &part);
        Py_DECREF(item);
        if (rc < 0) {
            Py_DECREF(iter);
            return -1;
        }
        total += part;
    }
    Py_DECREF(iter);
    if (PyErr_Occurred())
        return -1;
    *out = total;
    return 0;
}

static int
size_of(PyObject *obj, long long *out)
{
    if (obj == Py_None || PyBool_Check(obj)) {
        *out = 1;
        return 0;
    }
    if (PyLong_Check(obj) || PyFloat_Check(obj)) {
        *out = 8;
        return 0;
    }
    if (PyUnicode_Check(obj)) {
        Py_ssize_t n;
        if (PyUnicode_AsUTF8AndSize(obj, &n) == NULL)
            return -1;
        *out = (long long)n + 1;
        return 0;
    }
    if (PyBytes_Check(obj)) {
        *out = (long long)PyBytes_GET_SIZE(obj);
        return 0;
    }
    if (PyByteArray_Check(obj)) {
        *out = (long long)PyByteArray_GET_SIZE(obj);
        return 0;
    }
    if (PyTuple_Check(obj) || PyList_Check(obj) || PyAnySet_Check(obj)) {
        if (Py_EnterRecursiveCall(" in payload_size"))
            return -1;
        int rc = size_of_iterable(obj, out);
        Py_LeaveRecursiveCall();
        return rc;
    }
    if (PyDict_Check(obj)) {
        if (Py_EnterRecursiveCall(" in payload_size"))
            return -1;
        long long total = 2;
        Py_ssize_t pos = 0;
        PyObject *key, *value;
        int rc = 0;
        while (rc == 0 && PyDict_Next(obj, &pos, &key, &value)) {
            long long part;
            rc = size_of(key, &part);
            if (rc == 0) {
                total += part;
                rc = size_of(value, &part);
                if (rc == 0)
                    total += part;
            }
        }
        Py_LeaveRecursiveCall();
        if (rc < 0)
            return -1;
        *out = total;
        return 0;
    }
    /* Dataclasses, __dict__ objects and repr-sized leftovers go through
     * the pure reference implementation: identical by construction. */
    PyObject *size = PyObject_CallOneArg(g_size_fallback, obj);
    if (size == NULL)
        return -1;
    long long n = PyLong_AsLongLong(size);
    Py_DECREF(size);
    if (n == -1 && PyErr_Occurred())
        return -1;
    *out = n;
    return 0;
}

static PyObject *
accel_payload_size(PyObject *Py_UNUSED(module), PyObject *obj)
{
    if (check_registered() < 0)
        return NULL;
    long long n;
    if (size_of(obj, &n) < 0)
        return NULL;
    return PyLong_FromLongLong(n);
}

static PyObject *
accel_payload_size_cached(PyObject *Py_UNUSED(module), PyObject *const *args,
                          Py_ssize_t nargs)
{
    if (nargs != 3) {
        PyErr_SetString(PyExc_TypeError,
                        "payload_size_cached(memo, stats, payload)");
        return NULL;
    }
    if (check_registered() < 0)
        return NULL;
    PyObject *memo = args[0];
    PyObject *stats = args[1];
    PyObject *payload = args[2];
    if (!PyDict_Check(memo)) {
        PyErr_SetString(PyExc_TypeError, "memo must be a dict");
        return NULL;
    }
    PyObject *key = PyLong_FromVoidPtr(payload);
    if (key == NULL)
        return NULL;
    PyObject *entry = PyDict_GetItemWithError(memo, key);
    if (entry == NULL && PyErr_Occurred()) {
        Py_DECREF(key);
        return NULL;
    }
    if (entry != NULL && PyTuple_Check(entry) &&
        PyTuple_GET_ITEM(entry, 0) == payload) {
        Py_DECREF(key);
        if (stats_inc(stats, s_size_cache_hits, 1) < 0)
            return NULL;
        return Py_NewRef(PyTuple_GET_ITEM(entry, 1));
    }
    long long n;
    if (size_of(payload, &n) < 0) {
        Py_DECREF(key);
        return NULL;
    }
    PyObject *size = PyLong_FromLongLong(n);
    if (size == NULL) {
        Py_DECREF(key);
        return NULL;
    }
    if (PyDict_GET_SIZE(memo) >= g_size_memo_limit) {
        /* Evict the oldest entry (dict preserves insertion order). */
        Py_ssize_t pos = 0;
        PyObject *first_key, *first_value;
        if (PyDict_Next(memo, &pos, &first_key, &first_value)) {
            Py_INCREF(first_key);
            int rc = PyDict_DelItem(memo, first_key);
            Py_DECREF(first_key);
            if (rc < 0) {
                Py_DECREF(key);
                Py_DECREF(size);
                return NULL;
            }
        }
    }
    PyObject *pair = PyTuple_Pack(2, payload, size);
    if (pair == NULL) {
        Py_DECREF(key);
        Py_DECREF(size);
        return NULL;
    }
    int rc = PyDict_SetItem(memo, key, pair);
    Py_DECREF(pair);
    Py_DECREF(key);
    if (rc < 0) {
        Py_DECREF(size);
        return NULL;
    }
    if (stats_inc(stats, s_size_cache_misses, 1) < 0) {
        Py_DECREF(size);
        return NULL;
    }
    return size;
}

/* ------------------------------------------------------------------ */
/* register(): wire in the shared objects                              */
/* ------------------------------------------------------------------ */

static PyObject *
accel_register(PyObject *Py_UNUSED(module), PyObject *args, PyObject *kwds)
{
    PyObject *fired, *sim_error, *sim_timeout, *size_fallback;
    Py_ssize_t size_memo_limit;
    static char *kwlist[] = {"fired", "simulation_error", "simulation_timeout",
                             "payload_size_fallback", "size_memo_limit", NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "$OOOOn", kwlist, &fired,
                                     &sim_error, &sim_timeout, &size_fallback,
                                     &size_memo_limit))
        return NULL;
    Py_INCREF(fired);
    Py_XSETREF(g_fired, fired);
    Py_INCREF(sim_error);
    Py_XSETREF(g_sim_error, sim_error);
    Py_INCREF(sim_timeout);
    Py_XSETREF(g_sim_timeout, sim_timeout);
    Py_INCREF(size_fallback);
    Py_XSETREF(g_size_fallback, size_fallback);
    g_size_memo_limit = size_memo_limit;
    Py_RETURN_NONE;
}

/* ------------------------------------------------------------------ */
/* Module                                                              */
/* ------------------------------------------------------------------ */

static PyMethodDef accel_methods[] = {
    {"register", (PyCFunction)(void (*)(void))accel_register,
     METH_VARARGS | METH_KEYWORDS,
     "register(*, fired, simulation_error, simulation_timeout, "
     "payload_size_fallback, size_memo_limit): install shared objects"},
    {"canonical_bytes", accel_canonical_bytes, METH_O,
     "deterministic payload serialization (byte-identical to pure)"},
    {"payload_size", accel_payload_size, METH_O,
     "structural payload size estimate (identical to pure)"},
    {"payload_size_cached",
     (PyCFunction)(void (*)(void))accel_payload_size_cached, METH_FASTCALL,
     "payload_size_cached(memo, stats, payload): bounded identity memo"},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef accel_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro._core._accel",
    .m_doc = "compiled backend of the simulation hot path",
    .m_size = -1,
    .m_methods = accel_methods,
};

PyMODINIT_FUNC
PyInit__accel(void)
{
    s_messages_sent = PyUnicode_InternFromString("messages_sent");
    s_messages_delivered = PyUnicode_InternFromString("messages_delivered");
    s_bytes_sent = PyUnicode_InternFromString("bytes_sent");
    s_size_cache_hits = PyUnicode_InternFromString("size_cache_hits");
    s_size_cache_misses = PyUnicode_InternFromString("size_cache_misses");
    s_delay = PyUnicode_InternFromString("delay");
    s_signing_fields = PyUnicode_InternFromString("signing_fields");
    s_name = PyUnicode_InternFromString("__name__");
    if (s_messages_sent == NULL || s_messages_delivered == NULL ||
        s_bytes_sent == NULL || s_size_cache_hits == NULL ||
        s_size_cache_misses == NULL || s_delay == NULL ||
        s_signing_fields == NULL || s_name == NULL)
        return NULL;
    if (PyType_Ready(&SimCore_Type) < 0 || PyType_Ready(&CDeliver_Type) < 0 ||
        PyType_Ready(&NetCore_Type) < 0)
        return NULL;
    PyObject *module = PyModule_Create(&accel_module);
    if (module == NULL)
        return NULL;
    if (PyModule_AddObjectRef(module, "SimCore", (PyObject *)&SimCore_Type) <
            0 ||
        PyModule_AddObjectRef(module, "NetCore", (PyObject *)&NetCore_Type) <
            0) {
        Py_DECREF(module);
        return NULL;
    }
    return module;
}
