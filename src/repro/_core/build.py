"""Build the optional compiled backend in place.

``python -m repro._core.build`` compiles ``repro._core._accel`` from
``_accel.c`` and drops the shared object next to it, so the next
interpreter start auto-detects it (see :mod:`repro._core`).  It needs a
C toolchain and the CPython headers; environments without one simply
stay on the pure backend — nothing in the repository *requires* the
extension.

Exit status: 0 on a successful build (verified by importing the result
in a subprocess), 1 on failure.  ``--check`` skips building and only
reports whether the extension is currently importable.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
import sysconfig
from pathlib import Path

_HERE = Path(__file__).resolve().parent
_SOURCE = _HERE / "_accel.c"

#: Verifying the build means importing it in a *fresh* interpreter: this
#: process may already hold a pure-backend repro._core.
_VERIFY = (
    "import repro._core as c; "
    "raise SystemExit(0 if c.HAVE_ACCEL else 1)"
)


def extension_path() -> Path:
    """Where the in-place shared object lands for this interpreter."""
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    return _HERE / f"_accel{suffix}"


def have_extension() -> bool:
    return extension_path().exists()


def build(verbose: bool = False) -> bool:
    """Compile the extension in place; returns True on success."""
    repo_root = _HERE.parent.parent.parent
    cmd = [
        sys.executable,
        str(repo_root / "setup.py"),
        "build_ext",
        "--inplace",
    ]
    result = subprocess.run(
        cmd,
        cwd=repo_root,
        capture_output=not verbose,
        text=True,
    )
    if result.returncode != 0:
        if not verbose:
            sys.stderr.write(result.stdout or "")
            sys.stderr.write(result.stderr or "")
        return False
    verify = subprocess.run(
        [sys.executable, "-c", _VERIFY],
        cwd=repo_root,
        env={"PYTHONPATH": str(repo_root / "src"), "REPRO_ACCEL": "1"},
        capture_output=True,
        text=True,
    )
    if verify.returncode != 0:
        sys.stderr.write(verify.stderr or "")
        return False
    return True


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro._core.build",
        description="build the compiled simulation backend in place",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="only report whether the extension is already built",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="show compiler output"
    )
    args = parser.parse_args(argv)
    if args.check:
        if have_extension():
            print(f"compiled backend present: {extension_path()}")
            return 0
        print("compiled backend not built")
        return 1
    if not _SOURCE.exists():
        print(f"missing source file {_SOURCE}", file=sys.stderr)
        return 1
    if build(verbose=args.verbose):
        print(f"built {extension_path()}")
        return 0
    print(
        "build failed; the pure-Python backend remains fully functional",
        file=sys.stderr,
    )
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
