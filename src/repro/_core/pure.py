"""Pure-Python reference implementation of the simulation hot path.

This module is one half of the pluggable backend layer in
:mod:`repro._core` (the other half is the optional compiled extension
``repro._core._accel``).  It collects the *measured* hot spots of the
repository — the event-loop drain from :mod:`repro.sim.events`, the
zero-rule envelope delivery and payload sizing from
:mod:`repro.sim.network`, and canonical serialization + HMAC signing
from :mod:`repro.crypto.keys` — behind small, tight functions with no
intra-repository imports, so either backend can implement the same
contract.

The contract is *byte-for-byte equivalence*: both backends must execute
events in identical ``(time, seq)`` order, produce identical
``canonical_bytes`` serializations and identical structural payload
sizes.  The golden trace digests in ``tests/golden/`` pin this down for
whole scenario runs, and ``tests/test_core_backend.py`` pins it for the
primitives.

Everything here is deliberately boring Python: this file is the
executable specification the compiled backend is checked against, and
the fallback every environment without a C toolchain runs in production.
"""

from __future__ import annotations

import dataclasses
import hashlib
import heapq
import hmac as _hmac
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "FIRED",
    "SIZE_MEMO_LIMIT",
    "CanonicalMemo",
    "SimulationError",
    "SimulationTimeout",
    "canonical_bytes",
    "compact",
    "drain",
    "hmac_sha256",
    "make_deliver",
    "payload_size",
    "payload_size_cached",
    "run_bounded",
    "run_pred",
    "step",
]


class SimulationError(Exception):
    """Base class for errors raised by the simulation core."""


class SimulationTimeout(SimulationError):
    """Raised by ``Simulator.run_until`` when the predicate never holds."""


#: Stamped into an entry's callback slot once it has been executed, so a
#: late ``cancel()`` on a handle whose event already fired is a no-op
#: instead of corrupting the cancelled-entry accounting (the entry is no
#: longer in the queue, so it must not count toward compaction).  Shared
#: by both backends: a handle created under one must cancel correctly
#: under the other.
FIRED: Any = object()


# ---------------------------------------------------------------------------
# Event loop: heap push/pop/compact and the drain loops
# (the hot half of repro.sim.events.Simulator)
# ---------------------------------------------------------------------------


def compact(queue: List[List[Any]]) -> None:
    """Drop cancelled entries from ``queue`` and re-heapify, in place.

    Heap order is a function of the ``(time, seq)`` keys only, so
    rebuilding the heap from the surviving entries cannot perturb the
    pop order — determinism is unaffected.  The rebuild is in place
    (slice assignment): the run loops hold a direct reference to the
    queue list, and a cancel from inside a callback must not strand
    them on a stale copy.
    """
    queue[:] = [entry for entry in queue if entry[2] is not None]
    heapq.heapify(queue)


def step(sim: Any) -> bool:
    """Execute the single next live event of ``sim``; ``False`` if empty."""
    queue = sim._queue
    while queue:
        entry = heapq.heappop(queue)
        callback = entry[2]
        if callback is None:
            sim._cancelled -= 1
            continue
        entry[2] = FIRED
        sim._now = entry[0]
        sim._events_processed += 1
        callback()
        return True
    return False


def drain(sim: Any) -> None:
    """Unbounded drain: run every queued event of ``sim`` in order.

    The common case, with no per-event bound checks and no peek-then-pop
    double touch.  Mutates ``sim._now`` / ``sim._events_processed`` /
    ``sim._cancelled`` exactly like the historical inline loop.
    """
    queue = sim._queue
    heappop = heapq.heappop
    while queue:
        entry = heappop(queue)
        callback = entry[2]
        if callback is None:
            sim._cancelled -= 1
            continue
        entry[2] = FIRED
        sim._now = entry[0]
        sim._events_processed += 1
        callback()


def run_bounded(
    sim: Any, until: Optional[float], max_events: Optional[int]
) -> None:
    """Bounded run: stop at simulation time ``until`` and/or raise after
    ``max_events`` executed events (the runaway-protocol guard)."""
    queue = sim._queue
    heappop = heapq.heappop
    executed = 0
    while queue:
        entry = queue[0]
        callback = entry[2]
        if callback is None:
            heappop(queue)
            sim._cancelled -= 1
            continue
        time = entry[0]
        if until is not None and time > until:
            sim._now = max(sim._now, until)
            return
        if max_events is not None and executed >= max_events:
            raise SimulationError(
                f"exceeded max_events={max_events} at time {sim._now}"
            )
        heappop(queue)
        entry[2] = FIRED
        sim._now = time
        sim._events_processed += 1
        executed += 1
        callback()
    if until is not None:
        sim._now = max(sim._now, until)


def run_pred(
    sim: Any,
    predicate: Callable[[], bool],
    timeout: float,
    max_events: int,
) -> float:
    """Run ``sim`` until ``predicate()`` holds; return the time it did.

    Raises :class:`SimulationTimeout` if the queue drains or the
    simulated ``timeout`` passes first, :class:`SimulationError` past
    ``max_events``.
    """
    queue = sim._queue
    heappop = heapq.heappop
    executed = 0
    if predicate():
        return sim._now
    while queue:
        entry = queue[0]
        callback = entry[2]
        if callback is None:
            heappop(queue)
            sim._cancelled -= 1
            continue
        time = entry[0]
        if time > timeout:
            break
        if executed >= max_events:
            raise SimulationError(
                f"exceeded max_events={max_events} at time {sim._now}"
            )
        heappop(queue)
        entry[2] = FIRED
        sim._now = time
        sim._events_processed += 1
        executed += 1
        callback()
        if predicate():
            return sim._now
    raise SimulationTimeout(
        f"predicate not satisfied by time {min(sim._now, timeout)} "
        f"({executed} events executed)"
    )


# ---------------------------------------------------------------------------
# Envelope payload sizing + zero-rule delivery
# (the hot half of repro.sim.network.Network)
# ---------------------------------------------------------------------------


def payload_size(payload: Any) -> int:
    """Deterministic structural size estimate of a payload, in bytes.

    The simulation never serializes messages, so "bytes on the wire" is a
    model, not a measurement: primitives cost their natural width, strings
    and bytes their length, and containers/dataclasses a small framing
    overhead plus the recursive cost of their fields.  The estimate is
    stable across runs and platforms, which is what the bandwidth-style
    metrics (``NetworkStats.bytes_sent``) need.
    """
    if payload is None or isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return 8
    if isinstance(payload, float):
        return 8
    if isinstance(payload, str):
        return len(payload.encode("utf-8")) + 1
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, (tuple, list, set, frozenset)):
        return 2 + sum(payload_size(item) for item in payload)
    if isinstance(payload, dict):
        return 2 + sum(
            payload_size(k) + payload_size(v) for k, v in payload.items()
        )
    if dataclasses.is_dataclass(payload):
        return 2 + sum(
            payload_size(getattr(payload, f.name))
            for f in dataclasses.fields(payload)
        )
    if hasattr(payload, "__dict__"):
        return 2 + sum(payload_size(v) for v in vars(payload).values())
    return len(repr(payload))


#: Entries kept in the payload-size memo before eviction.  Broadcasts
#: repopulate it in one miss per distinct payload, so a small bound keeps
#: the strong references negligible.
SIZE_MEMO_LIMIT = 16


def payload_size_cached(
    memo: Dict[int, Tuple[Any, int]], stats: Any, payload: Any
) -> int:
    """Bounded identity-keyed payload-size memo with safe keying.

    CPython reuses ``id()`` values as soon as an object is garbage
    collected, so a bare ``{id: size}`` mapping can alias a brand-new
    payload to a stale size.  Two properties make this memo safe:

    * every entry keeps a **strong reference** to its payload, so the
      cached id cannot be reused while the entry is alive;
    * a hit additionally requires ``entry[0] is payload`` — even a
      stale entry (whose payload since died *after* eviction elsewhere)
      can never be returned for a different object.

    Eviction is oldest-first (dict insertion order) one entry at a time,
    not a wholesale clear: interleaved broadcasts of a few distinct
    payloads (client request + replica gossip in the same tick) keep
    their entries instead of thrashing the whole memo.
    """
    entry = memo.get(id(payload))
    if entry is not None and entry[0] is payload:
        stats.size_cache_hits += 1
        return entry[1]
    size = payload_size(payload)
    if len(memo) >= SIZE_MEMO_LIMIT:
        del memo[next(iter(memo))]
    memo[id(payload)] = (payload, size)
    stats.size_cache_misses += 1
    return size


def make_deliver(
    handlers: Dict[int, Callable[[int, Any], None]], stats: Any
) -> Callable[[int, int, Any], None]:
    """Build the zero-rule fast-path delivery callback.

    The returned callable is what the network posts (via
    ``functools.partial``) for every fast-path send: no envelope, no
    log, no tracer — look the handler up at delivery time (the
    destination may have shut down while the message was in flight),
    count the delivery, hand the payload over.
    """

    def deliver(dst: int, src: int, payload: Any) -> None:
        handler = handlers.get(dst)
        if handler is None:
            return  # destination shut down after the message was sent
        stats.messages_delivered += 1
        handler(src, payload)

    return deliver


# ---------------------------------------------------------------------------
# Canonical serialization + HMAC signing
# (the hot half of repro.crypto.keys)
# ---------------------------------------------------------------------------


def canonical_bytes(obj: Any) -> bytes:
    """Deterministically serialize a message payload for signing.

    Supports the value types protocol messages are built from: ``None``,
    ``bool``, ``int``, ``float``, ``str``, ``bytes``, tuples/lists, frozensets
    (sorted by serialization), dicts (sorted by key serialization), and any
    object exposing ``signing_fields()`` (the protocol dataclasses).
    Type tags prevent cross-type collisions such as ``1`` vs ``"1"``.
    """
    if obj is None:
        return b"N"
    if isinstance(obj, bool):
        return b"B1" if obj else b"B0"
    if isinstance(obj, int):
        data = str(obj).encode()
        return b"I" + len(data).to_bytes(4, "big") + data
    if isinstance(obj, float):
        data = repr(obj).encode()
        return b"F" + len(data).to_bytes(4, "big") + data
    if isinstance(obj, str):
        data = obj.encode()
        return b"S" + len(data).to_bytes(4, "big") + data
    if isinstance(obj, bytes):
        return b"Y" + len(obj).to_bytes(4, "big") + obj
    if isinstance(obj, (tuple, list)):
        parts = [canonical_bytes(item) for item in obj]
        body = b"".join(parts)
        return b"T" + len(parts).to_bytes(4, "big") + body
    if isinstance(obj, (set, frozenset)):
        parts = sorted(canonical_bytes(item) for item in obj)
        body = b"".join(parts)
        return b"E" + len(parts).to_bytes(4, "big") + body
    if isinstance(obj, dict):
        items = sorted(
            (canonical_bytes(k), canonical_bytes(v)) for k, v in obj.items()
        )
        body = b"".join(k + v for k, v in items)
        return b"D" + len(items).to_bytes(4, "big") + body
    fields = getattr(obj, "signing_fields", None)
    if callable(fields):
        tag = type(obj).__name__.encode()
        body = canonical_bytes(fields())
        return b"O" + len(tag).to_bytes(2, "big") + tag + body
    raise TypeError(f"cannot canonicalize {type(obj).__name__}: {obj!r}")


def hmac_sha256(secret: bytes, message: bytes) -> bytes:
    """HMAC-SHA256 digest — the simulated signature primitive."""
    return _hmac.new(secret, message, hashlib.sha256).digest()


class CanonicalMemo:
    """Bounded ``canonical_bytes`` memo keyed on payload identity.

    Protocols canonicalize the *same payload object* many times in a row:
    ``verify_all`` checks a certificate's 2f+1 signatures over one
    payload, a leader signs what it immediately re-verifies, and the SMR
    layer replays identical batch objects across pipeline stages.  This
    memo collapses those into one serialization.

    Safe lifetime, same discipline as the network's size memo: entries
    hold a strong reference to their payload and a hit requires
    ``entry[0] is payload``, so a recycled ``id()`` can never alias a
    stale serialization.  Identity (not equality) keying is deliberate —
    payloads are arbitrary, possibly unhashable objects, and an ``is``
    check is the only probe that can never run user ``__eq__`` code.

    The memo is bounded FIFO: at ``limit`` entries the oldest is evicted
    (insertion order), so an unbounded stream of fresh payloads cannot
    grow it or pin dead objects alive.
    """

    __slots__ = ("_canonical", "_limit", "_memo", "hits", "misses")

    def __init__(
        self,
        limit: int = 256,
        canonical: Callable[[Any], bytes] = canonical_bytes,
    ) -> None:
        if limit < 1:
            raise ValueError("CanonicalMemo limit must be >= 1")
        self._limit = limit
        self._canonical = canonical
        self._memo: Dict[int, Tuple[Any, bytes]] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._memo)

    def get(self, payload: Any) -> bytes:
        """Canonical serialization of ``payload`` (memoized by identity)."""
        memo = self._memo
        entry = memo.get(id(payload))
        if entry is not None and entry[0] is payload:
            self.hits += 1
            return entry[1]
        data = self._canonical(payload)
        if len(memo) >= self._limit:
            del memo[next(iter(memo))]
        memo[id(payload)] = (payload, data)
        self.misses += 1
        return data
