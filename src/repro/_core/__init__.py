"""Pluggable hot-path backend for the simulation core.

Two interchangeable implementations of the measured hot spots (event
loop drain, zero-rule envelope delivery, payload sizing, canonical
serialization + HMAC signing) live behind this package:

* :mod:`repro._core.pure` — the pure-Python reference.  Always present,
  always the executable specification.
* ``repro._core._accel`` — an optional hand-written CPython extension
  (built by ``python -m repro._core.build`` or ``pip install -e .``;
  see setup.py).  Must be byte-for-byte equivalent: same event order,
  same canonical bytes, same sizes — the golden trace digests and
  ``tests/test_core_backend.py`` enforce it.

Selection happens once, at import time:

* ``REPRO_ACCEL=0`` — force the pure backend even if the extension is
  importable (the escape hatch, and how CI measures the pure baseline).
* ``REPRO_ACCEL=1`` — require the compiled backend; raise with build
  instructions if it is missing (so CI accel jobs fail loudly instead
  of silently measuring the wrong thing).
* unset / anything else — auto-detect: use the extension when it
  imports, fall back to pure otherwise.

Consumers import the *functions* from here (``canonical_bytes``,
``payload_size``, ``payload_size_cached``) and check :data:`HAVE_ACCEL`
/ :data:`BACKEND` for the class-level wiring (``repro.sim.events``
binds its ``Simulator`` alias, ``repro.sim.network`` its fast send).
"""

from __future__ import annotations

import os
from typing import Optional

from . import pure
from .pure import (
    FIRED,
    SIZE_MEMO_LIMIT,
    CanonicalMemo,
    SimulationError,
    SimulationTimeout,
    hmac_sha256,
    make_deliver,
)

__all__ = [
    "ACCEL_ENV_VAR",
    "BACKEND",
    "FIRED",
    "HAVE_ACCEL",
    "SIZE_MEMO_LIMIT",
    "CanonicalMemo",
    "SimulationError",
    "SimulationTimeout",
    "accel",
    "canonical_bytes",
    "hmac_sha256",
    "make_deliver",
    "payload_size",
    "payload_size_cached",
    "pure",
]

#: The import-time override knob (``0`` force-pure, ``1`` require-accel).
ACCEL_ENV_VAR = "REPRO_ACCEL"

_BUILD_HINT = (
    "build it with `python -m repro._core.build` (needs a C toolchain "
    "and CPython headers) or unset REPRO_ACCEL to fall back to the "
    "pure-Python backend"
)


def _load_accel() -> Optional[object]:
    setting = os.environ.get(ACCEL_ENV_VAR, "").strip()
    if setting == "0":
        return None
    try:
        from . import _accel  # type: ignore[attr-defined]
    except ImportError as exc:
        if setting == "1":
            raise ImportError(
                f"REPRO_ACCEL=1 but the compiled backend is not "
                f"importable ({exc}); {_BUILD_HINT}"
            ) from exc
        return None
    _accel.register(
        fired=FIRED,
        simulation_error=SimulationError,
        simulation_timeout=SimulationTimeout,
        payload_size_fallback=pure.payload_size,
        size_memo_limit=SIZE_MEMO_LIMIT,
    )
    return _accel


#: The compiled extension module, or ``None`` when running pure.  Parity
#: tests reach through this to compare both implementations in-process.
accel = _load_accel()

#: Whether the compiled extension is loaded (it may be loaded but not
#: selected only via explicit per-object construction in tests).
HAVE_ACCEL = accel is not None

#: Which implementation the repository-wide aliases below point at.
BACKEND = "accel" if accel is not None else "pure"

if accel is not None:
    canonical_bytes = accel.canonical_bytes
    payload_size = accel.payload_size
    payload_size_cached = accel.payload_size_cached
else:
    canonical_bytes = pure.canonical_bytes
    payload_size = pure.payload_size
    payload_size_cached = pure.payload_size_cached
