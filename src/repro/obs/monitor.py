"""Leader performance monitor: demote slow leaders before timeouts fire.

The paper's protocol only reacts to a leader at the extremes — it works,
or its view timer expires.  A *correct-but-slow* leader (or a Byzantine
one throttling just under the timeout) keeps the cluster live but drags
every slot to near-timeout latency, and the pacemaker never rotates it.
This module closes that gap, following the indy-plenum style of
instance-change-on-degradation:

* every replica tracks the observed **slot latency** (consensus open →
  decide) and its own **backlog drain rate** (how long client requests
  wait locally before being packed into a batch) in sliding windows;
* when mean slot latency degrades past ``degradation_ratio`` times the
  drain baseline (clamped below by ``min_drain``), the replica
  broadcasts a **signed demotion vote** naming the current leader and
  the view that succeeds it;
* ``2f + 1`` matching votes trigger a coordinated view change through
  the existing wish-amplification pacemaker — so replicas that reach
  the quorum at different times still synchronize, and ``f`` Byzantine
  replicas can neither trigger nor block a demotion alone;
* a ``cooldown`` after every vote and demotion, plus the drain-rate
  baseline rising under genuine load, prevents rotation flapping when
  the whole cluster (not the leader) is slow.

The monitor *observes* through the window accounting here; the protocol
actions (signing, broadcasting, quorum counting, pacemaker advocacy)
live in :class:`~repro.smr.replica.SMRReplica`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Optional, Tuple

from ..core.config import MonitorConfig

__all__ = ["SlidingWindow", "DemotionVote", "LeaderMonitor"]


class SlidingWindow:
    """Time-bounded sample window: keeps ``(time, value)`` pairs no older
    than ``span`` behind the latest observation/prune."""

    __slots__ = ("span", "_items")

    def __init__(self, span: float) -> None:
        if span <= 0:
            raise ValueError(f"window span must be positive, got {span}")
        self.span = span
        self._items: Deque[Tuple[float, float]] = deque()

    def add(self, time: float, value: float) -> None:
        self._items.append((time, value))
        self.prune(time)

    def prune(self, now: float) -> None:
        cutoff = now - self.span
        items = self._items
        while items and items[0][0] < cutoff:
            items.popleft()

    def clear(self) -> None:
        self._items.clear()

    @property
    def count(self) -> int:
        return len(self._items)

    @property
    def mean(self) -> Optional[float]:
        if not self._items:
            return None
        return sum(value for _, value in self._items) / len(self._items)

    @property
    def maximum(self) -> Optional[float]:
        if not self._items:
            return None
        return max(value for _, value in self._items)


@dataclass(frozen=True)
class DemotionVote:
    """``demote(view)``: the sender wants ``target`` replaced by entering
    ``view``.  Signed over :func:`repro.core.payloads.demotion_payload`
    so Byzantine replicas cannot forge a quorum."""

    view: int
    target: int
    signature: Any = None


class LeaderMonitor:
    """Sliding-window degradation detector for one replica."""

    def __init__(self, pid: int, n: int, config: MonitorConfig) -> None:
        self.pid = pid
        self.n = n
        self.config = config
        #: Demotions apply cluster-wide view floors: every consensus
        #: instance (current and future) runs at >= this view.
        self.view_floor = 1
        self.votes_cast = 0
        self.demotions = 0
        self._latency = SlidingWindow(config.window)
        self._drain = SlidingWindow(config.window)
        self._open: Dict[int, float] = {}
        self._cooldown_until = float("-inf")

    # ------------------------------------------------------------------
    # Observations
    # ------------------------------------------------------------------

    def note_slot_opened(self, slot: int, now: float) -> None:
        self._open.setdefault(slot, now)

    def note_slot_decided(self, slot: int, now: float) -> Optional[float]:
        opened = self._open.pop(slot, None)
        if opened is None:
            return None
        latency = now - opened
        self._latency.add(now, latency)
        return latency

    def note_queue_delay(self, now: float, delay: float) -> None:
        self._drain.add(now, delay)

    # ------------------------------------------------------------------
    # Detection
    # ------------------------------------------------------------------

    def degradation_threshold(self) -> float:
        """Latency above this means the leader, not the workload, is slow.

        The baseline is this replica's own request queue delay: under a
        genuine load burst *both* sides grow, so the threshold rises and
        the monitor stays quiet (anti-flapping); under a throttling
        leader only the slot latency grows.
        """
        cfg = self.config
        drain = self._drain.mean
        baseline = max(
            drain if drain is not None else 0.0, cfg.min_drain
        )
        return cfg.degradation_ratio * baseline

    def should_demote(self, now: float) -> bool:
        if now < self._cooldown_until:
            return False
        self._latency.prune(now)
        self._drain.prune(now)
        if self._latency.count < self.config.min_samples:
            return False
        mean = self._latency.mean
        return mean is not None and mean > self.degradation_threshold()

    # ------------------------------------------------------------------
    # Protocol bookkeeping (driven by SMRReplica)
    # ------------------------------------------------------------------

    def note_vote_cast(self, now: float) -> None:
        self.votes_cast += 1
        self._cooldown_until = now + self.config.cooldown

    def note_demotion(self, now: float, view: int) -> None:
        """A demotion quorum formed: raise the floor and reset windows —
        latencies observed under the deposed leader must not condemn its
        successor."""
        if view <= self.view_floor:
            return
        self.view_floor = view
        self.demotions += 1
        self._latency.clear()
        self._open.clear()
        self._cooldown_until = now + self.config.cooldown

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        return {
            "view_floor": self.view_floor,
            "votes_cast": self.votes_cast,
            "demotions": self.demotions,
            "window_latency_mean": self._latency.mean,
            "window_latency_samples": self._latency.count,
            "window_drain_mean": self._drain.mean,
            "threshold": self.degradation_threshold(),
        }
