"""Flight recorder: bounded structured protocol-event capture.

A :class:`FlightRecorder` installed on a
:class:`~repro.sim.network.Network` (it implements the same tracer
contract as :class:`~repro.obs.tracing.CausalTracer`, plus the
selective ``wants`` hook) records *protocol* events — propose, vote,
certificate-formed, decide, view-change, WAL append/truncate,
checkpoint vote/stable, catchup request/reply, demotion vote, fault
schedule firings — each with a tuple of causal parent ids threaded
through the (defaulted, digest-invisible) ``trace`` field of every
:class:`~repro.sim.network.Envelope`.

The record is a bounded ring (``collections.deque`` with ``maxlen``)
of :class:`FlightEvent` named tuples, so a long run keeps the tail and
allocation cost stays one tuple per recorded event.  Payload types the
classifier does not know are *not* recorded, and — via the network's
``wants`` memo — do not even leave the prebound delivery fast path, so
an attached recorder costs near-nothing on traffic it ignores.

Causality is richer than the tracer's single-parent chain:

* a **deliver** parents to its **send**, a send parents to the handler
  execution (delivery) it was issued from;
* a **decide** parents to a synthesized **cert-formed** event whose
  parents are the delivered votes that formed the quorum certificate;
* a **checkpoint-stable** parents to the checkpoint votes that made it
  stable, a **wal-truncate** to the checkpoint-stable that justified it;
* a **demotion** parents to the demotion-vote quorum, and the
  **advocate** calls it triggers parent to the demotion.

Dump with :meth:`FlightRecorder.dump` (JSON lines: one header object,
then one event per line); analyse with ``python -m repro.postmortem``.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Deque, Dict, List, NamedTuple, Optional, Tuple

__all__ = [
    "FlightEvent",
    "FlightRecorder",
    "TeeTracer",
    "attach_observers",
    "hook_view_changes",
]


class FlightEvent(NamedTuple):
    """One recorded protocol event.

    ``phase`` is ``send``/``deliver`` for network events and ``local``
    for state transitions; ``parents`` are the ids of the events that
    caused this one (empty for roots).  ``slot``/``view`` are taken
    from the payload when it carries them, ``None`` otherwise (e.g.
    single-instance consensus runs have no slots).
    """

    id: int
    parents: Tuple[int, ...]
    kind: str
    phase: str
    time: float
    pid: int
    peer: Optional[int]
    slot: Optional[int]
    view: Optional[int]
    detail: Optional[str]


#: Protocol payload type name -> recorded event kind.  Classification is
#: by *name* so this module never imports the protocol packages (the
#: network would otherwise pull in smr/storage at import time).
_KIND_BY_NAME: Dict[str, str] = {
    "Propose": "propose",
    "Ack": "vote",
    "AckSig": "vote",
    "Commit": "vote",
    "CertAck": "vote",
    "CertRequest": "cert-request",
    "Vote": "view-vote",
    "WishMessage": "wish",
    "Request": "request",
    "Reply": "reply",
    "SlotDecided": "decide-gossip",
    "CheckpointVote": "checkpoint-vote",
    "CatchupRequest": "catchup-request",
    "CatchupReply": "catchup-reply",
    "DemotionVote": "demotion-vote",
}

#: Marker for SMR's slot-tagged wrapper: classified by its inner payload.
_SLOT_WRAP = "slot-wrap"

_MISS = object()

#: Maximum ``repr`` length kept in an event's ``detail`` field.
_DETAIL_CAP = 80


class FlightRecorder:
    """Bounded recorder of causally-linked :class:`FlightEvent` streams."""

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError(f"recorder capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.events: Deque[FlightEvent] = deque(maxlen=capacity)
        #: Total events emitted (``emitted - len(events)`` were dropped).
        self.emitted = 0
        #: Run metadata (scenario name, protocol, n/f, verdicts, ...)
        #: accumulated by :meth:`begin_run` / :meth:`finish_run`.
        self.meta: Dict[str, Any] = {}
        self._next_id = 1
        #: Active handler-execution stack (deliver event ids): sends and
        #: local transitions inside a handler parent to its delivery.
        self._spans: List[int] = []
        #: type -> kind / _SLOT_WRAP / None (memoized classification).
        self._kind_memo: Dict[type, Optional[str]] = {}
        #: (pid, slot) -> delivered consensus-vote event ids awaiting the
        #: decide that their quorum certificate produces.
        self._votes: Dict[Tuple[int, Optional[int]], List[int]] = {}
        #: (pid, slot) -> checkpoint-vote event ids awaiting stability.
        self._ckpt_votes: Dict[Tuple[int, int], List[int]] = {}
        #: (pid, view) -> demotion-vote event ids awaiting the quorum.
        self._demotion_votes: Dict[Tuple[int, int], List[int]] = {}
        #: pid -> the latest demotion event (advocates parent to it).
        self._last_demotion: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------

    def _kind_of_type(self, ptype: type) -> Optional[str]:
        kind = self._kind_memo.get(ptype, _MISS)
        if kind is _MISS:
            name = ptype.__name__
            kind = _SLOT_WRAP if name == "SlotMessage" else _KIND_BY_NAME.get(name)
            self._kind_memo[ptype] = kind
        return kind  # type: ignore[return-value]

    def wants(self, ptype: type) -> bool:
        """Selective-tracer hook: payload types the recorder captures.

        The network memoizes the verdict per type; a ``False`` keeps
        that type's sends on the untraced fast path entirely.
        """
        return self._kind_of_type(ptype) is not None

    def _classify(
        self, payload: Any
    ) -> Optional[Tuple[str, Optional[int], Optional[int]]]:
        """(kind, slot, view) for a protocol payload, else ``None``."""
        kind = self._kind_of_type(type(payload))
        if kind is None:
            return None
        if kind is _SLOT_WRAP:
            inner = payload.inner
            ikind = self._kind_of_type(type(inner))
            if ikind is None or ikind is _SLOT_WRAP:
                return None
            return ikind, payload.slot, getattr(inner, "view", None)
        return kind, getattr(payload, "slot", None), getattr(payload, "view", None)

    # ------------------------------------------------------------------
    # Core emission
    # ------------------------------------------------------------------

    def _emit(
        self,
        kind: str,
        phase: str,
        time: float,
        pid: int,
        peer: Optional[int],
        slot: Optional[int],
        view: Optional[int],
        detail: Optional[str],
        parents: Tuple[int, ...],
    ) -> int:
        eid = self._next_id
        self._next_id += 1
        self.events.append(
            FlightEvent(eid, parents, kind, phase, time, pid, peer, slot, view, detail)
        )
        self.emitted += 1
        return eid

    @property
    def dropped(self) -> int:
        return self.emitted - len(self.events)

    def current_span(self) -> Optional[int]:
        return self._spans[-1] if self._spans else None

    def _span_parents(self) -> Tuple[int, ...]:
        return (self._spans[-1],) if self._spans else ()

    # ------------------------------------------------------------------
    # Network tracer contract (Network._send_general / Network._deliver)
    # ------------------------------------------------------------------

    def on_send(self, envelope: Any) -> Any:
        info = self._classify(envelope.payload)
        if info is None:
            return envelope
        kind, slot, view = info
        eid = self._emit(
            kind, "send", envelope.send_time, envelope.src, envelope.dst,
            slot, view, None, self._span_parents(),
        )
        return envelope._replace(trace=eid)

    def begin_delivery(self, envelope: Any) -> int:
        info = self._classify(envelope.payload)
        if info is None:
            return 0  # unwanted payload on the general path: no record
        kind, slot, view = info
        trace = envelope.trace
        parents = (trace,) if isinstance(trace, int) else ()
        dst = envelope.dst
        eid = self._emit(
            kind, "deliver", envelope.deliver_time, dst, envelope.src,
            slot, view, None, parents,
        )
        if kind == "vote":
            self._votes.setdefault((dst, slot), []).append(eid)
        elif kind == "checkpoint-vote":
            self._ckpt_votes.setdefault((dst, slot), []).append(eid)
        elif kind == "demotion-vote":
            self._demotion_votes.setdefault((dst, view), []).append(eid)
        self._spans.append(eid)
        return eid

    def end_delivery(self, token: int) -> None:
        if token and self._spans and self._spans[-1] == token:
            self._spans.pop()

    # ------------------------------------------------------------------
    # Local protocol transitions (replica / cluster hooks)
    # ------------------------------------------------------------------

    def record_decide(
        self, pid: int, value: Any, time: float, slot: Optional[int] = None
    ) -> int:
        """A process decided ``value``.

        Synthesizes a ``cert-formed`` event over the votes delivered to
        ``pid`` for this slot (the quorum certificate's evidence), then
        the ``decide`` parented to it — the causal cut of a decide
        therefore contains the exact vote deliveries (and transitively
        their sends) that produced the certificate.
        """
        parents: List[int] = []
        votes = self._votes.pop((pid, slot), None)
        if votes:
            cert = self._emit(
                "cert-formed", "local", time, pid, None, slot, None,
                f"{len(votes)} votes", tuple(votes),
            )
            parents.append(cert)
        parents.extend(self._span_parents())
        return self._emit(
            "decide", "local", time, pid, None, slot, None,
            repr(value)[:_DETAIL_CAP], tuple(parents),
        )

    def record_view_change(
        self, pid: int, view: int, time: float, slot: Optional[int] = None
    ) -> int:
        return self._emit(
            "view-change", "local", time, pid, None, slot, view, None,
            self._span_parents(),
        )

    def record_wal_append(
        self,
        pid: int,
        slot: Optional[int],
        what: str,
        time: float,
        parent: Optional[int] = None,
    ) -> int:
        parents = (parent,) if parent is not None else self._span_parents()
        return self._emit(
            "wal-append", "local", time, pid, None, slot, None, what, parents
        )

    def record_wal_truncate(
        self, pid: int, upto_slot: int, time: float, parent: Optional[int] = None
    ) -> int:
        parents = (parent,) if parent is not None else self._span_parents()
        return self._emit(
            "wal-truncate", "local", time, pid, None, upto_slot, None,
            f"upto {upto_slot}", parents,
        )

    def record_checkpoint_vote_local(self, pid: int, slot: int, time: float) -> int:
        """Our own checkpoint vote (broadcasts exclude self, so the
        local tally has no network event to stand in for it)."""
        eid = self._emit(
            "checkpoint-vote", "local", time, pid, None, slot, None, "own vote",
            self._span_parents(),
        )
        self._ckpt_votes.setdefault((pid, slot), []).append(eid)
        return eid

    def record_checkpoint_stable(self, pid: int, slot: int, time: float) -> int:
        votes = self._ckpt_votes.pop((pid, slot), None)
        return self._emit(
            "checkpoint-stable", "local", time, pid, None, slot, None,
            f"{len(votes)} votes" if votes else None, tuple(votes or ()),
        )

    def record_demotion_vote_local(self, pid: int, view: int, time: float) -> int:
        """Our own demotion vote (same include_self=False reasoning)."""
        eid = self._emit(
            "demotion-vote", "local", time, pid, None, None, view, "own vote",
            self._span_parents(),
        )
        self._demotion_votes.setdefault((pid, view), []).append(eid)
        return eid

    def record_demotion(self, pid: int, view: int, time: float) -> int:
        votes = self._demotion_votes.pop((pid, view), None)
        eid = self._emit(
            "demotion", "local", time, pid, None, None, view,
            f"{len(votes)} votes" if votes else None, tuple(votes or ()),
        )
        self._last_demotion[pid] = eid
        return eid

    def record_advocate(
        self, pid: int, view: int, time: float, slot: Optional[int] = None
    ) -> int:
        demotion = self._last_demotion.get(pid)
        parents = (demotion,) if demotion is not None else self._span_parents()
        return self._emit(
            "advocate", "local", time, pid, None, slot, view, None, parents
        )

    def record_fault(
        self, kind: str, time: float, pid: int = -1, detail: Optional[str] = None
    ) -> int:
        """A fault-schedule firing (crash/recover/partition-start/
        partition-heal/delay-on/delay-off), recorded as a causal root."""
        return self._emit(kind, "local", time, pid, None, None, None, detail, ())

    # ------------------------------------------------------------------
    # Run metadata
    # ------------------------------------------------------------------

    def begin_run(self, **meta: Any) -> None:
        self.meta.update(meta)

    def finish_run(self, **meta: Any) -> None:
        self.meta.update(meta)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def header(self) -> Dict[str, Any]:
        return {
            "flight": 1,
            "capacity": self.capacity,
            "emitted": self.emitted,
            "dropped": self.dropped,
            "meta": self.meta,
        }

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [
            {**event._asdict(), "parents": list(event.parents)}
            for event in self.events
        ]

    def dumps(self) -> str:
        """The JSON-lines dump: header object, then one event per line.

        Contains no wall-clock timestamps or machine identity, so two
        runs of the same schedule (e.g. pure vs accel backend) produce
        byte-identical dumps — exactly what ``postmortem diff`` needs.
        """
        lines = [json.dumps(self.header(), sort_keys=True, default=str)]
        lines.extend(
            json.dumps(event, sort_keys=True, default=str)
            for event in self.to_dicts()
        )
        return "\n".join(lines) + "\n"

    def dump(self, path: Any) -> None:
        """Write the JSON-lines dump to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.dumps())


class TeeTracer:
    """Fan one network tracer slot out to several observers.

    The network supports a single installed tracer; attaching a
    :class:`~repro.obs.tracing.CausalTracer` *and* a
    :class:`FlightRecorder` therefore goes through this tee.  Each
    observer gets its own trace id threaded per envelope (the ``trace``
    field carries a tuple, one slot per observer); ``wants`` is the
    union, so an envelope is traced when any observer records it.
    """

    def __init__(self, *tracers: Any) -> None:
        if not tracers:
            raise ValueError("TeeTracer needs at least one tracer")
        self.tracers: Tuple[Any, ...] = tuple(tracers)

    def _wants(self, tracer: Any, ptype: type) -> bool:
        wants = getattr(tracer, "wants", None)
        return True if wants is None else bool(wants(ptype))

    def wants(self, ptype: type) -> bool:
        return any(self._wants(tracer, ptype) for tracer in self.tracers)

    def on_send(self, envelope: Any) -> Any:
        ptype = type(envelope.payload)
        traces = tuple(
            tracer.on_send(envelope).trace
            if self._wants(tracer, ptype)
            else None
            for tracer in self.tracers
        )
        return envelope._replace(trace=traces)

    def begin_delivery(self, envelope: Any) -> Tuple[Any, ...]:
        trace = envelope.trace
        if not isinstance(trace, tuple) or len(trace) != len(self.tracers):
            trace = (None,) * len(self.tracers)
        return tuple(
            tracer.begin_delivery(envelope._replace(trace=trace[i]))
            for i, tracer in enumerate(self.tracers)
        )

    def end_delivery(self, token: Tuple[Any, ...]) -> None:
        for tracer, sub in zip(reversed(self.tracers), reversed(token)):
            tracer.end_delivery(sub)

    def record_decide(self, pid: int, value: Any, time: float) -> None:
        for tracer in self.tracers:
            record = getattr(tracer, "record_decide", None)
            if record is not None:
                record(pid, value, time)


def attach_observers(cluster: Any, *observers: Any) -> Optional[Any]:
    """Wire tracers/recorders into a :class:`~repro.sim.runner.Cluster`.

    ``None`` entries are skipped; one observer installs directly, more
    go through a :class:`TeeTracer`.  Like
    :func:`~repro.obs.tracing.attach_tracer`, the cluster trace's
    ``record_decision`` is shadowed observer-first, so a violating
    decide is captured *before* the consistency oracle raises.
    Returns the installed tracer (or ``None`` when nothing to attach).
    """
    active = [observer for observer in observers if observer is not None]
    if not active:
        return None
    tracer = active[0] if len(active) == 1 else TeeTracer(*active)
    cluster.network.install_tracer(tracer)
    trace = cluster.trace
    original = trace.record_decision

    def record_decision(pid: int, value: Any, time: float) -> None:
        for observer in active:
            record = getattr(observer, "record_decide", None)
            if record is not None:
                record(pid, value, time)
        original(pid, value, time)

    trace.record_decision = record_decision  # type: ignore[method-assign]
    return tracer


def hook_view_changes(recorder: FlightRecorder, process: Any) -> None:
    """Record a bare consensus instance's view entries (consensus-mode
    scenarios; SMR replicas hook their per-slot instances themselves).

    Wraps ``enter_view`` and repoints the pacemaker's captured
    reference, mirroring ``SMRReplica._hook_view_changes``.
    """
    inner = getattr(process, "enter_view", None)
    if inner is None:
        return

    def recording_enter_view(view: int) -> None:
        if view > getattr(process, "view", 0):
            recorder.record_view_change(process.pid, view, process.now)
        inner(view)

    process.enter_view = recording_enter_view
    pacemaker = getattr(process, "pacemaker", None)
    if pacemaker is not None and hasattr(pacemaker, "_enter_view"):
        pacemaker._enter_view = recording_enter_view
