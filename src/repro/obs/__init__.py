"""Observability: deterministic metrics, causal tracing, leader monitor.

Three independent layers, all opt-in and all zero-cost when absent:

* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges and sim-time histograms.  Disabled registries hand out a
  null-object, so instrumented code never branches on configuration.
* :mod:`repro.obs.tracing` — a :class:`CausalTracer` recording
  send → delivery → handler-span → decide events with parent ids
  threaded through :class:`~repro.sim.network.Envelope` metadata.
* :mod:`repro.obs.monitor` — a :class:`LeaderMonitor` per replica:
  sliding-window latency/backlog tracking plus the signed demotion-vote
  protocol that rotates a correct-but-slow (or throttling-Byzantine)
  leader out before its timeout would ever fire.

With observability disabled (the default everywhere) the simulation's
golden trace digests are byte-identical to an uninstrumented build.
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .monitor import DemotionVote, LeaderMonitor, SlidingWindow
from .tracing import CausalTracer, TraceEvent, attach_tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "CausalTracer",
    "TraceEvent",
    "attach_tracer",
    "DemotionVote",
    "LeaderMonitor",
    "SlidingWindow",
]
