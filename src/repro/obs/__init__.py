"""Observability: metrics, causal tracing, leader monitor, flight recorder.

Four independent layers, all opt-in and all zero-cost when absent:

* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges and sim-time histograms, exportable as JSON or Prometheus
  text.  Disabled registries hand out a null-object, so instrumented
  code never branches on configuration.
* :mod:`repro.obs.tracing` — a :class:`CausalTracer` recording
  send → delivery → handler-span → decide events with parent ids
  threaded through :class:`~repro.sim.network.Envelope` metadata.
* :mod:`repro.obs.monitor` — a :class:`LeaderMonitor` per replica:
  sliding-window latency/backlog tracking plus the signed demotion-vote
  protocol that rotates a correct-but-slow (or throttling-Byzantine)
  leader out before its timeout would ever fire.
* :mod:`repro.obs.recorder` — a :class:`FlightRecorder` capturing
  structured protocol events (votes, certificates, decides, WAL and
  checkpoint activity, demotions, fault firings) with multi-parent
  causality, dumped as JSON lines for ``python -m repro.postmortem``.

With observability disabled (the default everywhere) the simulation's
golden trace digests are byte-identical to an uninstrumented build —
and they stay byte-identical with a recorder *attached*, because the
``Envelope.trace`` side channel is excluded from digests and recorded
runs preserve delivery (time, insertion-order) exactly.
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .monitor import DemotionVote, LeaderMonitor, SlidingWindow
from .recorder import (
    FlightEvent,
    FlightRecorder,
    TeeTracer,
    attach_observers,
    hook_view_changes,
)
from .tracing import CausalTracer, TraceEvent, attach_tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "CausalTracer",
    "TraceEvent",
    "attach_tracer",
    "DemotionVote",
    "LeaderMonitor",
    "SlidingWindow",
    "FlightEvent",
    "FlightRecorder",
    "TeeTracer",
    "attach_observers",
    "hook_view_changes",
]
