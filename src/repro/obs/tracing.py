"""Causal tracing: send → delivery → handler span → decide.

A :class:`CausalTracer` installed on a :class:`~repro.sim.network.Network`
(via :meth:`~repro.sim.network.Network.install_tracer`) threads parent
ids through the (defaulted, digest-invisible) ``trace`` field of each
:class:`~repro.sim.network.Envelope`:

* a **send** event is emitted when a message enters the network; its
  parent is the handler span that sent it (if any), so causality chains
  across hops;
* a **deliver** event (parent: the send) is emitted when the message
  reaches its destination, followed by a **span** event covering the
  receiving handler's execution;
* sends issued *inside* that handler parent to the span, and a
  **decide** event is recorded against the active span when the
  receiving process decides.

Events live in a bounded ring buffer (:class:`collections.deque` with
``maxlen``), so tracing a long run keeps the tail.  Export with
:meth:`CausalTracer.to_json`; eyeball with
:meth:`CausalTracer.render_timeline`.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import asdict, dataclass
from typing import Any, Deque, Dict, List, Optional

__all__ = ["TraceEvent", "CausalTracer", "attach_tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One causally-linked observation.

    ``kind`` is one of ``send``/``deliver``/``span``/``decide``;
    ``parent`` is the id of the event that caused this one (``None``
    for root sends).
    """

    id: int
    parent: Optional[int]
    kind: str
    time: float
    pid: int
    peer: Optional[int]
    detail: str


class CausalTracer:
    """Bounded recorder of :class:`TraceEvent` streams."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError(f"tracer capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.events: Deque[TraceEvent] = deque(maxlen=capacity)
        #: Total events emitted (``emitted - len(events)`` were dropped).
        self.emitted = 0
        self._next_id = 1
        self._spans: List[int] = []

    # ------------------------------------------------------------------
    def _emit(
        self,
        kind: str,
        time: float,
        pid: int,
        peer: Optional[int],
        detail: str,
        parent: Optional[int],
    ) -> int:
        eid = self._next_id
        self._next_id += 1
        self.events.append(
            TraceEvent(
                id=eid, parent=parent, kind=kind, time=time,
                pid=pid, peer=peer, detail=detail,
            )
        )
        self.emitted += 1
        return eid

    @property
    def dropped(self) -> int:
        return self.emitted - len(self.events)

    def current_span(self) -> Optional[int]:
        return self._spans[-1] if self._spans else None

    # ------------------------------------------------------------------
    # Network integration (called by Network._send / Network._deliver)
    # ------------------------------------------------------------------

    def on_send(self, envelope: Any) -> Any:
        """Record a send; returns the envelope with its trace id set."""
        eid = self._emit(
            "send",
            envelope.send_time,
            envelope.src,
            envelope.dst,
            type(envelope.payload).__name__,
            self.current_span(),
        )
        return envelope._replace(trace=eid)

    def begin_delivery(self, envelope: Any) -> int:
        """Record the delivery and open the receiving handler's span."""
        deliver_id = self._emit(
            "deliver",
            envelope.deliver_time,
            envelope.dst,
            envelope.src,
            type(envelope.payload).__name__,
            envelope.trace,
        )
        span_id = self._emit(
            "span",
            envelope.deliver_time,
            envelope.dst,
            envelope.src,
            "handle " + type(envelope.payload).__name__,
            deliver_id,
        )
        self._spans.append(span_id)
        return span_id

    def end_delivery(self, token: int) -> None:
        if self._spans and self._spans[-1] == token:
            self._spans.pop()

    # ------------------------------------------------------------------
    def record_decide(self, pid: int, value: Any, time: float) -> None:
        self._emit("decide", time, pid, None, repr(value), self.current_span())

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [asdict(event) for event in self.events]

    def to_json(self, indent: Optional[int] = None) -> str:
        payload = {
            "capacity": self.capacity,
            "emitted": self.emitted,
            "dropped": self.dropped,
            "events": self.to_dicts(),
        }
        return json.dumps(payload, indent=indent, default=str)

    def render_timeline(self, limit: Optional[int] = None) -> str:
        """Indented text timeline: children render one level under their
        parent (depth follows the causal chain, capped for readability)."""
        depth: Dict[int, int] = {}
        lines: List[str] = []
        events = list(self.events)
        if limit is not None:
            events = events[-limit:]
        known = {event.id for event in events}
        for event in events:
            if event.parent is None:
                level = 0
                break_note = ""
            elif event.parent in known:
                level = min(depth.get(event.parent, 0) + 1, 8)
                break_note = ""
            else:
                # The parent fell off the ring (or outside ``limit``):
                # render as a root but say so, instead of silently
                # pretending the chain started here.
                level = 0
                break_note = f"  [chain broken: parent {event.parent} evicted]"
            depth[event.id] = level
            peer = "" if event.peer is None else f" -> {event.peer}"
            lines.append(
                f"{event.time:10.2f}  {'  ' * level}{event.kind:<8}"
                f"p{event.pid}{peer}  {event.detail}{break_note}"
            )
        if self.dropped:
            lines.append(f"... ({self.dropped} earlier events dropped)")
        return "\n".join(lines)


def attach_tracer(cluster: Any, tracer: CausalTracer) -> CausalTracer:
    """Wire a tracer into a running :class:`~repro.sim.runner.Cluster`.

    Installs it on the network (send/deliver/span events) and shadows the
    cluster trace's ``record_decision`` so decide events are captured
    too — the cluster's decision hooks look the method up at call time.
    """
    cluster.network.install_tracer(tracer)
    recorder = cluster.trace
    original = recorder.record_decision

    def record_decision(pid: int, value: Any, time: float) -> None:
        tracer.record_decide(pid, value, time)
        original(pid, value, time)

    recorder.record_decision = record_decision  # type: ignore[method-assign]
    return tracer
