"""Deterministic metrics: counters, gauges, sim-time histograms.

Everything here measures *simulated* quantities (event counts, simulated
latencies), so snapshots are exactly reproducible run over run — unlike
the wall-clock numbers in :mod:`repro.analysis.profiling`, which are
recorded but never asserted.

Design constraints, in order:

1. **Zero overhead when disabled.**  A disabled registry hands out the
   shared :data:`NULL_METRIC` null-object whose methods do nothing, and
   exposes ``enabled = False`` so hot paths can skip even the method
   call (``if metrics.enabled: ...``).  No instrumented module needs a
   configuration branch at import time.
2. **Bounded memory.**  Histograms keep a fixed-size reservoir of the
   most recent observations (plus exact running count/total/min/max),
   so a long run cannot grow a metric without bound.
3. **Determinism.**  The reservoir is "last K values", not random
   sampling: percentile snapshots depend only on the observation
   sequence, never on an RNG.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRIC",
]


class Counter:
    """Monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Any = 0

    def set(self, value: Any) -> None:
        self.value = value

    def snapshot(self) -> Any:
        return self.value


def percentile_nearest_rank(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted non-empty sample.

    Deterministic and numpy-free: the reservoir snapshot must not vary
    with interpolation-mode defaults across numpy versions.
    """
    if not sorted_values:
        raise ValueError("cannot take a percentile of an empty sample")
    # ceil(q/100 * len), clamped to [1, len].
    rank = -(-q * len(sorted_values) // 100)
    rank = min(max(1, int(rank)), len(sorted_values))
    return float(sorted_values[rank - 1])


class Histogram:
    """Sim-time sample distribution with a fixed-size reservoir.

    Exact ``count``/``total``/``min``/``max`` over every observation;
    percentiles are computed from the retained window of the most
    recent ``capacity`` values (a ring buffer, overwritten oldest-first).
    """

    __slots__ = (
        "name", "capacity", "count", "total", "minimum", "maximum",
        "_ring", "_cursor",
    )

    def __init__(self, name: str, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"histogram capacity must be >= 1, got {capacity}")
        self.name = name
        self.capacity = capacity
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self._ring: List[float] = []
        self._cursor = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        if len(self._ring) < self.capacity:
            self._ring.append(value)
        else:
            self._ring[self._cursor] = value
            self._cursor = (self._cursor + 1) % self.capacity

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def values(self) -> List[float]:
        """The retained reservoir (most recent ``capacity`` samples)."""
        return list(self._ring)

    def percentile(self, q: float) -> Optional[float]:
        if not self._ring:
            return None
        return percentile_nearest_rank(sorted(self._ring), q)

    def snapshot(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class _NullMetric:
    """Absorbs every metric operation; shared by disabled registries."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: Any) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def snapshot(self) -> None:
        return None


NULL_METRIC = _NullMetric()


class _Namespace:
    """Registry view that prefixes every metric name."""

    __slots__ = ("_registry", "_prefix")

    def __init__(self, registry: "MetricsRegistry", prefix: str) -> None:
        self._registry = registry
        self._prefix = prefix

    @property
    def enabled(self) -> bool:
        return self._registry.enabled

    def counter(self, name: str) -> Any:
        return self._registry.counter(self._prefix + name)

    def gauge(self, name: str) -> Any:
        return self._registry.gauge(self._prefix + name)

    def histogram(self, name: str, capacity: Optional[int] = None) -> Any:
        return self._registry.histogram(self._prefix + name, capacity)

    def namespace(self, prefix: str) -> "_Namespace":
        return _Namespace(self._registry, self._prefix + prefix + ".")


class MetricsRegistry:
    """Get-or-create store of named metrics.

    ``namespace("replica.0")`` returns a view that prefixes names with
    ``replica.0.`` — per-process instrumentation shares one registry
    without name collisions, and :meth:`to_dict` snapshots everything.
    """

    def __init__(self, enabled: bool = True, reservoir: int = 256) -> None:
        self.enabled = enabled
        self.reservoir = reservoir
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Any:
        if not self.enabled:
            return NULL_METRIC
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Any:
        if not self.enabled:
            return NULL_METRIC
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str, capacity: Optional[int] = None) -> Any:
        if not self.enabled:
            return NULL_METRIC
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(
                name, capacity or self.reservoir
            )
        return metric

    def namespace(self, prefix: str) -> _Namespace:
        return _Namespace(self, prefix + ".")

    # ------------------------------------------------------------------
    def network_send_hook(self):
        """A :meth:`Network.add_send_hook` callback counting sends by
        payload type under ``net.sent.<TypeName>``."""
        counters = self._counters

        def hook(envelope: Any) -> None:
            name = "net.sent." + type(envelope.payload).__name__
            metric = counters.get(name)
            if metric is None:
                metric = counters[name] = Counter(name)
            metric.value += 1

        return hook

    def collect_network(self, network: Any) -> None:
        """Snapshot the network's own counters into gauges (O(1), done at
        collection time — never on the send hot path)."""
        stats = network.stats
        self.gauge("net.messages_sent").set(stats.messages_sent)
        self.gauge("net.messages_delivered").set(stats.messages_delivered)
        self.gauge("net.bytes_sent").set(stats.bytes_sent)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe snapshot of every metric, sorted by name."""
        out: Dict[str, Any] = {
            "counters": {
                name: metric.value
                for name, metric in sorted(self._counters.items())
            },
            "gauges": {
                name: metric.value
                for name, metric in sorted(self._gauges.items())
            },
            "histograms": {
                name: metric.snapshot()
                for name, metric in sorted(self._histograms.items())
            },
        }
        return out

    def to_json(self, indent: Optional[int] = None) -> str:
        """The :meth:`to_dict` snapshot as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """The snapshot in the Prometheus text exposition format.

        Metric names are sanitized (``replica.0.requests`` →
        ``replica_0_requests``); histograms export as summaries (exact
        ``_count``/``_sum`` plus reservoir quantiles).  Output is sorted
        by name, so two identical runs export byte-identical text.
        """
        lines: List[str] = []
        for name, counter in sorted(self._counters.items()):
            prom = _prom_name(name)
            lines.append(f"# TYPE {prom} counter")
            lines.append(f"{prom} {_prom_value(counter.value)}")
        for name, gauge in sorted(self._gauges.items()):
            prom = _prom_name(name)
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {_prom_value(gauge.value)}")
        for name, histogram in sorted(self._histograms.items()):
            prom = _prom_name(name)
            lines.append(f"# TYPE {prom} summary")
            for q in (0.5, 0.95, 0.99):
                value = histogram.percentile(q * 100)
                if value is not None:
                    lines.append(
                        f'{prom}{{quantile="{q}"}} {_prom_value(value)}'
                    )
            lines.append(f"{prom}_sum {_prom_value(histogram.total)}")
            lines.append(f"{prom}_count {histogram.count}")
        return "\n".join(lines) + "\n" if lines else ""


_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    prom = _PROM_INVALID.sub("_", name)
    if prom and prom[0].isdigit():
        prom = "_" + prom
    return prom


def _prom_value(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    try:
        return repr(float(value))
    except (TypeError, ValueError):
        return "NaN"
