"""Baseline files: grandfathered findings that do not fail the run.

A baseline entry keys on ``(rule, path, context)`` — not line numbers —
so edits elsewhere in a file do not invalidate it.  Entries must carry
a ``justification``; the CLI refuses to honor unexplained entries (they
are reported like ordinary findings).  One entry suppresses every
matching finding in that context, which is why the policy (README)
caps the shipped baseline at a handful of justified entries.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Tuple

from .findings import Finding

_VERSION = 1


def load_baseline(path: Path) -> List[Dict[str, str]]:
    data = json.loads(path.read_text(encoding="utf-8"))
    if isinstance(data, dict):
        entries = data.get("entries", [])
    else:
        entries = data
    out = []
    for entry in entries:
        out.append(
            {
                "rule": str(entry.get("rule", "")),
                "path": str(entry.get("path", "")),
                "context": str(entry.get("context", "")),
                "justification": str(entry.get("justification", "")),
            }
        )
    return out


def save_baseline(path: Path, findings: List[Finding]) -> None:
    seen: Dict[Tuple[str, str, str], Dict[str, str]] = {}
    for finding in findings:
        key = finding.baseline_key()
        seen.setdefault(
            key,
            {
                "rule": finding.rule,
                "path": finding.path,
                "context": finding.context,
                "justification": "TODO: justify or fix",
            },
        )
    payload = {
        "version": _VERSION,
        "entries": sorted(
            seen.values(), key=lambda e: (e["path"], e["rule"], e["context"])
        ),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def split_baselined(
    findings: List[Finding], entries: List[Dict[str, str]]
) -> Tuple[List[Finding], List[Finding], List[Finding]]:
    """Partition findings into (new, baselined, unjustified-baselined).

    Findings matching an entry *without* a justification still count
    against the run (third bucket) — the baseline is not a silent
    mute."""
    justified = set()
    unjustified = set()
    for entry in entries:
        key = (entry["rule"], entry["path"], entry["context"])
        if entry["justification"].strip() and not entry[
            "justification"
        ].startswith("TODO"):
            justified.add(key)
        else:
            unjustified.add(key)
    new: List[Finding] = []
    baselined: List[Finding] = []
    needs_justification: List[Finding] = []
    for finding in findings:
        key = finding.baseline_key()
        if key in justified:
            baselined.append(finding)
        elif key in unjustified:
            needs_justification.append(finding)
        else:
            new.append(finding)
    return new, baselined, needs_justification
