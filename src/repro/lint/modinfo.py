"""Parsed-module container and shared AST helpers for lint rules."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, List, Optional, Tuple

#: Directory names that hold protocol/simulation code whose behaviour is
#: pinned by the golden digests.  The D-series rules only fire inside
#: these (plus W-series inside smr/storage); Q/V rules use their own
#: scoping.
PROTOCOL_DIRS = frozenset(
    {"core", "sim", "smr", "baselines", "storage", "sync"}
)


@dataclass
class ModuleInfo:
    """One parsed source file handed to every rule."""

    path: Path
    relpath: str  # posix-style, stable across machines; used in findings
    source: str
    tree: ast.Module
    parents: dict = field(default_factory=dict)

    @property
    def segments(self) -> frozenset:
        return frozenset(Path(self.relpath).parts)

    def in_dirs(self, dirnames: frozenset) -> bool:
        return bool(self.segments & dirnames)

    @property
    def basename(self) -> str:
        return Path(self.relpath).name


def parse_module(path: Path, relpath: str) -> Optional[ModuleInfo]:
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError, ValueError):
        return None
    info = ModuleInfo(path=path, relpath=relpath, source=source, tree=tree)
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            info.parents[child] = parent
    return info


def context_of(info: ModuleInfo, node: ast.AST) -> str:
    """Dotted lexical context (``Class.method``) enclosing ``node``."""
    names: List[str] = []
    cur = info.parents.get(node)
    while cur is not None:
        if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.append(cur.name)
        cur = info.parents.get(cur)
    return ".".join(reversed(names)) or "<module>"


def enclosing_class(info: ModuleInfo, node: ast.AST) -> Optional[ast.ClassDef]:
    cur = info.parents.get(node)
    while cur is not None:
        if isinstance(cur, ast.ClassDef):
            return cur
        cur = info.parents.get(cur)
    return None


def call_name(node: ast.Call) -> str:
    """Last component of the called name (``a.b.c()`` -> ``c``)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def dotted_name(node: ast.AST) -> str:
    """Render a Name/Attribute chain as ``a.b.c`` (best effort)."""
    parts: List[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
    else:
        parts.append("?")
    return ".".join(reversed(parts))


def iter_functions(
    tree: ast.Module,
) -> Iterator[Tuple[ast.AST, List[str]]]:
    """Yield every (Async)FunctionDef with its enclosing name stack."""

    def walk(node: ast.AST, stack: List[str]) -> Iterator[Tuple[ast.AST, List[str]]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, stack
                yield from walk(child, stack + [child.name])
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, stack + [child.name])
            else:
                yield from walk(child, stack)

    yield from walk(tree, [])


def names_in(node: ast.AST) -> frozenset:
    return frozenset(
        n.id for n in ast.walk(node) if isinstance(n, ast.Name)
    )
