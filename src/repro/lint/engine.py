"""Lint engine: file discovery, rule dispatch, suppression + baseline."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from .base import LintContext
from .baseline import load_baseline, split_baselined
from .findings import Finding
from .modinfo import ModuleInfo, parse_module
from .quorum_model import DEFINITION_BASENAMES, build_model
from .rules import ALL_RULES
from .rules_dataflow import collect_signed_types
from .suppressions import apply_suppressions

#: Directories never linted even when nested under a requested path.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "node_modules"})


@dataclass
class LintResult:
    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0

    @property
    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for finding in self.findings:
            out[finding.rule] = out.get(finding.rule, 0) + 1
        return out

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def to_json(self) -> Dict[str, Any]:
        return {
            "version": 1,
            "tool": "repro.lint",
            "files_checked": self.files_checked,
            "findings": [f.to_json() for f in sorted(self.findings)],
            "counts": self.counts,
            "suppressed": self.suppressed,
            "baselined": len(self.baselined),
            "exit_code": self.exit_code,
        }


def discover_files(paths: List[Path], root: Path) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            files.append(path)
        elif path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS & set(sub.parts):
                    files.append(sub)
    return files


def run_lint(
    paths: List[Path],
    baseline_path: Optional[Path] = None,
    root: Optional[Path] = None,
) -> LintResult:
    """Lint ``paths`` (files or directory trees).

    ``root`` anchors the relative paths recorded in findings (defaults
    to the current working directory); keeping them relative makes
    baselines and JSON output machine-independent.
    """
    root = root or Path.cwd()
    result = LintResult()
    modules: List[ModuleInfo] = []
    for file_path in discover_files(paths, root):
        try:
            rel = file_path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = file_path.as_posix()
        info = parse_module(file_path, rel)
        if info is not None:
            modules.append(info)
    result.files_checked = len(modules)

    ctx = LintContext(
        model=build_model(
            [
                (info.tree, info.relpath)
                for info in modules
                if info.basename in DEFINITION_BASENAMES
            ]
        ),
        signed_types=collect_signed_types(modules),
        modules=modules,
    )

    raw: List[Finding] = []
    for info in modules:
        file_findings: List[Finding] = []
        for rule in ALL_RULES:
            file_findings.extend(rule.check(info, ctx))
        kept, meta, suppressed = apply_suppressions(info, file_findings)
        raw.extend(kept)
        raw.extend(meta)
        result.suppressed += suppressed

    if baseline_path is not None and baseline_path.exists():
        entries = load_baseline(baseline_path)
        new, baselined, needs_justification = split_baselined(raw, entries)
        result.findings = sorted(new + needs_justification)
        result.baselined = baselined
    else:
        result.findings = sorted(raw)
    return result
