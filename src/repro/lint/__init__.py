"""``repro.lint`` — a protocol-aware static analyzer for this repository.

The repo's correctness story rests on invariants no off-the-shelf tool
checks:

* **Determinism** (D-series): the golden trace digests
  (``tests/golden/scenario_digests.json``) pin every simulated execution
  byte-for-byte, so protocol/sim code must never read wall clocks or OS
  entropy, never draw from the process-global ``random`` module, never
  let unordered ``set`` iteration reach a ``send``/``broadcast``/digest,
  and never feed ``id()`` into a digest.
* **Quorum arithmetic** (Q-series): thresholds derived from the paper's
  ``n >= 3f + 2t - 1`` bound must flow through the *named* properties in
  :mod:`repro.core.config` / :mod:`repro.core.quorums` — a hand-rolled
  ``2*f + 1`` drifts silently when the model changes.  The rule checks
  expressions *structurally against the definitions* (the named
  properties are parsed and canonicalized), so renaming a property keeps
  the lint in sync automatically.
* **Verify-before-use** (V-series): a signed payload delivered to a
  replica handler must pass through :meth:`KeyRegistry.verify` or a
  certificate validator before it mutates replica state.
* **WAL ordering** (W-series): decide effects must follow the
  write-ahead append, and WAL truncation must follow checkpoint
  persistence.

Run it as ``python -m repro.lint [paths ...] [--json FILE] [--baseline
FILE] [--update-baseline]``; see :mod:`repro.lint.cli`.  Findings can be
suppressed inline with ``# lint: ignore[RULE]: justification`` — the
justification is mandatory (a bare suppression is itself a finding,
``SUP001``), and a suppression that suppresses nothing is flagged too
(``SUP002``).

Built on stdlib :mod:`ast` only — no new dependencies.
"""

from .engine import LintResult, run_lint
from .findings import Finding
from .rules import ALL_RULES, rule_table

__all__ = ["ALL_RULES", "Finding", "LintResult", "rule_table", "run_lint"]
