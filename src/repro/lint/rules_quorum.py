"""Q-series rules: quorum thresholds must use their named definitions.

The paper's resilience bound (n >= max(3f + 2t - 1, 3f + 1)) and the
derived thresholds (vote/fast/commit quorums, cert sizes, f+1 /
2f+1 SMR quorums) live as *named* properties and functions in
``repro/core/config.py`` and ``repro/core/quorums.py``.  Re-deriving
them as inline literals (``2*f + 1``) silently drifts when the model
changes.  Detection is structural: candidate expressions and the named
definitions are both canonicalized by multi-point numeric evaluation
(see :mod:`repro.lint.quorum_model`), so renames and re-spellings stay
in sync automatically — no hard-coded patterns.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from .base import LintContext, Rule
from .findings import Finding
from .modinfo import ModuleInfo, call_name, context_of, enclosing_class
from .quorum_model import (
    DEFINITION_BASENAMES,
    is_quorum_expr,
    leaf_param,
    signature_of,
)

_ARITH_OPS = (ast.Add, ast.Sub, ast.Mult, ast.FloorDiv, ast.Div, ast.Mod)
_WRAPPER_CALLS = frozenset({"max", "min", "ceil"})


def _is_exprish_parent(parent: Optional[ast.AST], node: ast.AST) -> bool:
    """True if ``parent`` would make ``node`` a sub-expression of a
    larger quorum expression (so only the maximal expression fires)."""
    if isinstance(parent, ast.BinOp) and isinstance(parent.op, _ARITH_OPS):
        return True
    if isinstance(parent, ast.UnaryOp):
        return True
    if isinstance(parent, ast.Call) and call_name(parent) in _WRAPPER_CALLS:
        return node in parent.args
    return False


def _in_allowed_context(info: ModuleInfo, node: ast.AST) -> bool:
    """Definition sites are exempt: the canonical config/quorums
    modules, and the body of any ``*Config`` class (protocol variants
    define their own thresholds there)."""
    if info.basename in DEFINITION_BASENAMES:
        return True
    cls = enclosing_class(info, node)
    return cls is not None and cls.name.endswith("Config")


def _is_range_arg(info: ModuleInfo, node: ast.AST) -> bool:
    """``range(f + 1)`` sweeps over fault counts are not thresholds."""
    parent = info.parents.get(node)
    return (
        isinstance(parent, ast.Call)
        and call_name(parent) == "range"
        and node in parent.args
    )


def _has_param(node: ast.AST) -> bool:
    return any(leaf_param(sub) is not None for sub in ast.walk(node))


def _looks_threshold_like(node: ast.AST) -> bool:
    """Gate for Q202 (unknown form): require >= 2 distinct parameter
    leaves or a constant multiplication, so benign counting arithmetic
    (``n - 1`` peers, ``n * n`` all-to-all message counts) does not
    demand a named property.  Thresholds are affine in f/t/n — a
    param-times-param product is a complexity figure, not a quorum."""
    params = set()
    has_mult = False
    for sub in ast.walk(node):
        p = leaf_param(sub)
        if p is not None:
            params.add(p)
        if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Mult):
            if _has_param(sub.left) and _has_param(sub.right):
                return False
            has_mult = True
    return len(params) >= 2 or has_mult


class QuorumLiteralRule(Rule):
    id = "Q201"
    title = "threshold literal re-derives a named quorum"
    rationale = (
        "Inline f/t/n arithmetic that equals a named quorum definition "
        "drifts silently when the resilience model changes; call the "
        "named property/function instead."
    )
    bad = "if len(votes) >= 2 * self.f + 1: ..."
    good = "if len(votes) >= self.checkpoint_quorum: ...  # = majority_correct(f)"

    def check(self, info: ModuleInfo, ctx: LintContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(info.tree):
            if not isinstance(node, (ast.BinOp, ast.Call)):
                continue
            if isinstance(node, ast.Call) and call_name(node) not in _WRAPPER_CALLS:
                continue
            if _is_exprish_parent(info.parents.get(node), node):
                continue  # a larger expression will be checked instead
            if not is_quorum_expr(node):
                continue
            if _in_allowed_context(info, node):
                continue
            if _is_range_arg(info, node):
                continue
            sig = signature_of(node, ctx.model.functions)
            if sig is None:
                continue
            matches = ctx.model.lookup(sig)
            if matches:
                names = ", ".join(sorted(d.name for d in matches))
                suggestion = sorted(d.suggestion for d in matches)[0]
                findings.append(
                    Finding(
                        path=info.relpath,
                        line=node.lineno,
                        col=node.col_offset,
                        rule=self.id,
                        message=(
                            f"inline threshold `{ast.unparse(node)}` "
                            f"re-derives {names}; use e.g. `{suggestion}`"
                        ),
                        context=context_of(info, node),
                    )
                )
            elif _looks_threshold_like(node):
                findings.append(
                    Finding(
                        path=info.relpath,
                        line=node.lineno,
                        col=node.col_offset,
                        rule="Q202",
                        message=(
                            f"threshold-like expression `{ast.unparse(node)}` "
                            "matches no named quorum definition; add a named "
                            "property to core/config.py or core/quorums.py "
                            "and call it"
                        ),
                        context=context_of(info, node),
                    )
                )
        return findings


class UnknownThresholdRule(Rule):
    """Metadata-only entry for Q202 (emitted by QuorumLiteralRule so
    both checks share one canonicalization pass)."""

    id = "Q202"
    title = "threshold-like arithmetic with no named definition"
    rationale = (
        "New threshold forms belong next to the existing definitions "
        "so the resilience bound stays auditable in one place."
    )
    bad = "need = 2 * self.n - 3 * self.f"
    good = "# core/config.py\n@property\ndef my_quorum(self): return 2 * self.n - 3 * self.f"

    def check(self, info: ModuleInfo, ctx: LintContext) -> List[Finding]:
        return []  # emitted by QuorumLiteralRule


QUORUM_RULES = [QuorumLiteralRule(), UnknownThresholdRule()]
