"""Rule registry: every rule family plus suppression meta-rules."""

from __future__ import annotations

from typing import Dict, List

from .base import Rule
from .rules_dataflow import DATAFLOW_RULES
from .rules_determinism import DETERMINISM_RULES
from .rules_quorum import QUORUM_RULES


class MissingJustificationRule(Rule):
    """Metadata entry; emitted by the suppression scanner."""

    id = "SUP001"
    title = "suppression without justification"
    rationale = (
        "Every `# lint: ignore[RULE]` must say why the violation is "
        "acceptable; an unexplained suppression hides drift."
    )
    bad = "x = time.time()  # lint: ignore[D101]"
    good = "x = time.time()  # lint: ignore[D101]: wall time only in report metadata"

    def check(self, info, ctx):  # pragma: no cover - never dispatched
        return []


class UnusedSuppressionRule(Rule):
    """Metadata entry; emitted by the suppression scanner."""

    id = "SUP002"
    title = "suppression matches no finding"
    rationale = (
        "A suppression whose violation is gone (or whose rule id is "
        "misspelled) is dead weight and masks future regressions."
    )
    bad = "y = a + b  # lint: ignore[D101]: stale comment"
    good = "y = a + b"

    def check(self, info, ctx):  # pragma: no cover - never dispatched
        return []


ALL_RULES: List[Rule] = [
    *DETERMINISM_RULES,
    *QUORUM_RULES,
    *DATAFLOW_RULES,
    MissingJustificationRule(),
    UnusedSuppressionRule(),
]

RULES_BY_ID: Dict[str, Rule] = {rule.id: rule for rule in ALL_RULES}


def rule_table() -> List[Dict[str, str]]:
    """Rows for ``--list-rules`` and the README table."""
    return [
        {
            "id": rule.id,
            "title": rule.title,
            "rationale": rule.rationale,
            "bad": rule.bad,
            "good": rule.good,
        }
        for rule in ALL_RULES
    ]
