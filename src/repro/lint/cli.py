"""Command-line interface: ``python -m repro.lint``.

Exit codes: 0 = clean (possibly with baselined findings), 1 = findings,
2 = usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .baseline import save_baseline
from .engine import run_lint
from .rules import rule_table

DEFAULT_BASELINE = Path("tests/lint_baseline.json")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Protocol-aware static analysis: determinism (D), quorum "
            "arithmetic (Q), verify-before-use (V), WAL ordering (W)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        help="write a JSON report to FILE ('-' for stdout)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help=(
            "baseline file of grandfathered findings "
            f"(default: {DEFAULT_BASELINE} when it exists)"
        ),
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline file from the current findings",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true", help="suppress per-finding lines"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for row in rule_table():
            print(f"{row['id']}  {row['title']}")
            print(f"      {row['rationale']}")
        return 0

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"error: path(s) do not exist: {', '.join(map(str, missing))}",
            file=sys.stderr,
        )
        return 2

    if args.baseline is not None:
        baseline_path: Optional[Path] = Path(args.baseline)
    elif DEFAULT_BASELINE.exists():
        baseline_path = DEFAULT_BASELINE
    else:
        baseline_path = None

    if args.update_baseline:
        if baseline_path is None:
            print(
                "error: --update-baseline requires --baseline FILE "
                f"(or an existing {DEFAULT_BASELINE})",
                file=sys.stderr,
            )
            return 2
        result = run_lint(paths, baseline_path=None)
        save_baseline(baseline_path, result.findings)
        print(
            f"wrote {baseline_path} with "
            f"{len({f.baseline_key() for f in result.findings})} entr"
            f"{'y' if len(result.findings) == 1 else 'ies'} "
            "(justifications required before they take effect)"
        )
        return 0

    result = run_lint(paths, baseline_path=baseline_path)

    if not args.quiet:
        for finding in result.findings:
            print(finding.render())

    summary = (
        f"{result.files_checked} files checked, "
        f"{len(result.findings)} finding(s), "
        f"{result.suppressed} suppressed, "
        f"{len(result.baselined)} baselined"
    )
    print(summary if not result.findings else f"FAILED: {summary}")

    if args.json:
        payload = json.dumps(result.to_json(), indent=2) + "\n"
        if args.json == "-":
            sys.stdout.write(payload)
        else:
            Path(args.json).write_text(payload, encoding="utf-8")

    return result.exit_code
