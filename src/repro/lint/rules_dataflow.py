"""V- and W-series rules: per-function dataflow walks.

V301 (verify-before-use): a handler method receiving a *signed* payload
(a class declaring a ``signature``/``cert``/``signatures`` field) must
pass it through ``KeyRegistry.verify`` / ``verify_all`` or a
``*_valid``/``*_acceptable`` certificate validator before any statement
mutates replica state using that payload.

W401/W402 (WAL ordering): in decide paths, the decided-state store must
be dominated by the corresponding ``wal.append_decide``; WAL truncation
must be dominated by checkpoint persistence.  Replay loops that iterate
the WAL itself are exempt — their values are already durable.

Both walks are intra-procedural over the statement list in source
order: simple by design, precise enough for the handler idioms this
codebase uses (early-return guards, then mutate).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from .base import LintContext, Rule
from .findings import Finding
from .modinfo import ModuleInfo, call_name, dotted_name

#: Field names that mark a message class as signed/certified.
SIGNED_FIELDS = frozenset({"signature", "cert", "signatures"})

#: Method-name shapes treated as message handlers.
_HANDLER_PREFIXES = ("_handle_", "_record_", "_on_")
_HANDLER_NAMES = frozenset({"on_message"})

#: Final-attribute shapes treated as state mutation when fed the
#: unverified payload.
_MUTATOR_EXACT = frozenset(
    {"add", "append", "appendleft", "extend", "insert", "setdefault",
     "remove", "discard", "pop", "push", "write"}
)
_MUTATOR_PREFIXES = (
    "record", "install", "apply", "adopt", "store", "append", "update",
    "set_", "add_", "insert", "push", "write",
)

_VERIFY_ATTRS = frozenset({"verify", "verify_all"})
_VERIFY_SUFFIXES = ("_valid", "_acceptable", "_validate")
_VERIFY_NAMES = frozenset({"validate", "verify_certificate", "check_signature"})

V_SCOPE = frozenset({"smr", "storage", "core", "sync"})
W_SCOPE = frozenset({"smr", "storage"})


def collect_signed_types(modules: List[ModuleInfo]) -> frozenset:
    """Class names declaring a signature/cert field, across all linted
    modules — the V-rule's definition of 'signed payload type'."""
    names: Set[str] = set()
    for info in modules:
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for item in node.body:
                target: Optional[ast.expr] = None
                if isinstance(item, ast.AnnAssign):
                    target = item.target
                elif isinstance(item, ast.Assign) and len(item.targets) == 1:
                    target = item.targets[0]
                if (
                    isinstance(target, ast.Name)
                    and target.id in SIGNED_FIELDS
                ):
                    names.add(node.name)
                    break
    return frozenset(names)


def _annotation_names(ann: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for sub in ast.walk(ann):
        if isinstance(sub, ast.Name):
            names.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            names.add(sub.attr)
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            names.add(sub.value.strip())
    return names


def _is_handler(func: ast.FunctionDef) -> bool:
    return func.name in _HANDLER_NAMES or func.name.startswith(
        _HANDLER_PREFIXES
    )


def _references(node: ast.AST, names: Set[str]) -> bool:
    return any(
        isinstance(sub, ast.Name) and sub.id in names
        for sub in ast.walk(node)
    )


def _contains_verification(stmt: ast.stmt) -> bool:
    for sub in ast.walk(stmt):
        if not isinstance(sub, ast.Call):
            continue
        if (
            isinstance(sub.func, ast.Attribute)
            and sub.func.attr in _VERIFY_ATTRS
        ):
            return True
        name = call_name(sub)
        if name in _VERIFY_NAMES or name.endswith(_VERIFY_SUFFIXES):
            return True
    return False


def _mutator_attr(attr: str) -> bool:
    plain = attr.lstrip("_")
    return plain in _MUTATOR_EXACT or plain.startswith(_MUTATOR_PREFIXES)


def _mutations_using(
    stmt: ast.stmt, params: Set[str], own_handlers: Set[str]
) -> Iterator[ast.AST]:
    """Yield nodes in ``stmt`` that mutate self-state using a monitored
    parameter.  ``own_handlers`` are sibling handler methods — a plain
    ``self._handle_x(payload)`` call is delegation, not mutation."""
    for sub in ast.walk(stmt):
        if isinstance(sub, (ast.Assign, ast.AugAssign)):
            targets = sub.targets if isinstance(sub, ast.Assign) else [sub.target]
            for target in targets:
                if _targets_self_state(target) and _references(sub, params):
                    yield sub
                    break
        elif isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
            chain = dotted_name(sub.func)
            if not chain.startswith("self."):
                continue
            parts = chain.split(".")
            if len(parts) == 2 and parts[1] in own_handlers:
                continue  # delegation to a sibling handler
            if _mutator_attr(sub.func.attr) and any(
                _references(arg, params)
                for arg in list(sub.args) + [kw.value for kw in sub.keywords]
            ):
                yield sub


def _targets_self_state(target: ast.AST) -> bool:
    cur = target
    while isinstance(cur, (ast.Subscript, ast.Attribute)):
        if isinstance(cur, ast.Attribute) and isinstance(cur.value, ast.Name):
            return cur.value.id == "self"
        cur = cur.value
    return False


def _iter_stmts(body: List[ast.stmt]) -> Iterator[ast.stmt]:
    """Pre-order statement walk in source order, not descending into
    nested function definitions."""
    for stmt in body:
        yield stmt
        for field in ("body", "orelse", "finalbody"):
            sub = getattr(stmt, field, None)
            if sub and not isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                yield from _iter_stmts(sub)
        for handler in getattr(stmt, "handlers", []) or []:
            yield from _iter_stmts(handler.body)


class VerifyBeforeUseRule(Rule):
    id = "V301"
    title = "signed payload used before verification"
    rationale = (
        "A Byzantine sender forges unverified payloads; state mutated "
        "before KeyRegistry.verify / a certificate validator runs is "
        "attacker-controlled."
    )
    bad = "def _record_vote(self, sender, vote: CheckpointVote):\n    self._votes[vote.slot] = vote  # before verify"
    good = "if not self._registry.verify(vote.signature, payload):\n    return\nself._votes[vote.slot] = vote"

    def check(self, info: ModuleInfo, ctx: LintContext) -> List[Finding]:
        if not info.in_dirs(V_SCOPE):
            return []
        findings: List[Finding] = []
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            own_handlers = {
                item.name
                for item in node.body
                if isinstance(item, ast.FunctionDef) and _is_handler(item)
            }
            for item in node.body:
                if not isinstance(item, ast.FunctionDef) or not _is_handler(item):
                    continue
                params = {
                    arg.arg
                    for arg in item.args.args + item.args.kwonlyargs
                    if arg.annotation is not None
                    and _annotation_names(arg.annotation) & ctx.signed_types
                }
                if not params:
                    continue
                verified = False
                for stmt in _iter_stmts(item.body):
                    if _contains_verification(stmt):
                        verified = True
                    if verified:
                        break
                    for mutation in _mutations_using(stmt, params, own_handlers):
                        findings.append(
                            Finding(
                                path=info.relpath,
                                line=mutation.lineno,
                                col=mutation.col_offset,
                                rule=self.id,
                                message=(
                                    f"{node.name}.{item.name} mutates state "
                                    f"using signed payload ({', '.join(sorted(params))}) "
                                    "before any verify/validator call"
                                ),
                                context=f"{node.name}.{item.name}",
                            )
                        )
                        break  # one finding per handler is enough
                    else:
                        continue
                    break
        return findings


class WalDecideRule(Rule):
    id = "W401"
    title = "decide effect not dominated by WAL append"
    rationale = (
        "A decided slot recorded in memory before wal.append_decide is "
        "lost on crash, breaking recovery; replay loops reading the WAL "
        "itself are exempt."
    )
    bad = "self._decided[slot] = value\nself.storage.wal.append_decide(slot, value)"
    good = "self.storage.wal.append_decide(slot, value)\nself._decided[slot] = value"

    def check(self, info: ModuleInfo, ctx: LintContext) -> List[Finding]:
        if not info.in_dirs(W_SCOPE):
            return []
        findings: List[Finding] = []
        for node in ast.walk(info.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            self._walk(node.body, False, False, info, findings)
        return findings

    def _walk(
        self,
        body: List[ast.stmt],
        appended: bool,
        wal_derived: bool,
        info: ModuleInfo,
        findings: List[Finding],
    ) -> bool:
        for stmt in body:
            if self._contains_append(stmt):
                appended = True
            exempt = wal_derived
            if isinstance(stmt, ast.For) and self._wal_sourced(stmt.iter):
                exempt = True
            for store in self._decided_stores(stmt):
                if not appended and not exempt:
                    findings.append(
                        Finding(
                            path=info.relpath,
                            line=store.lineno,
                            col=store.col_offset,
                            rule=self.id,
                            message=(
                                "decided-state store is not preceded by "
                                "wal.append_decide in this function; crash "
                                "here loses the decision"
                            ),
                            context=f"<{info.basename}>",
                        )
                    )
            for field in ("body", "orelse", "finalbody"):
                sub = getattr(stmt, field, None)
                if sub and not isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    appended = self._walk(sub, appended, exempt, info, findings)
            for handler in getattr(stmt, "handlers", []) or []:
                appended = self._walk(
                    handler.body, appended, exempt, info, findings
                )
        return appended

    @staticmethod
    def _contains_append(stmt: ast.stmt) -> bool:
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Call) and isinstance(
                sub.func, ast.Attribute
            ):
                if sub.func.attr == "append_decide":
                    return True
                if sub.func.attr == "append" and "wal" in dotted_name(
                    sub.func
                ):
                    return True
        return False

    @staticmethod
    def _wal_sourced(node: ast.AST) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Attribute) and sub.attr == "wal":
                return True
            if isinstance(sub, ast.Call) and call_name(sub) == "decides":
                return True
        return False

    @staticmethod
    def _decided_stores(stmt: ast.stmt) -> Iterator[ast.AST]:
        targets: List[ast.AST] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, ast.AugAssign):
            targets = [stmt.target]
        for target in targets:
            if (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Attribute)
                and target.value.attr in ("_decided", "decided")
                and isinstance(target.value.value, ast.Name)
                and target.value.value.id == "self"
            ):
                yield target


class WalTruncateRule(Rule):
    id = "W402"
    title = "WAL truncation not dominated by checkpoint persistence"
    rationale = (
        "Truncating the WAL before the covering checkpoint is durable "
        "can lose both on crash; persist/install the checkpoint first."
    )
    bad = "self.wal.truncate_upto(cp.slot)\nself._checkpoint = cp"
    good = "self._checkpoint = cp\nself._persist_checkpoint()\nself.wal.truncate_upto(cp.slot)"

    def check(self, info: ModuleInfo, ctx: LintContext) -> List[Finding]:
        if not info.in_dirs(W_SCOPE):
            return []
        findings: List[Finding] = []
        for node in ast.walk(info.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name == "truncate_upto":
                continue  # the definition itself
            persisted = False
            for stmt in _iter_stmts(node.body):
                if self._persists_checkpoint(stmt):
                    persisted = True
                for trunc in self._truncate_calls(stmt):
                    if not persisted:
                        findings.append(
                            Finding(
                                path=info.relpath,
                                line=trunc.lineno,
                                col=trunc.col_offset,
                                rule=self.id,
                                message=(
                                    "wal truncation is not preceded by "
                                    "checkpoint persistence in this function"
                                ),
                                context=f"<{info.basename}>.{node.name}",
                            )
                        )
        return findings

    @staticmethod
    def _persists_checkpoint(stmt: ast.stmt) -> bool:
        for sub in ast.walk(stmt):
            if isinstance(sub, (ast.Assign, ast.AugAssign)):
                targets = (
                    sub.targets if isinstance(sub, ast.Assign) else [sub.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and "checkpoint" in target.attr
                    ):
                        return True
            if isinstance(sub, ast.Call) and "checkpoint" in call_name(sub):
                return True
        return False

    @staticmethod
    def _truncate_calls(stmt: ast.stmt) -> Iterator[ast.Call]:
        for sub in ast.walk(stmt):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "truncate_upto"
            ):
                yield sub


DATAFLOW_RULES = [VerifyBeforeUseRule(), WalDecideRule(), WalTruncateRule()]
