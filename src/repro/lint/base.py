"""Rule base class and the shared per-run lint context."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .findings import Finding
from .modinfo import ModuleInfo
from .quorum_model import QuorumModel


@dataclass
class LintContext:
    """Cross-module facts computed once per run and shared by rules.

    ``signed_types`` are class names declaring a ``signature`` /
    ``cert`` / ``signatures`` field, harvested from every linted module
    — the V-rule keys handler-parameter annotations off this set, so
    adding a new signed message type automatically extends coverage.
    """

    model: QuorumModel
    signed_types: frozenset = frozenset()
    modules: List[ModuleInfo] = field(default_factory=list)


class Rule:
    """One lint rule.  Subclasses override :meth:`check`.

    ``bad`` / ``good`` are minimal example snippets surfaced in
    ``--list-rules`` and the README rule table.
    """

    id: str = ""
    title: str = ""
    rationale: str = ""
    bad: str = ""
    good: str = ""

    def check(self, info: ModuleInfo, ctx: LintContext) -> List[Finding]:
        raise NotImplementedError
