"""Inline suppression comments.

Syntax::

    bad_call()  # lint: ignore[D101]: wall time only in report metadata

    # lint: ignore[Q201, Q202]: pedagogical re-derivation in example
    need = 2 * f + 1

A suppression on its own line applies to the next line; trailing
suppressions apply to their own line.  The justification after the
second colon is mandatory — omitting it still suppresses the finding
but emits ``SUP001`` so CI fails until the why is written down.  A
suppression that ends up matching no finding emits ``SUP002``.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .findings import Finding
from .modinfo import ModuleInfo

_PATTERN = re.compile(
    r"#\s*lint:\s*ignore\[(?P<rules>[A-Za-z0-9_,\s*]+)\]\s*(?::\s*(?P<why>.*))?$"
)


@dataclass
class Suppression:
    line: int  # line the comment is on
    target_line: int  # line findings must be on to match
    rules: Tuple[str, ...]  # rule ids, or ("*",)
    justification: str
    used: bool = field(default=False)

    def matches(self, finding: Finding) -> bool:
        if finding.line != self.target_line:
            return False
        return "*" in self.rules or finding.rule in self.rules


def scan_suppressions(info: ModuleInfo) -> List[Suppression]:
    suppressions: List[Suppression] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(info.source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return []
    source_lines = info.source.splitlines()
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _PATTERN.search(tok.string)
        if not match:
            continue
        line = tok.start[0]
        rules = tuple(
            r.strip() for r in match.group("rules").split(",") if r.strip()
        )
        why = (match.group("why") or "").strip()
        text = source_lines[line - 1] if line <= len(source_lines) else ""
        standalone = text.lstrip().startswith("#")
        suppressions.append(
            Suppression(
                line=line,
                target_line=line + 1 if standalone else line,
                rules=rules,
                justification=why,
            )
        )
    return suppressions


def apply_suppressions(
    info: ModuleInfo, findings: List[Finding]
) -> Tuple[List[Finding], List[Finding], int]:
    """Filter ``findings`` through the file's suppressions.

    Returns ``(kept, meta_findings, suppressed_count)`` where
    ``meta_findings`` are SUP001/SUP002 violations from the
    suppressions themselves.
    """
    suppressions = scan_suppressions(info)
    kept: List[Finding] = []
    suppressed = 0
    for finding in findings:
        hit = None
        for sup in suppressions:
            if sup.matches(finding):
                hit = sup
                break
        if hit is None:
            kept.append(finding)
        else:
            hit.used = True
            suppressed += 1
    meta: List[Finding] = []
    for sup in suppressions:
        if not sup.justification:
            meta.append(
                Finding(
                    path=info.relpath,
                    line=sup.line,
                    col=0,
                    rule="SUP001",
                    message=(
                        "suppression has no justification; write "
                        "`# lint: ignore[RULE]: <why this is acceptable>`"
                    ),
                    context=f"ignore[{','.join(sup.rules)}]",
                )
            )
        if not sup.used:
            meta.append(
                Finding(
                    path=info.relpath,
                    line=sup.line,
                    col=0,
                    rule="SUP002",
                    message=(
                        f"suppression ignore[{','.join(sup.rules)}] matches "
                        "no finding on its target line; remove it or fix "
                        "the rule id"
                    ),
                    context=f"ignore[{','.join(sup.rules)}]",
                )
            )
    return kept, meta, suppressed
