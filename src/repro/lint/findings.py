"""Finding record shared by every lint rule."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location.

    ``context`` is the dotted lexical context (``Class.method`` or
    ``<module>``); baselines key on ``(rule, path, context)`` rather than
    line numbers so unrelated edits above a baselined finding do not
    invalidate the baseline.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    context: str = "<module>"

    def baseline_key(self) -> tuple:
        return (self.rule, self.path, self.context)

    def to_json(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "context": self.context,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message} [{self.context}]"
