"""D-series rules: determinism of protocol and simulation code.

Golden scenario digests pin every simulated execution byte-for-byte.
Anything that reads ambient entropy (wall clock, OS randomness, the
process-global ``random`` module) or leaks memory-layout order
(``set`` iteration into a message/digest path, ``id()`` into a hash)
breaks that contract non-reproducibly.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from .base import LintContext, Rule
from .findings import Finding
from .modinfo import (
    PROTOCOL_DIRS,
    ModuleInfo,
    call_name,
    context_of,
    dotted_name,
)

#: D-rules also cover ``scenarios/`` — its specs/adapters feed the
#: deterministic runs directly (seeded workload generation, fault
#: schedules), so the same entropy/order discipline applies.
D_SCOPE = PROTOCOL_DIRS | {"scenarios"}

#: Calls that read wall clocks or OS entropy.  Matched as suffixes of
#: the dotted call name so both ``time.monotonic()`` and
#: ``datetime.datetime.now()`` hit.
_ENTROPY_SUFFIXES = (
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
    "os.urandom",
    "os.getrandom",
    "uuid.uuid1",
    "uuid.uuid4",
    "random.SystemRandom",
)
_ENTROPY_BARE = frozenset(
    {"urandom", "getrandom", "uuid1", "uuid4", "SystemRandom",
     "perf_counter", "perf_counter_ns", "monotonic", "monotonic_ns",
     "token_bytes", "token_hex", "token_urlsafe"}
)

#: Order-sensitive sinks: message emission and digest construction.
_SINKS = frozenset(
    {"send", "broadcast", "sign", "canonical_bytes", "sha256", "blake2b",
     "md5", "sha1", "state_digest", "trace_digest", "cluster_digest",
     "digest", "hexdigest"}
)

#: Order-insensitive consumers — a set flowing through these is fine.
_SANITIZERS = frozenset(
    {"sorted", "sum", "min", "max", "len", "any", "all", "set",
     "frozenset", "Counter"}
)

_DIGEST_SINKS = frozenset(
    {"sha256", "blake2b", "md5", "sha1", "canonical_bytes", "sign",
     "hash", "state_digest", "trace_digest", "cluster_digest"}
)


def _imports_random_module(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            if any(alias.name == "random" for alias in node.names):
                return True
    return False


def _imported_bare_entropy(tree: ast.Module) -> Set[str]:
    """Bare names imported from entropy modules (``from os import
    urandom``), so unqualified calls can be matched without guessing."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module in (
            "os", "uuid", "secrets", "time", "random", "datetime"
        ):
            for alias in node.names:
                if alias.name in _ENTROPY_BARE or node.module == "secrets":
                    names.add(alias.asname or alias.name)
    return names


class WallClockRule(Rule):
    id = "D101"
    title = "no wall clock or OS entropy in protocol code"
    rationale = (
        "Golden digests require runs to be byte-identical; wall-clock "
        "reads and OS randomness differ per run. Use the simulated "
        "clock (event time) and seeded generators."
    )
    bad = "timestamp = time.time()"
    good = "timestamp = self.now  # simulated event-loop time"

    def check(self, info: ModuleInfo, ctx: LintContext) -> List[Finding]:
        if not info.in_dirs(D_SCOPE):
            return []
        findings: List[Finding] = []
        bare = _imported_bare_entropy(info.tree)
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            hit: Optional[str] = None
            if dotted.startswith("secrets."):
                hit = dotted
            elif any(
                dotted == suffix or dotted.endswith("." + suffix)
                for suffix in _ENTROPY_SUFFIXES
            ):
                hit = dotted
            elif isinstance(node.func, ast.Name) and node.func.id in bare:
                hit = node.func.id
            if hit is not None:
                findings.append(
                    Finding(
                        path=info.relpath,
                        line=node.lineno,
                        col=node.col_offset,
                        rule=self.id,
                        message=(
                            f"call to {hit}() reads wall clock/OS entropy in "
                            "deterministic protocol code; use the simulated "
                            "clock or a seeded generator"
                        ),
                        context=context_of(info, node),
                    )
                )
        return findings


class GlobalRandomRule(Rule):
    id = "D102"
    title = "no process-global random module calls"
    rationale = (
        "Module-level random.* draws share hidden global state across "
        "components and runs; thread an explicitly seeded "
        "random.Random from the scenario/sim seed instead."
    )
    bad = "delay = random.uniform(0.0, jitter)"
    good = "delay = self._rng.uniform(0.0, jitter)  # rng = Random(seed)"

    def check(self, info: ModuleInfo, ctx: LintContext) -> List[Finding]:
        if not info.in_dirs(D_SCOPE):
            return []
        if not _imports_random_module(info.tree):
            return []
        findings: List[Finding] = []
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "random"
                and func.attr not in ("Random", "SystemRandom")
            ):
                findings.append(
                    Finding(
                        path=info.relpath,
                        line=node.lineno,
                        col=node.col_offset,
                        rule=self.id,
                        message=(
                            f"random.{func.attr}() uses the process-global "
                            "generator; use an explicitly seeded "
                            "random.Random instance"
                        ),
                        context=context_of(info, node),
                    )
                )
        return findings


def _is_set_expr(node: ast.AST, set_names: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = call_name(node)
        if name in ("set", "frozenset"):
            return True
        if name == "keys" and isinstance(node.func, ast.Attribute):
            # dict.keys() views are set-like; iterate the dict itself
            # (insertion order) or sorted(d) instead.
            return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor)
    ):
        return _is_set_expr(node.left, set_names) or _is_set_expr(
            node.right, set_names
        )
    if isinstance(node, ast.Name):
        return node.id in set_names
    return False


def _local_set_names(scope: ast.AST) -> Set[str]:
    """Names assigned from syntactically set-typed expressions inside
    ``scope`` (one pass; no fixpoint — locality is the documented
    contract of D103)."""
    names: Set[str] = set()
    for _ in range(2):  # second pass catches  a = {...}; b = a | other
        for node in ast.walk(scope):
            if isinstance(node, ast.Assign) and _is_set_expr(node.value, names):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if _is_set_expr(node.value, names) and isinstance(
                    node.target, ast.Name
                ):
                    names.add(node.target.id)
    return names


def _contains_sink(node: ast.AST) -> Optional[ast.Call]:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and call_name(sub) in _SINKS:
            return sub
    return None


def _unsorted_set_comprehensions(
    node: ast.AST, set_names: Set[str]
) -> List[ast.AST]:
    """Comprehension/For nodes under ``node`` iterating a set-typed
    expression, skipping subtrees rooted at order-insensitive calls."""
    hits: List[ast.AST] = []

    def walk(sub: ast.AST) -> None:
        if isinstance(sub, ast.Call) and call_name(sub) in _SANITIZERS:
            return
        if isinstance(
            sub, (ast.GeneratorExp, ast.ListComp, ast.SetComp, ast.DictComp)
        ):
            for gen in sub.generators:
                if _is_set_expr(gen.iter, set_names):
                    hits.append(gen.iter)
        for child in ast.iter_child_nodes(sub):
            walk(child)

    walk(node)
    return hits


class SetOrderRule(Rule):
    id = "D103"
    title = "no set iteration reaching a send/broadcast/digest"
    rationale = (
        "set and dict-keys iteration order depends on hash seeding and "
        "insertion history; if it reaches a message send or digest the "
        "golden traces diverge. Wrap the iterable in sorted()."
    )
    bad = "for pid in peers_set: net.send(pid, msg)"
    good = "for pid in sorted(peers_set): net.send(pid, msg)"

    def check(self, info: ModuleInfo, ctx: LintContext) -> List[Finding]:
        if not info.in_dirs(D_SCOPE):
            return []
        findings: List[Finding] = []
        scopes: List[ast.AST] = [info.tree]
        scopes.extend(
            n
            for n in ast.walk(info.tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        seen: Set[int] = set()
        for scope in scopes:
            set_names = _local_set_names(scope)
            for node in ast.iter_child_nodes(scope):
                self._check_stmts(node, set_names, info, findings, seen)
        return findings

    def _check_stmts(
        self,
        node: ast.AST,
        set_names: Set[str],
        info: ModuleInfo,
        findings: List[Finding],
        seen: Set[int],
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # handled as its own scope
        if isinstance(node, ast.For) and _is_set_expr(node.iter, set_names):
            sink = _contains_sink(node)
            if sink is not None and id(node) not in seen:
                seen.add(id(node))
                findings.append(self._finding(info, node.iter, call_name(sink)))
        if isinstance(node, ast.Call) and call_name(node) in _SINKS:
            for hit in _unsorted_set_comprehensions(node, set_names):
                if id(hit) not in seen:
                    seen.add(id(hit))
                    findings.append(self._finding(info, hit, call_name(node)))
        for child in ast.iter_child_nodes(node):
            self._check_stmts(child, set_names, info, findings, seen)

    def _finding(
        self, info: ModuleInfo, node: ast.AST, sink: str
    ) -> Finding:
        return Finding(
            path=info.relpath,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            message=(
                "iteration over a set/dict-keys expression reaches "
                f"order-sensitive sink {sink}(); wrap the iterable in "
                "sorted()"
            ),
            context=context_of(info, node),
        )


class IdInDigestRule(Rule):
    id = "D104"
    title = "no id() feeding hashes or digests"
    rationale = (
        "id() is a memory address — different every run. Hash stable "
        "identities (pids, slots, canonical bytes) instead."
    )
    bad = "digest = sha256(str(id(msg)).encode())"
    good = "digest = sha256(canonical_bytes(msg))"

    def check(self, info: ModuleInfo, ctx: LintContext) -> List[Finding]:
        if not info.in_dirs(D_SCOPE):
            return []
        findings: List[Finding] = []
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            if call_name(node) not in _DIGEST_SINKS:
                continue
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                for sub in ast.walk(arg):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Name)
                        and sub.func.id == "id"
                        and len(sub.args) == 1
                    ):
                        findings.append(
                            Finding(
                                path=info.relpath,
                                line=sub.lineno,
                                col=sub.col_offset,
                                rule=self.id,
                                message=(
                                    f"id() feeds {call_name(node)}(); memory "
                                    "addresses vary per run — hash a stable "
                                    "identity instead"
                                ),
                                context=context_of(info, sub),
                            )
                        )
        return findings


class FreshSetMembershipRule(Rule):
    id = "D105"
    title = "no membership test against a freshly built set"
    rationale = (
        "`x in set(xs)` rebuilds the set on every evaluation — O(n) "
        "per test inside comprehensions and loops. Hoist it into a "
        "precomputed frozenset."
    )
    bad = "live = [p for p in pids if p not in set(spec.faulty_pids)]"
    good = "faulty = frozenset(spec.faulty_pids)\nlive = [p for p in pids if p not in faulty]"

    def check(self, info: ModuleInfo, ctx: LintContext) -> List[Finding]:
        if not info.in_dirs(D_SCOPE):
            return []
        findings: List[Finding] = []
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Compare):
                continue
            for op, comparator in zip(node.ops, node.comparators):
                if not isinstance(op, (ast.In, ast.NotIn)):
                    continue
                if isinstance(comparator, ast.Call) and call_name(
                    comparator
                ) in ("set", "frozenset"):
                    findings.append(
                        Finding(
                            path=info.relpath,
                            line=comparator.lineno,
                            col=comparator.col_offset,
                            rule=self.id,
                            message=(
                                "membership test rebuilds "
                                f"{call_name(comparator)}(...) at every "
                                "evaluation; hoist into a precomputed "
                                "frozenset"
                            ),
                            context=context_of(info, comparator),
                        )
                    )
        return findings


DETERMINISM_RULES = [
    WallClockRule(),
    GlobalRandomRule(),
    SetOrderRule(),
    IdInDigestRule(),
    FreshSetMembershipRule(),
]
