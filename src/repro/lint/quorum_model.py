"""Canonical model of the repo's quorum arithmetic.

The Q-series rules must stay in sync with the *definitions* in
``repro/core/config.py`` and ``repro/core/quorums.py`` without
hard-coding ``2*f + 1`` patterns here.  We parse those files, extract
every named quorum expression (module-level functions returning
arithmetic over parameters named ``f``/``t``/``n``, and ``@property``
methods returning arithmetic over ``self.f``/``self.t``/``self.n``),
and canonicalize each expression by *numeric multi-point evaluation*:
the expression is evaluated at several fixed ``(f, t, n)`` sample
points; two expressions with identical value tuples are the same
threshold.  That handles ``max()``/``min()``/``math.ceil()``/floor
division uniformly and means a renamed or re-derived property is still
matched by value, never by spelling.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

#: Leaf names treated as the protocol parameters.  ``self.f``,
#: ``config.f``, ``spec.t`` etc. all canonicalize to the bare name.
PARAM_NAMES = frozenset({"f", "t", "n"})

#: Sample points (f, t, n) chosen so distinct linear/ceil forms yield
#: distinct value tuples; pairwise-coprime-ish and n large enough that
#: n-f, n-t, (n+f+1)/2 stay positive and distinct.
SAMPLE_POINTS: Tuple[Tuple[int, int, int], ...] = (
    (2, 1, 11),
    (3, 2, 17),
    (5, 4, 31),
    (7, 3, 47),
)

_ARITH_OPS = (ast.Add, ast.Sub, ast.Mult, ast.FloorDiv, ast.Div, ast.Mod)
_CALL_FUNCS = frozenset({"max", "min", "ceil"})


def leaf_param(node: ast.AST) -> Optional[str]:
    """``f`` / ``self.f`` / ``config.f`` -> ``"f"``; else None."""
    if isinstance(node, ast.Name) and node.id in PARAM_NAMES:
        return node.id
    if isinstance(node, ast.Attribute) and node.attr in PARAM_NAMES:
        # Only treat short attribute chains (self.f, config.f,
        # self.config.f) as parameters; deep unrelated chains are not.
        return node.attr
    return None


def is_quorum_expr(node: ast.AST) -> bool:
    """True if ``node`` is pure arithmetic over f/t/n and int literals,
    containing at least one parameter leaf and at least one operation."""
    found = {"param": False, "op": False}

    def check(sub: ast.AST) -> bool:
        param = leaf_param(sub)
        if param is not None:
            found["param"] = True
            return True
        if isinstance(sub, ast.Constant):
            return isinstance(sub.value, int) and not isinstance(sub.value, bool)
        if isinstance(sub, ast.BinOp) and isinstance(sub.op, _ARITH_OPS):
            found["op"] = True
            return check(sub.left) and check(sub.right)
        if isinstance(sub, ast.UnaryOp) and isinstance(sub.op, (ast.USub, ast.UAdd)):
            return check(sub.operand)
        if isinstance(sub, ast.Call):
            from .modinfo import call_name

            if call_name(sub) in _CALL_FUNCS and sub.args and not sub.keywords:
                found["op"] = True
                return all(check(a) for a in sub.args)
            return False
        return False

    return check(node) and found["param"] and found["op"]


class _Evaluator:
    """Evaluate a quorum expression at one (f, t, n) point.

    ``functions`` maps a known function name to (param-names, body-expr)
    so definitions like ``commit_quorum`` that delegate to another named
    function still canonicalize.
    """

    def __init__(self, functions: Dict[str, Tuple[List[str], ast.AST]]):
        self.functions = functions

    def eval(self, node: ast.AST, env: Dict[str, int], depth: int = 0) -> int:
        if depth > 8:
            raise ValueError("recursion too deep")
        param = leaf_param(node)
        if param is not None:
            return env[param]
        if isinstance(node, ast.Constant):
            if isinstance(node.value, int) and not isinstance(node.value, bool):
                return node.value
            raise ValueError("non-int constant")
        if isinstance(node, ast.BinOp):
            left = self.eval(node.left, env, depth + 1)
            right = self.eval(node.right, env, depth + 1)
            if isinstance(node.op, ast.Add):
                return left + right
            if isinstance(node.op, ast.Sub):
                return left - right
            if isinstance(node.op, ast.Mult):
                return left * right
            if isinstance(node.op, ast.FloorDiv):
                return left // right
            if isinstance(node.op, ast.Div):
                # True division inside ceil(); represent exactly via
                # scaled rationals is overkill — ceil(a/b) is the only
                # real use, handled in the Call branch below.  A bare
                # Div outside ceil truncates like floordiv for
                # canonicalization purposes.
                return left // right
            if isinstance(node.op, ast.Mod):
                return left % right
            raise ValueError("unsupported binop")
        if isinstance(node, ast.UnaryOp):
            operand = self.eval(node.operand, env, depth + 1)
            if isinstance(node.op, ast.USub):
                return -operand
            if isinstance(node.op, ast.UAdd):
                return operand
            raise ValueError("unsupported unaryop")
        if isinstance(node, ast.Call):
            from .modinfo import call_name

            name = call_name(node)
            if name == "max":
                return max(self.eval(a, env, depth + 1) for a in node.args)
            if name == "min":
                return min(self.eval(a, env, depth + 1) for a in node.args)
            if name == "ceil" and len(node.args) == 1:
                arg = node.args[0]
                # ceil(a / b) computed exactly as -(-a // b).
                if isinstance(arg, ast.BinOp) and isinstance(arg.op, ast.Div):
                    num = self.eval(arg.left, env, depth + 1)
                    den = self.eval(arg.right, env, depth + 1)
                    return -(-num // den)
                return self.eval(arg, env, depth + 1)
            if name in self.functions:
                params, body = self.functions[name]
                args = [self.eval(a, env, depth + 1) for a in node.args]
                if len(args) != len(params):
                    raise ValueError("arity mismatch")
                return self.eval(body, dict(zip(params, args)), depth + 1)
            raise ValueError(f"unknown call {name}")
        raise ValueError(f"unsupported node {type(node).__name__}")


def signature_of(
    node: ast.AST,
    functions: Optional[Dict[str, Tuple[List[str], ast.AST]]] = None,
) -> Optional[Tuple[int, ...]]:
    """Value tuple of ``node`` over SAMPLE_POINTS, or None if it cannot
    be evaluated (unknown call, non-int leaf, ...)."""
    evaluator = _Evaluator(functions or {})
    values = []
    for f, t, n in SAMPLE_POINTS:
        try:
            values.append(evaluator.eval(node, {"f": f, "t": t, "n": n}))
        except (ValueError, ZeroDivisionError, KeyError):
            return None
    return tuple(values)


@dataclass(frozen=True)
class QuorumDefinition:
    name: str  # e.g. "ProtocolConfig.vote_quorum" or "commit_quorum"
    signature: Tuple[int, ...]
    suggestion: str  # how to spell the replacement in client code


class QuorumModel:
    """Signature -> named definition(s) lookup table."""

    def __init__(self) -> None:
        self.by_signature: Dict[Tuple[int, ...], List[QuorumDefinition]] = {}
        self.functions: Dict[str, Tuple[List[str], ast.AST]] = {}

    def add(self, definition: QuorumDefinition) -> None:
        bucket = self.by_signature.setdefault(definition.signature, [])
        if all(d.name != definition.name for d in bucket):
            bucket.append(definition)

    def lookup(self, sig: Tuple[int, ...]) -> List[QuorumDefinition]:
        return self.by_signature.get(sig, [])

    # -- extraction ---------------------------------------------------

    def ingest_module(self, tree: ast.Module, label: str) -> None:
        """Harvest definitions from a config/quorums-style module.

        Two shapes are recognized:

        * module-level ``def name(f, t=...) -> int: return <expr>``
          where the return expression is quorum arithmetic over the
          parameter names, and
        * ``@property`` methods inside any class whose return expression
          is quorum arithmetic over ``self.f``/``self.t``/``self.n``
          (conditional thresholds via ``IfExp`` register both arms).
        """
        # Pass 1: module-level functions (also recorded in
        # ``self.functions`` so properties that delegate to them — e.g.
        # commit_quorum — still evaluate).
        for node in tree.body:
            if not isinstance(node, ast.FunctionDef):
                continue
            ret = _sole_return_expr(node)
            if ret is None:
                continue
            params = [a.arg for a in node.args.args]
            if not params or not set(params) <= PARAM_NAMES:
                continue
            self.functions[node.name] = (params, ret)
            for arm in _ifexp_arms(ret):
                sig = signature_of(arm, self.functions)
                if sig is not None and is_quorum_expr(arm):
                    self.add(
                        QuorumDefinition(
                            name=node.name,
                            signature=sig,
                            suggestion=f"{node.name}({', '.join(params)})",
                        )
                    )
        # Pass 2: properties on any class.
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for item in node.body:
                if not isinstance(item, ast.FunctionDef):
                    continue
                if not any(
                    isinstance(d, ast.Name) and d.id == "property"
                    for d in item.decorator_list
                ):
                    continue
                ret = _sole_return_expr(item)
                if ret is None:
                    continue
                for arm in _ifexp_arms(ret):
                    sig = signature_of(arm, self.functions)
                    if sig is None:
                        continue
                    if not (is_quorum_expr(arm) or isinstance(arm, ast.Call)):
                        continue
                    self.add(
                        QuorumDefinition(
                            name=f"{node.name}.{item.name}",
                            signature=sig,
                            suggestion=f"config.{item.name}",
                        )
                    )


def _sole_return_expr(func: ast.FunctionDef) -> Optional[ast.AST]:
    """The expression of the function's final ``return``, if any."""
    for stmt in reversed(func.body):
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            return stmt.value
    return None


def _ifexp_arms(node: ast.AST) -> List[ast.AST]:
    """Flatten ``a if cond else b`` into its arms (recursively)."""
    if isinstance(node, ast.IfExp):
        return _ifexp_arms(node.body) + _ifexp_arms(node.orelse)
    return [node]


#: Basenames whose modules are harvested for definitions and exempt
#: from Q-findings (they *are* the definition sites).
DEFINITION_BASENAMES = frozenset({"config.py", "quorums.py"})


def build_model(extra_modules: List[Tuple[ast.Module, str]]) -> QuorumModel:
    """Model from the canonical core files plus any linted definition
    modules (lets fixtures bring their own config.py)."""
    model = QuorumModel()
    for path in _core_definition_paths():
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except (OSError, SyntaxError, ValueError):
            continue
        model.ingest_module(tree, path.name)
    for tree, label in extra_modules:
        model.ingest_module(tree, label)
    return model


def _core_definition_paths() -> List[Path]:
    try:
        import repro.core.config as _config
        import repro.core.quorums as _quorums
    except ImportError:
        return []
    # quorums first so config properties that call its functions resolve.
    return [Path(_quorums.__file__), Path(_config.__file__)]
