"""Quorum-certified application-state checkpoints.

Every ``checkpoint_interval`` executed slots a replica snapshots its
state machine, hashes the snapshot (:func:`state_digest`) and broadcasts
a signed :class:`CheckpointVote`.  Once ``2f + 1`` distinct replicas
vote for the same ``(slot, digest)`` the checkpoint is *stable*: the
votes' signatures form a
:class:`~repro.core.certificates.CheckpointCertificate`, the write-ahead
log is compacted up to the slot, and the replica's execution/result
caches are pruned (see :meth:`repro.smr.replica.SMRReplica`).

:class:`CheckpointManager` is pure bookkeeping — pending local
snapshots and vote tallies — the replica orchestrates signing,
verification and what stabilization triggers.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..core.certificates import CheckpointCertificate
from ..crypto.keys import Signature, canonical_bytes

__all__ = [
    "Checkpoint",
    "CheckpointManager",
    "CheckpointVote",
    "checkpoint_from_wire",
    "checkpoint_to_wire",
    "state_digest",
]


def state_digest(snapshot: Any) -> str:
    """Hex SHA-256 of a state-machine snapshot.

    Uses the signing serialization (:func:`~repro.crypto.keys.canonical_bytes`),
    so dict insertion order, ``PYTHONHASHSEED`` and platform never leak
    into the digest — two replicas with equal state always agree on it.
    """
    return hashlib.sha256(canonical_bytes(snapshot)).hexdigest()


@dataclass(frozen=True)
class CheckpointVote:
    """One replica's claim that executing up to ``slot`` yields ``digest``.

    ``signature`` covers :func:`~repro.core.payloads.checkpoint_payload`;
    it is ``None`` only for backends without a key registry (PBFT
    baseline), where stability falls back to counting distinct senders.
    """

    slot: int
    digest: str
    signature: Optional[Signature] = None


@dataclass(frozen=True)
class Checkpoint:
    """A stable checkpoint: the state snapshot plus its quorum evidence.

    ``state`` is whatever the state machine's ``snapshot()`` returned;
    ``digest`` must equal ``state_digest(state)`` (receivers re-hash —
    a certificate cannot vouch for a tampered payload otherwise), and
    ``cert`` carries the quorum signatures when the deployment signs.
    """

    slot: int
    state: Any
    digest: str
    cert: Optional[CheckpointCertificate] = None


def checkpoint_to_wire(checkpoint: Checkpoint) -> Dict[str, Any]:
    """JSON-safe encoding (file-backend persistence)."""
    from .wal import encode_value

    payload: Dict[str, Any] = {
        "slot": checkpoint.slot,
        "digest": checkpoint.digest,
        # The full codec, not plain JSON: snapshots may be dicts with
        # non-string keys (KVStore accepts any key), lists (AppendLog)
        # or nested tuples, and the certified digest only re-verifies if
        # the reload reproduces them exactly.
        "state": encode_value(checkpoint.state),
    }
    if checkpoint.cert is not None:
        payload["cert"] = {
            "slot": checkpoint.cert.slot,
            "digest": checkpoint.cert.digest,
            "signatures": [
                [sig.signer, sig.digest.hex()]
                for sig in checkpoint.cert.signatures
            ],
        }
    return payload


def checkpoint_from_wire(payload: Dict[str, Any]) -> Checkpoint:
    """Inverse of :func:`checkpoint_to_wire`."""
    from .wal import decode_value

    cert = None
    if payload.get("cert") is not None:
        wire = payload["cert"]
        cert = CheckpointCertificate(
            slot=wire["slot"],
            digest=wire["digest"],
            signatures=tuple(
                Signature(signer=signer, digest=bytes.fromhex(hexdigest))
                for signer, hexdigest in wire["signatures"]
            ),
        )
    return Checkpoint(
        slot=payload["slot"],
        state=decode_value(payload["state"]),
        digest=payload["digest"],
        cert=cert,
    )


class CheckpointManager:
    """Pending snapshots and vote tallies for one replica."""

    def __init__(self, interval: int) -> None:
        self.interval = interval
        #: slot -> (snapshot, digest) taken locally, not yet stable.
        self._pending: Dict[int, Tuple[Any, str]] = {}
        #: (slot, digest) -> {sender: signature-or-None}.
        self._votes: Dict[Tuple[int, str], Dict[int, Optional[Signature]]] = {}
        self.stable: Optional[Checkpoint] = None
        self.stabilized_count = 0

    # ------------------------------------------------------------------
    def boundary(self, slot: int) -> bool:
        """Whether executing ``slot`` completes a checkpoint interval."""
        return (slot + 1) % self.interval == 0

    @property
    def stable_slot(self) -> int:
        """Slot of the stable checkpoint (``-1`` before the first)."""
        return -1 if self.stable is None else self.stable.slot

    def record_local(self, slot: int, snapshot: Any, digest: str) -> None:
        if slot > self.stable_slot:
            self._pending[slot] = (snapshot, digest)

    def record_vote(
        self,
        slot: int,
        digest: str,
        sender: int,
        signature: Optional[Signature],
    ) -> None:
        if slot > self.stable_slot:
            self._votes.setdefault((slot, digest), {})[sender] = signature

    def ready(
        self, slot: int, digest: str, quorum: int
    ) -> Optional[Tuple[Any, Tuple[Signature, ...]]]:
        """``(snapshot, signatures)`` once the checkpoint can stabilize.

        Requires ``quorum`` distinct voters for ``(slot, digest)`` *and*
        a matching local snapshot — a replica that has not executed the
        slot yet keeps the votes and stabilizes when it catches up.
        """
        votes = self._votes.get((slot, digest), {})
        if len(votes) < quorum:
            return None
        pending = self._pending.get(slot)
        if pending is None or pending[1] != digest:
            return None
        signatures = tuple(
            sorted(
                (sig for sig in votes.values() if sig is not None),
                key=lambda sig: sig.signer,
            )
        )
        return pending[0], signatures

    def install_stable(self, checkpoint: Checkpoint) -> None:
        """Adopt ``checkpoint`` as stable; drop evidence it obsoletes."""
        if checkpoint.slot <= self.stable_slot:
            return
        self.stable = checkpoint
        self.stabilized_count += 1
        self._pending = {
            slot: entry
            for slot, entry in self._pending.items()
            if slot > checkpoint.slot
        }
        self._votes = {
            key: votes
            for key, votes in self._votes.items()
            if key[0] > checkpoint.slot
        }

    def reset(self) -> None:
        """Forget all volatile bookkeeping (crash recovery rebuilds it)."""
        self._pending.clear()
        self._votes.clear()
        self.stable = None
