"""Append-only write-ahead log of decided slots and view changes.

The SMR engine appends a ``decide`` record *before* acting on a decision
(write-ahead), so a replica that crashes with its disk intact can replay
the log and arrive at exactly the state it had durably committed to.
``view-change`` records are appended when a slot's consensus instance
advances views — they are compacted together with the decides and give
recovery forensics (how contested a slot was), but replay only consumes
decides: an unfinished instance restarts from view 1 and the pacemaker
re-walks, which is always safe.

Two backends share one interface:

* :class:`MemoryWAL` — deterministic in-simulation persistence.  The
  Python object plays the role of the disk: it survives a crash (the
  process's volatile state is what a crash wipes) and is erased only by
  an explicit disk-loss fault (:meth:`WriteAheadLog.wipe`).
* :class:`FileWAL` — JSON-lines on a real filesystem, for restarts that
  outlive the process.  Values round-trip through a small codec
  (:func:`encode_value` / :func:`decode_value`) because decided values
  are :class:`~repro.smr.replica.Batch` dataclasses and command tuples,
  which JSON alone cannot represent.

The log is compacted by :meth:`WriteAheadLog.truncate_upto` once a
checkpoint at that slot becomes stable — everything at or below the
stable slot is covered by the checkpoint and need never be replayed.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Tuple

__all__ = [
    "DECIDE",
    "VIEW_CHANGE",
    "FileWAL",
    "MemoryWAL",
    "WALRecord",
    "WriteAheadLog",
    "decode_value",
    "encode_value",
]

#: Record kinds.
DECIDE = "decide"
VIEW_CHANGE = "view-change"


@dataclass(frozen=True)
class WALRecord:
    """One append-only log entry.

    ``decide`` records carry the decided ``value`` of ``slot``;
    ``view-change`` records carry the ``view`` a slot's instance entered
    (``value`` is ``None``).
    """

    kind: str
    slot: int
    value: Any = None
    view: int = 0


class WriteAheadLog:
    """Interface both backends implement."""

    def append(self, record: WALRecord) -> None:
        raise NotImplementedError

    def records(self) -> Tuple[WALRecord, ...]:
        """Every retained record, in append order."""
        raise NotImplementedError

    def truncate_upto(self, slot: int) -> int:
        """Drop records with ``record.slot <= slot``; returns how many."""
        raise NotImplementedError

    def wipe(self) -> None:
        """Erase everything (the disk-loss fault)."""
        raise NotImplementedError

    # -- shared conveniences --------------------------------------------

    def append_decide(self, slot: int, value: Any) -> None:
        self.append(WALRecord(kind=DECIDE, slot=slot, value=value))

    def append_view_change(self, slot: int, view: int) -> None:
        self.append(WALRecord(kind=VIEW_CHANGE, slot=slot, view=view))

    def decides(self) -> Tuple[Tuple[int, Any], ...]:
        """Retained ``(slot, value)`` decisions, in append order."""
        return tuple(
            (r.slot, r.value) for r in self.records() if r.kind == DECIDE
        )

    def __len__(self) -> int:
        return len(self.records())


class MemoryWAL(WriteAheadLog):
    """The in-memory backend: a list standing in for a disk."""

    def __init__(self) -> None:
        self._records: List[WALRecord] = []
        #: Compaction bookkeeping (introspection / tests).
        self.appended_count = 0
        self.truncated_count = 0

    def append(self, record: WALRecord) -> None:
        self._records.append(record)
        self.appended_count += 1

    def records(self) -> Tuple[WALRecord, ...]:
        return tuple(self._records)

    def truncate_upto(self, slot: int) -> int:
        kept = [r for r in self._records if r.slot > slot]
        dropped = len(self._records) - len(kept)
        self._records = kept
        self.truncated_count += dropped
        return dropped

    def wipe(self) -> None:
        self._records.clear()


# ----------------------------------------------------------------------
# Value codec (file backend, checkpoint persistence, catchup wire checks)
# ----------------------------------------------------------------------


def encode_value(value: Any) -> Any:
    """JSON-safe encoding of a decided value or state snapshot.

    Handles the value types slots decide and state machines snapshot:
    ``Batch`` (tagged, entries flattened to lists), tuples (tagged so
    they come back as tuples — commands must hash), lists, dicts (keys
    encoded as values, so non-string keys survive the JSON round trip
    with their types intact), and JSON primitives.
    """
    from ..smr.replica import Batch  # deferred: smr imports this module

    if isinstance(value, Batch):
        return {
            "t": "batch",
            "entries": [
                [client, rid, list(command)]
                for client, rid, command in value.entries
            ],
        }
    if isinstance(value, tuple):
        return {"t": "tuple", "items": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return {"t": "list", "items": [encode_value(v) for v in value]}
    if isinstance(value, dict):
        return {
            "t": "dict",
            "items": [
                [encode_value(k), encode_value(v)] for k, v in value.items()
            ],
        }
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(f"cannot encode WAL value {value!r}")


def decode_value(payload: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    from ..smr.replica import Batch

    if isinstance(payload, dict):
        if payload.get("t") == "batch":
            return Batch(
                entries=tuple(
                    (client, rid, tuple(command))
                    for client, rid, command in payload["entries"]
                )
            )
        if payload.get("t") == "tuple":
            return tuple(decode_value(v) for v in payload["items"])
        if payload.get("t") == "list":
            return [decode_value(v) for v in payload["items"]]
        if payload.get("t") == "dict":
            return {
                decode_value(k): decode_value(v) for k, v in payload["items"]
            }
        raise ValueError(f"unknown encoded value {payload!r}")
    return payload


def _record_to_wire(record: WALRecord) -> Dict[str, Any]:
    return {
        "kind": record.kind,
        "slot": record.slot,
        "value": encode_value(record.value),
        "view": record.view,
    }


def _record_from_wire(payload: Dict[str, Any]) -> WALRecord:
    return WALRecord(
        kind=payload["kind"],
        slot=payload["slot"],
        value=decode_value(payload.get("value")),
        view=payload.get("view", 0),
    )


class FileWAL(WriteAheadLog):
    """JSON-lines file backend: one record per line, flushed per append.

    Truncation rewrites the file (the log is small between checkpoints —
    that is the point of checkpoints), which keeps the on-disk format a
    plain greppable stream.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._records: List[WALRecord] = list(self._load())

    def _load(self) -> Iterable[WALRecord]:
        if not os.path.exists(self.path):
            return
        with open(self.path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    yield _record_from_wire(json.loads(line))

    def _rewrite(self) -> None:
        with open(self.path, "w", encoding="utf-8") as fh:
            for record in self._records:
                fh.write(json.dumps(_record_to_wire(record)) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def append(self, record: WALRecord) -> None:
        self._records.append(record)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(_record_to_wire(record)) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def records(self) -> Tuple[WALRecord, ...]:
        return tuple(self._records)

    def truncate_upto(self, slot: int) -> int:
        kept = [r for r in self._records if r.slot > slot]
        dropped = len(self._records) - len(kept)
        if dropped:
            self._records = kept
            self._rewrite()
        return dropped

    def wipe(self) -> None:
        self._records.clear()
        if os.path.exists(self.path):
            os.remove(self.path)
