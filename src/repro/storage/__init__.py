"""Durability and state transfer for the SMR engine.

Three pieces, layered the way production BFT systems layer them:

* :mod:`repro.storage.wal` — an append-only write-ahead log of decided
  slots and view changes (in-memory backend for simulation, JSON-lines
  file backend for real persistence);
* :mod:`repro.storage.checkpoint` — periodic application-state
  checkpoints certified by ``2f + 1`` signed checkpoint votes, after
  which the WAL and the replica's execution/result caches are compacted;
* :mod:`repro.storage.catchup` — the peer state-transfer protocol a
  recovering or lagging replica uses to rejoin, validating checkpoint
  certificates and cross-checking ``f + 1`` matching replies against
  Byzantine responders.

:class:`~repro.storage.store.ReplicaStorage` ties a WAL and the stable
checkpoint together per replica; the engine integration lives in
:class:`repro.smr.replica.SMRReplica`.
"""

from .catchup import CatchupManager, CatchupReply, CatchupRequest
from .checkpoint import (
    Checkpoint,
    CheckpointManager,
    CheckpointVote,
    state_digest,
)
from .store import ReplicaStorage, make_storage
from .wal import DECIDE, VIEW_CHANGE, FileWAL, MemoryWAL, WALRecord, WriteAheadLog

__all__ = [
    "CatchupManager",
    "CatchupReply",
    "CatchupRequest",
    "Checkpoint",
    "CheckpointManager",
    "CheckpointVote",
    "DECIDE",
    "FileWAL",
    "MemoryWAL",
    "ReplicaStorage",
    "VIEW_CHANGE",
    "WALRecord",
    "WriteAheadLog",
    "make_storage",
    "state_digest",
]
