"""Per-replica durable storage: one WAL plus the latest stable checkpoint.

:class:`ReplicaStorage` is the only thing a replica's recovery path may
read: everything else (pending requests, consensus instances, result
caches) is volatile and lost in a crash.  The facade keeps the two
durability invariants in one place:

* a checkpoint is installed *before* the WAL is compacted below it, so
  the union of checkpoint and WAL always covers every durably recorded
  slot;
* :meth:`wipe` models the disk-loss fault — after it, recovery has
  nothing local and must transfer state from peers.

With a :class:`~repro.core.config.DurabilityConfig` whose backend is
``"file"``, the checkpoint is mirrored to ``checkpoint-<pid>.json`` next
to the WAL file and reloaded on construction, so storage survives real
process restarts, not just simulated crashes.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from ..core.config import DurabilityConfig
from .checkpoint import Checkpoint, checkpoint_from_wire, checkpoint_to_wire
from .wal import FileWAL, MemoryWAL, WriteAheadLog

__all__ = ["ReplicaStorage", "make_storage"]


class ReplicaStorage:
    """What one replica's "disk" holds."""

    def __init__(
        self,
        wal: WriteAheadLog,
        pid: int,
        directory: Optional[str] = None,
    ) -> None:
        self.wal = wal
        self.pid = pid
        self._directory = str(directory) if directory else None
        self._checkpoint: Optional[Checkpoint] = None
        if self._directory:
            self._load_checkpoint()

    # ------------------------------------------------------------------
    @property
    def checkpoint(self) -> Optional[Checkpoint]:
        return self._checkpoint

    @property
    def stable_slot(self) -> int:
        return -1 if self._checkpoint is None else self._checkpoint.slot

    @property
    def empty(self) -> bool:
        """True when recovery would find nothing local (fresh or wiped)."""
        return self._checkpoint is None and len(self.wal) == 0

    def install_checkpoint(self, checkpoint: Checkpoint) -> int:
        """Persist a newer stable checkpoint and compact the WAL below it.

        Returns the number of WAL records compacted away.
        """
        if checkpoint.slot <= self.stable_slot:
            return 0
        self._checkpoint = checkpoint
        self._persist_checkpoint()
        return self.wal.truncate_upto(checkpoint.slot)

    def wipe(self) -> None:
        """The disk-loss fault: WAL and checkpoint are gone."""
        self.wal.wipe()
        self._checkpoint = None
        path = self._checkpoint_path()
        if path and os.path.exists(path):
            os.remove(path)

    # ------------------------------------------------------------------
    def _checkpoint_path(self) -> Optional[str]:
        if self._directory is None:
            return None
        return os.path.join(self._directory, f"checkpoint-{self.pid}.json")

    def _persist_checkpoint(self) -> None:
        path = self._checkpoint_path()
        if path is None or self._checkpoint is None:
            return
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(checkpoint_to_wire(self._checkpoint), fh)
            fh.flush()
            os.fsync(fh.fileno())

    def _load_checkpoint(self) -> None:
        path = self._checkpoint_path()
        if path and os.path.exists(path):
            with open(path, encoding="utf-8") as fh:
                self._checkpoint = checkpoint_from_wire(json.load(fh))


def make_storage(config: DurabilityConfig, pid: int) -> ReplicaStorage:
    """Build the storage a :class:`DurabilityConfig` describes."""
    if config.wal_backend == "file":
        assert config.wal_dir is not None  # enforced by the config
        os.makedirs(config.wal_dir, exist_ok=True)
        wal: WriteAheadLog = FileWAL(
            os.path.join(config.wal_dir, f"wal-{pid}.jsonl")
        )
        return ReplicaStorage(wal, pid, directory=config.wal_dir)
    return ReplicaStorage(MemoryWAL(), pid)
