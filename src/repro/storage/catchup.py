"""Peer state transfer: how a recovering or lagging replica rejoins.

A replica that comes back with a stale (or wiped) disk broadcasts a
:class:`CatchupRequest` for everything from its first missing slot.
Peers answer with a :class:`CatchupReply`: their stable checkpoint (when
it covers slots the requester is missing) plus their write-ahead-log
suffix of decided slots, and the highest slot they have decided.

Byzantine responders are tolerated two ways, mirroring the trust
structure of the consensus core:

* a **checkpoint** is adopted from a *single* reply only when its
  ``2f + 1``-signed certificate validates against the key registry and
  the shipped state re-hashes to the certified digest; without a
  registry (the unsigned PBFT baseline) a checkpoint needs ``f + 1``
  repliers agreeing on ``(slot, digest)``;
* **log entries** are unsigned claims, so each reply's ``(slot, value)``
  pairs count as one vote in the same ``f + 1``-matching tally the
  engine already uses for live ``SlotDecided`` gossip — at most ``f``
  responders lie, so ``f + 1`` matching replies always include a correct
  one.

The requester's *catchup target* — the point at which it declares itself
caught up and resumes proposing — is the ``(f + 1)``-th highest
``high_slot`` among the replies: at least one of the top ``f + 1``
reports comes from a correct replica, so the target is reachable, and
``f`` inflated Byzantine reports cannot push it beyond every correct
replica's progress.

:class:`CatchupManager` holds the requester-side bookkeeping; the
replica (:mod:`repro.smr.replica`) drives the protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Set, Tuple

from .checkpoint import Checkpoint

__all__ = ["CatchupManager", "CatchupReply", "CatchupRequest"]


@dataclass(frozen=True)
class CatchupRequest:
    """Ask peers for everything from ``low_slot`` on."""

    low_slot: int


@dataclass(frozen=True)
class CatchupReply:
    """One peer's transfer: checkpoint (optional) + decided suffix.

    ``entries`` are ``(slot, value)`` pairs at or above ``low_slot``
    (and above the shipped checkpoint, when there is one);
    ``high_slot`` is the responder's highest decided slot, ``-1`` if
    none.
    """

    low_slot: int
    high_slot: int
    checkpoint: Optional[Checkpoint]
    entries: Tuple[Tuple[int, Any], ...]


class CatchupManager:
    """Requester-side state of one (possibly retried) catchup round."""

    def __init__(self) -> None:
        self._active = False
        self._replies: Dict[int, CatchupReply] = {}
        self.low_slot = 0
        self.rounds = 0
        self.completed_at: Optional[float] = None
        #: Bytes of reply payloads credited to catchup (introspection).
        self.replies_received = 0

    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        return self._active

    def begin(self, low_slot: int) -> None:
        """Start (or retry) a catchup round asking from ``low_slot``."""
        self._active = True
        self.low_slot = low_slot
        self.rounds += 1

    def record_reply(self, sender: int, reply: CatchupReply) -> None:
        """Keep the latest reply per sender (retries overwrite)."""
        self._replies[sender] = reply
        self.replies_received += 1

    def checkpoint_claims(self, slot: int, digest: str) -> Set[int]:
        """Senders whose replies carried a checkpoint for ``(slot, digest)``."""
        return {
            sender
            for sender, reply in self._replies.items()
            if reply.checkpoint is not None
            and reply.checkpoint.slot == slot
            and reply.checkpoint.digest == digest
        }

    def target(self, f: int) -> Optional[int]:
        """The ``(f + 1)``-th highest reported ``high_slot``.

        ``None`` until ``f + 1`` replies arrived — fewer replies might
        all be Byzantine, so no target can be trusted yet.
        """
        highs = sorted(
            (reply.high_slot for reply in self._replies.values()), reverse=True
        )
        if len(highs) <= f:
            return None
        return highs[f]

    def finish(self, now: float) -> None:
        self._active = False
        self.completed_at = now
        self._replies.clear()
