"""PBFT-style baseline: optimal resilience (n = 3f + 1), three-step latency.

This is the classic Castro-Liskov common case, single-shot: the leader
broadcasts a pre-prepare, replicas echo a prepare, a ``2f + 1`` prepare
quorum triggers a commit broadcast, and a ``2f + 1`` commit quorum
decides — three message delays after the proposal, versus two for the
paper's protocol.  It exists here as the latency comparison point of the
paper's introduction (experiments E1 and E6).

Simplifications relative to deployed PBFT (documented, deliberate):
single-shot (no sequence numbers, checkpoints or garbage collection), and
the view change carries the highest *prepared* tuple without transferable
proofs, so Byzantine safety of the view change itself is not this
module's claim — benchmarks exercise the failure-free and crash-failure
paths.  The *latency* and *quorum* structure, which is what the paper
compares against, is faithful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Set, Tuple

from ..core.protocol import DecidingProcess
from ..sync.synchronizer import Pacemaker, WishMessage

__all__ = [
    "PBFTConfig",
    "PBFTProcess",
    "PrePrepare",
    "Prepare",
    "PBFTCommit",
    "PBFTViewChange",
]


@dataclass(frozen=True)
class PBFTConfig:
    """PBFT deployment parameters (n >= 3f + 1)."""

    n: int
    f: int

    def __post_init__(self) -> None:
        if self.f < 1:
            raise ValueError("f must be >= 1")
        if self.n < 3 * self.f + 1:
            raise ValueError(
                f"PBFT needs n >= 3f + 1, got n={self.n}, f={self.f}"
            )

    def leader_of(self, view: int) -> int:
        return (view - 1) % self.n

    @property
    def process_ids(self) -> tuple:
        return tuple(range(self.n))

    @property
    def prepare_quorum(self) -> int:
        return 2 * self.f + 1

    @property
    def commit_quorum(self) -> int:
        return 2 * self.f + 1

    @property
    def view_change_quorum(self) -> int:
        return 2 * self.f + 1


@dataclass(frozen=True)
class PrePrepare:
    value: Any
    view: int


@dataclass(frozen=True)
class Prepare:
    value: Any
    view: int


@dataclass(frozen=True)
class PBFTCommit:
    value: Any
    view: int


@dataclass(frozen=True)
class PBFTViewChange:
    """Sent to the new leader: the sender's highest prepared tuple."""

    view: int
    prepared_value: Any
    prepared_view: int  # 0 when nothing prepared


class PBFTProcess(DecidingProcess):
    """A single-shot PBFT replica."""

    def __init__(
        self,
        pid: int,
        config: PBFTConfig,
        input_value: Any,
        pacemaker_enabled: bool = True,
        base_timeout: float = 12.0,
    ) -> None:
        super().__init__(pid, input_value)
        self.config = config
        self.view = 1
        #: Highest (value, view) this replica prepared.
        self.prepared: Optional[Tuple[Any, int]] = None
        self._preprepared_views: Set[int] = set()
        self._prepares: Dict[Tuple[Any, int], Set[int]] = {}
        self._commit_sent: Set[Tuple[Any, int]] = set()
        self._commits: Dict[Tuple[Any, int], Set[int]] = {}
        self._view_changes: Dict[int, Dict[int, PBFTViewChange]] = {}
        self._proposed_views: Set[int] = set()
        self.pacemaker = Pacemaker(
            pid=pid,
            n=config.n,
            f=config.f,
            current_view=lambda: self.view,
            enter_view=self.enter_view,
            broadcast=self.broadcast,
            set_timer=lambda name, delay, cb: self.ctx.set_timer(name, delay, cb),
            cancel_timer=lambda name: self.ctx.cancel_timer(name),
            base_timeout=base_timeout,
            enabled=pacemaker_enabled,
        )

    # ------------------------------------------------------------------
    def on_start(self) -> None:
        self.pacemaker.start()
        if self.config.leader_of(1) == self.pid:
            self._proposed_views.add(1)
            self.broadcast(PrePrepare(value=self.input_value, view=1))

    def on_message(self, sender: int, payload: Any) -> None:
        if isinstance(payload, WishMessage):
            self.pacemaker.on_wish(sender, payload)
        elif isinstance(payload, PrePrepare):
            self._handle_preprepare(sender, payload)
        elif isinstance(payload, Prepare):
            self._handle_prepare(sender, payload)
        elif isinstance(payload, PBFTCommit):
            self._handle_commit(sender, payload)
        elif isinstance(payload, PBFTViewChange):
            self._handle_view_change(sender, payload)

    # ------------------------------------------------------------------
    def _handle_preprepare(self, sender: int, message: PrePrepare) -> None:
        if message.view != self.view:
            return
        if sender != self.config.leader_of(message.view):
            return
        if message.view in self._preprepared_views:
            return
        self._preprepared_views.add(message.view)
        self.broadcast(Prepare(value=message.value, view=message.view))

    def _handle_prepare(self, sender: int, message: Prepare) -> None:
        if message.view < self.view:
            # Stale view: counting these would let a view-1 prepare
            # quorum complete *after* the view change at replicas that
            # never prepared in view 1 — their commits could then decide
            # the old value while view 2 decides a new one (found by the
            # fault-schedule fuzzer; delay alone triggers it).  Dropping
            # them restores the invariant that an old-view decision
            # implies a commit quorum whose senders all prepared that
            # value, which the view change then carries forward.
            return
        key = (message.value, message.view)
        senders = self._prepares.setdefault(key, set())
        senders.add(sender)
        if (
            len(senders) >= self.config.prepare_quorum
            and key not in self._commit_sent
        ):
            self._commit_sent.add(key)
            if self.prepared is None or message.view > self.prepared[1]:
                self.prepared = (message.value, message.view)
            self.broadcast(PBFTCommit(value=message.value, view=message.view))

    def _handle_commit(self, sender: int, message: PBFTCommit) -> None:
        if message.view < self.view:
            return  # stale view — same argument as in _handle_prepare
        key = (message.value, message.view)
        senders = self._commits.setdefault(key, set())
        senders.add(sender)
        if len(senders) >= self.config.commit_quorum:
            self.decide(message.value)

    # ------------------------------------------------------------------
    def enter_view(self, view: int) -> None:
        if view <= self.view:
            return
        self.view = view
        prepared_value, prepared_view = (
            self.prepared if self.prepared is not None else (None, 0)
        )
        message = PBFTViewChange(
            view=view, prepared_value=prepared_value, prepared_view=prepared_view
        )
        leader = self.config.leader_of(view)
        if leader == self.pid:
            self._record_view_change(self.pid, message)
        else:
            self.send(leader, message)

    def _handle_view_change(self, sender: int, message: PBFTViewChange) -> None:
        if self.config.leader_of(message.view) != self.pid:
            return
        if message.view < self.view:
            return
        self._record_view_change(sender, message)

    def _record_view_change(self, sender: int, message: PBFTViewChange) -> None:
        per_view = self._view_changes.setdefault(message.view, {})
        per_view[sender] = message
        if (
            message.view == self.view
            and message.view not in self._proposed_views
            and len(per_view) >= self.config.view_change_quorum
        ):
            self._proposed_views.add(message.view)
            best = max(per_view.values(), key=lambda vc: vc.prepared_view)
            value = (
                best.prepared_value if best.prepared_view > 0 else self.input_value
            )
            self.broadcast(PrePrepare(value=value, view=message.view))
