"""Kursawe-style optimistic consensus (related work [18]).

The first two-step Byzantine protocol (Kursawe 2002) runs on the optimal
``n = 3f + 1`` processes but its fast path succeeds only when *all* n
processes behave and the network is timely: a process decides fast only
on a **unanimous** ack quorum (n out of n).  Any single fault knocks it
off the fast path onto a slower fallback — in the original a randomized
protocol, here a PBFT-style two-phase finish, which is the flattering
choice (deterministic, 2 extra delays).

This baseline exists to quantify the paper's improvement over the
*other* point in the design space (Section 5): our generalized protocol
stays two-step under up to ``t`` faults, Kursawe-style only under zero.

Simplifications: single-shot; the fallback view change carries the
highest prepared tuple without transferable proofs (benchmarks exercise
failure-free and crash paths, as for the other baselines).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Set, Tuple

from ..core.protocol import DecidingProcess
from ..sync.synchronizer import Pacemaker, WishMessage

__all__ = [
    "OptimisticConfig",
    "OptimisticProcess",
    "OptPropose",
    "OptAck",
    "OptPrepare",
    "OptCommit",
    "OptViewChange",
]


@dataclass(frozen=True)
class OptimisticConfig:
    """Kursawe-style parameters: optimal resilience, unanimous fast path."""

    n: int
    f: int
    #: Simulated time after which a process abandons the fast path.
    fallback_timeout: float = 4.0

    def __post_init__(self) -> None:
        if self.f < 1:
            raise ValueError("f must be >= 1")
        if self.n < 3 * self.f + 1:
            raise ValueError(
                f"optimistic consensus needs n >= 3f + 1, got n={self.n}"
            )

    def leader_of(self, view: int) -> int:
        return (view - 1) % self.n

    @property
    def process_ids(self) -> tuple:
        return tuple(range(self.n))

    @property
    def fast_quorum(self) -> int:
        """The optimistic path needs *every* process: n acks."""
        return self.n

    @property
    def quorum(self) -> int:
        """Fallback (PBFT-style) quorum: 2f + 1."""
        return 2 * self.f + 1


@dataclass(frozen=True)
class OptPropose:
    value: Any
    view: int


@dataclass(frozen=True)
class OptAck:
    value: Any
    view: int


@dataclass(frozen=True)
class OptPrepare:
    value: Any
    view: int


@dataclass(frozen=True)
class OptCommit:
    value: Any
    view: int


@dataclass(frozen=True)
class OptViewChange:
    view: int
    prepared_value: Any
    prepared_view: int


class OptimisticProcess(DecidingProcess):
    """Single-shot Kursawe-style optimistic Byzantine consensus."""

    def __init__(
        self,
        pid: int,
        config: OptimisticConfig,
        input_value: Any,
        pacemaker_enabled: bool = True,
        base_timeout: float = 12.0,
    ) -> None:
        super().__init__(pid, input_value)
        self.config = config
        self.view = 1
        self.accepted: Optional[Tuple[Any, int]] = None
        self.prepared: Optional[Tuple[Any, int]] = None
        self.fell_back = False
        self._acked_views: Set[int] = set()
        self._acks: Dict[Tuple[Any, int], Set[int]] = {}
        self._prepares: Dict[Tuple[Any, int], Set[int]] = {}
        self._commit_sent: Set[Tuple[Any, int]] = set()
        self._commits: Dict[Tuple[Any, int], Set[int]] = {}
        self._view_changes: Dict[int, Dict[int, OptViewChange]] = {}
        self._proposed_views: Set[int] = set()
        self.pacemaker = Pacemaker(
            pid=pid,
            n=config.n,
            f=config.f,
            current_view=lambda: self.view,
            enter_view=self.enter_view,
            broadcast=self.broadcast,
            set_timer=lambda name, delay, cb: self.ctx.set_timer(name, delay, cb),
            cancel_timer=lambda name: self.ctx.cancel_timer(name),
            base_timeout=base_timeout,
            enabled=pacemaker_enabled,
        )

    # ------------------------------------------------------------------
    def on_start(self) -> None:
        self.pacemaker.start()
        self.ctx.set_timer(
            "opt-fallback", self.config.fallback_timeout, self._fall_back
        )
        if self.config.leader_of(1) == self.pid:
            self._proposed_views.add(1)
            self.broadcast(OptPropose(value=self.input_value, view=1))

    def on_message(self, sender: int, payload: Any) -> None:
        if isinstance(payload, WishMessage):
            self.pacemaker.on_wish(sender, payload)
        elif isinstance(payload, OptPropose):
            self._handle_propose(sender, payload)
        elif isinstance(payload, OptAck):
            self._handle_ack(sender, payload)
        elif isinstance(payload, OptPrepare):
            self._handle_prepare(sender, payload)
        elif isinstance(payload, OptCommit):
            self._handle_commit(sender, payload)
        elif isinstance(payload, OptViewChange):
            self._handle_view_change(sender, payload)

    # ------------------------------------------------------------------
    # Optimistic path: unanimous acks
    # ------------------------------------------------------------------

    def _handle_propose(self, sender: int, message: OptPropose) -> None:
        if message.view != self.view:
            return
        if sender != self.config.leader_of(message.view):
            return
        if message.view in self._acked_views:
            return
        self._acked_views.add(message.view)
        self.accepted = (message.value, message.view)
        self.broadcast(OptAck(value=message.value, view=message.view))
        if self.fell_back:
            # Off the optimistic path: immediately vote to prepare the
            # proposal so the two-phase finish can complete.
            self.broadcast(OptPrepare(value=message.value, view=message.view))

    def _handle_ack(self, sender: int, message: OptAck) -> None:
        key = (message.value, message.view)
        senders = self._acks.setdefault(key, set())
        senders.add(sender)
        if not self.fell_back and len(senders) >= self.config.fast_quorum:
            # Unanimity: only possible when all n processes are correct
            # and timely (the Kursawe condition).
            self.decide(message.value)

    # ------------------------------------------------------------------
    # Fallback path: PBFT-style prepare/commit on the accepted value
    # ------------------------------------------------------------------

    def _fall_back(self) -> None:
        if self.decided or self.fell_back:
            return
        self.fell_back = True
        if self.accepted is not None:
            value, view = self.accepted
            if view == self.view:
                self.broadcast(OptPrepare(value=value, view=view))

    def _handle_prepare(self, sender: int, message: OptPrepare) -> None:
        key = (message.value, message.view)
        senders = self._prepares.setdefault(key, set())
        senders.add(sender)
        if (
            len(senders) >= self.config.quorum
            and key not in self._commit_sent
        ):
            self._commit_sent.add(key)
            if self.prepared is None or message.view > self.prepared[1]:
                self.prepared = (message.value, message.view)
            self.broadcast(OptCommit(value=message.value, view=message.view))

    def _handle_commit(self, sender: int, message: OptCommit) -> None:
        key = (message.value, message.view)
        senders = self._commits.setdefault(key, set())
        senders.add(sender)
        if len(senders) >= self.config.quorum:
            self.decide(message.value)

    # ------------------------------------------------------------------
    # View change (for a faulty leader)
    # ------------------------------------------------------------------

    def enter_view(self, view: int) -> None:
        if view <= self.view:
            return
        self.view = view
        self.fell_back = True  # no unanimity after a view change
        prepared_value, prepared_view = (
            self.prepared if self.prepared is not None else (None, 0)
        )
        message = OptViewChange(
            view=view, prepared_value=prepared_value, prepared_view=prepared_view
        )
        leader = self.config.leader_of(view)
        if leader == self.pid:
            self._record_view_change(self.pid, message)
        else:
            self.send(leader, message)

    def _handle_view_change(self, sender: int, message: OptViewChange) -> None:
        if self.config.leader_of(message.view) != self.pid:
            return
        if message.view < self.view:
            return
        self._record_view_change(sender, message)

    def _record_view_change(self, sender: int, message: OptViewChange) -> None:
        per_view = self._view_changes.setdefault(message.view, {})
        per_view[sender] = message
        if (
            message.view == self.view
            and message.view not in self._proposed_views
            and len(per_view) >= self.config.quorum
        ):
            self._proposed_views.add(message.view)
            best = max(per_view.values(), key=lambda vc: vc.prepared_view)
            value = (
                best.prepared_value if best.prepared_view > 0 else self.input_value
            )
            self.broadcast(OptPropose(value=value, view=message.view))
