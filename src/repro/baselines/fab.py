"""FaB Paxos baseline (Martin & Alvisi 2006): fast, but n = 3f + 2t + 1.

The protocol the paper improves on.  Its common case is identical in
shape to ours — the leader proposes, acceptors broadcast an acceptance,
``n - t`` matching acceptances decide in two message delays — but it
requires **two more processes** for the same (f, t): the recovery
protocol cannot exclude a proven equivocator (in FaB's model proposers
are separate from acceptors, Section 4.4 of the paper), so its vote
threshold is ``f + t + 1`` out of ``n - f`` reports, which only pins a
decided value when ``n >= 3f + 2t + 1``.

Simplifications (documented, deliberate): single-shot, and recovery
reports are not accompanied by transferable proofs; benchmarks exercise
the failure-free and crash-failure paths.  The quorum arithmetic — the
thing experiment E1 compares — is exactly FaB's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Set, Tuple

from ..core.protocol import DecidingProcess
from ..sync.synchronizer import Pacemaker, WishMessage

__all__ = ["FaBConfig", "FaBProcess", "FabPropose", "FabAccept", "FabReport"]


@dataclass(frozen=True)
class FaBConfig:
    """FaB Paxos parameters: tolerate f, fast when faults <= t."""

    n: int
    f: int
    t: int = -1  # defaults to f (the 5f + 1 configuration)
    allow_sub_resilient: bool = False

    def __post_init__(self) -> None:
        if self.t == -1:
            object.__setattr__(self, "t", self.f)
        if self.f < 1 or not (1 <= self.t <= self.f):
            raise ValueError(f"need f >= 1 and 1 <= t <= f (f={self.f}, t={self.t})")
        required = 3 * self.f + 2 * self.t + 1
        if self.n < required and not self.allow_sub_resilient:
            raise ValueError(
                f"FaB needs n >= 3f + 2t + 1 = {required}, got n={self.n}"
            )

    def leader_of(self, view: int) -> int:
        return (view - 1) % self.n

    @property
    def process_ids(self) -> tuple:
        return tuple(range(self.n))

    @property
    def fast_quorum(self) -> int:
        """Acceptances needed to decide: ``n - t``."""
        return self.n - self.t

    @property
    def recovery_quorum(self) -> int:
        """Reports the new leader collects: ``n - f``."""
        return self.n - self.f

    @property
    def select_threshold(self) -> int:
        """Reports of one value that force re-proposing it: ``f + t + 1``.

        If a value was decided (``n - t`` acceptances), any ``n - f``
        report set contains at least ``(n - t) + (n - f) - n - f =
        n - 2f - t = f + t + 1`` honest reports of it (at n = 3f+2t+1),
        and no conflicting value can reach the same count.
        """
        return self.f + self.t + 1


@dataclass(frozen=True)
class FabPropose:
    value: Any
    view: int


@dataclass(frozen=True)
class FabAccept:
    value: Any
    view: int


@dataclass(frozen=True)
class FabReport:
    """Recovery report: the sender's accepted tuple."""

    view: int
    accepted_value: Any
    accepted_view: int  # 0 when nothing accepted


class FaBProcess(DecidingProcess):
    """A single-shot FaB Paxos process (proposer+acceptor+learner merged
    for deployment symmetry; the algorithm does not exploit colocation)."""

    def __init__(
        self,
        pid: int,
        config: FaBConfig,
        input_value: Any,
        pacemaker_enabled: bool = True,
        base_timeout: float = 12.0,
    ) -> None:
        super().__init__(pid, input_value)
        self.config = config
        self.view = 1
        self.accepted: Optional[Tuple[Any, int]] = None
        self._accepted_views: Set[int] = set()
        self._accepts: Dict[Tuple[Any, int], Set[int]] = {}
        self._reports: Dict[int, Dict[int, FabReport]] = {}
        self._proposed_views: Set[int] = set()
        self.pacemaker = Pacemaker(
            pid=pid,
            n=config.n,
            f=config.f,
            current_view=lambda: self.view,
            enter_view=self.enter_view,
            broadcast=self.broadcast,
            set_timer=lambda name, delay, cb: self.ctx.set_timer(name, delay, cb),
            cancel_timer=lambda name: self.ctx.cancel_timer(name),
            base_timeout=base_timeout,
            enabled=pacemaker_enabled,
        )

    # ------------------------------------------------------------------
    def on_start(self) -> None:
        self.pacemaker.start()
        if self.config.leader_of(1) == self.pid:
            self._proposed_views.add(1)
            self.broadcast(FabPropose(value=self.input_value, view=1))

    def on_message(self, sender: int, payload: Any) -> None:
        if isinstance(payload, WishMessage):
            self.pacemaker.on_wish(sender, payload)
        elif isinstance(payload, FabPropose):
            self._handle_propose(sender, payload)
        elif isinstance(payload, FabAccept):
            self._handle_accept(sender, payload)
        elif isinstance(payload, FabReport):
            self._handle_report(sender, payload)

    # ------------------------------------------------------------------
    def _handle_propose(self, sender: int, message: FabPropose) -> None:
        if message.view != self.view:
            return
        if sender != self.config.leader_of(message.view):
            return
        if message.view in self._accepted_views:
            return
        self._accepted_views.add(message.view)
        if self.accepted is None or message.view > self.accepted[1]:
            self.accepted = (message.value, message.view)
        self.broadcast(FabAccept(value=message.value, view=message.view))

    def _handle_accept(self, sender: int, message: FabAccept) -> None:
        key = (message.value, message.view)
        senders = self._accepts.setdefault(key, set())
        senders.add(sender)
        if len(senders) >= self.config.fast_quorum:
            self.decide(message.value)

    # ------------------------------------------------------------------
    def enter_view(self, view: int) -> None:
        if view <= self.view:
            return
        self.view = view
        value, accepted_view = (
            self.accepted if self.accepted is not None else (None, 0)
        )
        report = FabReport(
            view=view, accepted_value=value, accepted_view=accepted_view
        )
        leader = self.config.leader_of(view)
        if leader == self.pid:
            self._record_report(self.pid, report)
        else:
            self.send(leader, report)

    def _handle_report(self, sender: int, message: FabReport) -> None:
        if self.config.leader_of(message.view) != self.pid:
            return
        if message.view < self.view:
            return
        self._record_report(sender, message)

    def _record_report(self, sender: int, report: FabReport) -> None:
        per_view = self._reports.setdefault(report.view, {})
        per_view[sender] = report
        if (
            report.view != self.view
            or report.view in self._proposed_views
            or len(per_view) < self.config.recovery_quorum
        ):
            return
        self._proposed_views.add(report.view)
        counts: Dict[Any, int] = {}
        for rep in per_view.values():
            if rep.accepted_view > 0:
                counts[rep.accepted_value] = counts.get(rep.accepted_value, 0) + 1
        forced = [
            value
            for value, count in counts.items()
            if count >= self.config.select_threshold
        ]
        value = forced[0] if forced else self.input_value
        self.broadcast(FabPropose(value=value, view=report.view))
