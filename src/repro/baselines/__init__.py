"""Baseline consensus protocols the paper compares against.

* :mod:`~repro.baselines.pbft` — PBFT: n = 3f + 1, three-step;
* :mod:`~repro.baselines.fab` — FaB Paxos: n = 3f + 2t + 1, two-step;
* :mod:`~repro.baselines.paxos` — crash Paxos: n = 2f + 1, two-step;
* :mod:`~repro.baselines.optimistic` — Kursawe-style: n = 3f + 1,
  two-step only when *all* processes are correct and timely.
"""

from .fab import FaBConfig, FaBProcess
from .optimistic import OptimisticConfig, OptimisticProcess
from .paxos import PaxosConfig, PaxosProcess
from .pbft import PBFTConfig, PBFTProcess

__all__ = [
    "FaBConfig",
    "FaBProcess",
    "OptimisticConfig",
    "OptimisticProcess",
    "PBFTConfig",
    "PBFTProcess",
    "PaxosConfig",
    "PaxosProcess",
]
