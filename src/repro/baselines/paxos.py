"""Crash-fault Paxos baseline: n = 2f + 1, two-step common case.

The motivating gap of the paper's introduction: crash-fault consensus
(Paxos, Viewstamped Replication) decides two message delays after the
leader's proposal, while classic Byzantine protocols (PBFT) need three.
This single-shot multi-ballot Paxos provides the crash-side number for
experiments E1 and E6.

The first ballot is implicitly prepared (the standard "leader of ballot 1
skips phase 1" optimization), so the common case is: ``Accept`` broadcast
-> ``Accepted`` broadcast -> decide on a majority — two delays.  Later
ballots run full phase 1 (prepare/promise) then phase 2.  Faults are
crashes only; Byzantine behaviour is out of model here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Set, Tuple

from ..core.protocol import DecidingProcess
from ..core.quorums import one_correct
from ..sync.synchronizer import Pacemaker, WishMessage

__all__ = [
    "PaxosConfig",
    "PaxosProcess",
    "PaxosPrepare",
    "PaxosPromise",
    "PaxosAccept",
    "PaxosAccepted",
]


@dataclass(frozen=True)
class PaxosConfig:
    """Crash Paxos parameters (n >= 2f + 1)."""

    n: int
    f: int

    def __post_init__(self) -> None:
        if self.f < 0:
            raise ValueError("f must be >= 0")
        if self.n < 2 * self.f + 1:
            raise ValueError(f"Paxos needs n >= 2f + 1, got n={self.n}, f={self.f}")

    def leader_of(self, ballot: int) -> int:
        return (ballot - 1) % self.n

    @property
    def process_ids(self) -> tuple:
        return tuple(range(self.n))

    @property
    def majority(self) -> int:
        return self.n // 2 + 1


@dataclass(frozen=True)
class PaxosPrepare:
    ballot: int


@dataclass(frozen=True)
class PaxosPromise:
    ballot: int
    accepted_ballot: int  # 0 when nothing accepted
    accepted_value: Any


@dataclass(frozen=True)
class PaxosAccept:
    ballot: int
    value: Any


@dataclass(frozen=True)
class PaxosAccepted:
    ballot: int
    value: Any


class PaxosProcess(DecidingProcess):
    """A single-shot Paxos process (proposer+acceptor+learner merged)."""

    def __init__(
        self,
        pid: int,
        config: PaxosConfig,
        input_value: Any,
        pacemaker_enabled: bool = True,
        base_timeout: float = 12.0,
    ) -> None:
        super().__init__(pid, input_value)
        self.config = config
        self.ballot = 1  # the "view" of the pacemaker
        self.promised_ballot = 0
        self.accepted_ballot = 0
        self.accepted_value: Any = None
        self._promises: Dict[int, Dict[int, PaxosPromise]] = {}
        self._accepteds: Dict[Tuple[int, Any], Set[int]] = {}
        self._phase2_started: Set[int] = set()
        # Crash model: a single timed-out process may push a new ballot.
        self.pacemaker = Pacemaker(
            pid=pid,
            n=config.n,
            f=config.f,
            current_view=lambda: self.ballot,
            enter_view=self.enter_ballot,
            broadcast=self.broadcast,
            set_timer=lambda name, delay, cb: self.ctx.set_timer(name, delay, cb),
            cancel_timer=lambda name: self.ctx.cancel_timer(name),
            base_timeout=base_timeout,
            enabled=pacemaker_enabled,
            entry_quorum=one_correct(self.config.f) if self.config.f > 0 else 1,
            amplify_quorum=1,
        )

    # ------------------------------------------------------------------
    def on_start(self) -> None:
        self.pacemaker.start()
        if self.config.leader_of(1) == self.pid:
            # Ballot 1 is implicitly prepared: go straight to phase 2.
            self._phase2_started.add(1)
            self.broadcast(PaxosAccept(ballot=1, value=self.input_value))

    def on_message(self, sender: int, payload: Any) -> None:
        if isinstance(payload, WishMessage):
            self.pacemaker.on_wish(sender, payload)
        elif isinstance(payload, PaxosPrepare):
            self._handle_prepare(sender, payload)
        elif isinstance(payload, PaxosPromise):
            self._handle_promise(sender, payload)
        elif isinstance(payload, PaxosAccept):
            self._handle_accept(sender, payload)
        elif isinstance(payload, PaxosAccepted):
            self._handle_accepted(sender, payload)

    # ------------------------------------------------------------------
    # Phase 1
    # ------------------------------------------------------------------

    def enter_ballot(self, ballot: int) -> None:
        if ballot <= self.ballot:
            return
        self.ballot = ballot
        if self.config.leader_of(ballot) == self.pid:
            self.broadcast(PaxosPrepare(ballot=ballot))

    def _handle_prepare(self, sender: int, message: PaxosPrepare) -> None:
        if message.ballot <= self.promised_ballot:
            return
        self.promised_ballot = message.ballot
        self.ballot = max(self.ballot, message.ballot)
        self.send(
            sender,
            PaxosPromise(
                ballot=message.ballot,
                accepted_ballot=self.accepted_ballot,
                accepted_value=self.accepted_value,
            ),
        )

    def _handle_promise(self, sender: int, message: PaxosPromise) -> None:
        per_ballot = self._promises.setdefault(message.ballot, {})
        per_ballot[sender] = message
        if (
            message.ballot in self._phase2_started
            or len(per_ballot) < self.config.majority
        ):
            return
        self._phase2_started.add(message.ballot)
        best = max(per_ballot.values(), key=lambda p: p.accepted_ballot)
        value = (
            best.accepted_value if best.accepted_ballot > 0 else self.input_value
        )
        self.broadcast(PaxosAccept(ballot=message.ballot, value=value))

    # ------------------------------------------------------------------
    # Phase 2
    # ------------------------------------------------------------------

    def _handle_accept(self, sender: int, message: PaxosAccept) -> None:
        if message.ballot < self.promised_ballot:
            return
        if sender != self.config.leader_of(message.ballot):
            return
        self.promised_ballot = message.ballot
        self.accepted_ballot = message.ballot
        self.accepted_value = message.value
        self.broadcast(PaxosAccepted(ballot=message.ballot, value=message.value))

    def _handle_accepted(self, sender: int, message: PaxosAccepted) -> None:
        key = (message.ballot, message.value)
        senders = self._accepteds.setdefault(key, set())
        senders.add(sender)
        if len(senders) >= self.config.majority:
            self.decide(message.value)
