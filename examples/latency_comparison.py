#!/usr/bin/env python3
"""The latency/resilience landscape of consensus protocols (Section 1).

Reproduces the paper's motivating comparison as two tables:

1. minimum process counts per (f, t) — ours is always exactly two
   processes cheaper than FaB Paxos, and for t = 1 it matches the
   optimal 3f + 1 of any partially synchronous Byzantine consensus;
2. measured common-case latency — in lock-step message delays and in
   simulated time under randomized link delays.
"""

from repro.analysis import (
    PROTOCOLS,
    build_protocol,
    format_table,
    repeat_latency,
    run_common_case,
)
from repro.sim import RandomDelay


def resilience_table() -> None:
    rows = []
    for f, t in [(1, 1), (2, 1), (2, 2), (3, 1), (3, 3), (5, 5)]:
        rows.append(
            [f, t]
            + [PROTOCOLS[key].min_n(f, t) for key in ("fbft", "fab", "pbft", "paxos")]
        )
    print("Minimum number of processes (fast Byzantine / classic / crash):\n")
    print(
        format_table(
            ["f", "t", "FBFT (ours)", "FaB Paxos", "PBFT", "Paxos"], rows
        )
    )


def latency_table(runs: int = 25) -> None:
    rows = []
    for key in ("fbft", "fab", "pbft", "paxos"):
        spec = PROTOCOLS[key]
        delays = run_common_case(build_protocol(key, f=1)).delays
        stats = repeat_latency(
            lambda key=key: build_protocol(key, f=1),
            runs=runs,
            delay_model_factory=lambda run: RandomDelay(0.5, 1.5, seed=run),
        )
        rows.append(
            [spec.name, spec.min_n(1, 1), delays,
             round(stats.mean, 3), round(stats.p95, 3)]
        )
    print(
        f"\nCommon-case latency at f = 1 ({runs} runs, link delay ~ U[0.5, 1.5]):\n"
    )
    print(format_table(["protocol", "n", "delays", "mean", "p95"], rows))


def main() -> None:
    resilience_table()
    latency_table()
    print(
        "\nReading: our protocol decides as fast as crash Paxos and FaB "
        "Paxos (2 delays)\nwhile PBFT needs 3 — and it does so with two "
        "fewer processes than FaB."
    )


if __name__ == "__main__":
    main()
