#!/usr/bin/env python3
"""Observability tour: metrics, causal traces, and demoting a slow leader.

Three stops:

1. run a pinned scenario with a metrics registry attached and read the
   per-replica histograms out of the snapshot (the execution — and its
   trace digest — is identical to an unobserved run);
2. trace the same run causally and print a slice of the timeline
   (send -> delivery -> handler span -> decide, parents threaded through
   the message envelopes);
3. throttle a leader: honest protocol, every message 8 time units late —
   no timeout ever fires, so only the leader-performance monitor notices.
   Compare the latency tail with the monitor on vs off.

Run me:

    PYTHONPATH=src python examples/monitor_tour.py
"""

from repro.analysis.metrics import run_monitor_tail
from repro.obs import CausalTracer, MetricsRegistry
from repro.scenarios import get_scenario
from repro.scenarios.runner import run_scenario


def stop_one_metrics() -> None:
    print("=" * 72)
    print("1. metrics: the smr-open-loop scenario, instrumented")
    print("=" * 72)
    spec = get_scenario("smr-open-loop")
    plain = run_scenario(spec)
    registry = MetricsRegistry()
    observed = run_scenario(spec, metrics=registry)
    assert observed.trace_digest == plain.trace_digest
    print("trace digest unchanged by instrumentation:",
          observed.trace_digest[:16])
    snapshot = registry.to_dict()
    sends = {
        name.removeprefix("net.sent."): count
        for name, count in snapshot["counters"].items()
        if name.startswith("net.sent.")
    }
    print(f"messages by type: {sends}")
    executed = snapshot["counters"]["replica.0.commands_executed"]
    delay = snapshot["histograms"]["replica.0.queue_delay"]
    print(
        f"replica 0: {executed} commands executed; request queue delay "
        f"count={delay['count']} mean={delay['mean']:.2f} "
        f"p50={delay['p50']} p99={delay['p99']}"
    )


def stop_two_tracing() -> None:
    print()
    print("=" * 72)
    print("2. causal tracing: who caused what")
    print("=" * 72)
    tracer = CausalTracer(capacity=2048)
    run_scenario(get_scenario("smr-open-loop"), tracer=tracer)
    print(f"{tracer.emitted} events emitted, {tracer.dropped} dropped")
    print("last 12 events (indent = causal depth):")
    print(tracer.render_timeline(limit=12))


def stop_three_monitor() -> None:
    print()
    print("=" * 72)
    print("3. the performance monitor vs a throttled leader")
    print("=" * 72)
    off = run_monitor_tail(severity=8.0, monitor_on=False)
    on = run_monitor_tail(severity=8.0, monitor_on=True)
    print("leader 0 honest but +8 delay on every message it sends;")
    print("pacemaker timeout 60 — it never fires.\n")
    for label, result in (("monitor off", off), ("monitor on ", on)):
        print(
            f"{label}: p50={result.latency.p50:5.1f} "
            f"p99={result.latency.p99:5.1f} duration={result.duration:5.1f} "
            f"demotions={result.demotions} view_floor={result.view_floor}"
        )
    assert on.latency.p99 < off.latency.p99
    print(
        "\nwith the monitor on, the replicas gathered 2f+1 signed demotion "
        "votes,\nrotated leadership to view "
        f"{on.view_floor} and pulled p99 from {off.latency.p99:.1f} "
        f"down to {on.latency.p99:.1f}."
    )


def main() -> None:
    stop_one_metrics()
    stop_two_tracing()
    stop_three_monitor()


if __name__ == "__main__":
    main()
