#!/usr/bin/env python3
"""Post-mortem tour: record a safety violation, then explain it.

The full debugging loop the flight recorder enables, in four stops:

1. **record** — seed the relaxed-fast-quorum bug (a protocol option the
   paper's n >= 5f-1 bound forbids), run it under a flight recorder, and
   dump the violating run as JSON lines.  The recorder is digest-safe:
   an unobserved run of the same scenario is byte-identical;
2. **timeline** — read the dump back and walk the causal timeline
   (sends, deliveries, certificates, decides, each with parent ids);
3. **explain** — compute the violation's minimal causal cut: the decide
   events that conflict, the certificates they formed from, and the
   vote deliveries inside those certificates — the bad certificate is
   *visible* in the cut;
4. **diff** — re-record the same scenario with the bug switched off and
   find the first divergence between the two runs.

Run me:

    PYTHONPATH=src python examples/postmortem_tour.py
"""

import tempfile
from pathlib import Path

from repro.obs import FlightRecorder
from repro.postmortem import (
    load_dump,
    render_diff,
    render_explanation,
    render_timeline,
)
from repro.scenarios import get_scenario
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import DelayRuleOn

#: Hide two honest acks from p3 so its relaxed fast quorum fills up
#: with the equivocating leader's vote instead.
STALL_MAJORITY_ACKS = (
    DelayRuleOn(
        at=0.0,
        name="stall-majority-acks",
        src=(1, 2),
        dst=(3,),
        payload_types=("Ack",),
        extra_delay=5.0,
    ),
)


def record(out_dir: Path) -> tuple:
    print("=" * 72)
    print("1. record: fast quorum relaxed by 1 under an equivocating leader")
    print("=" * 72)
    buggy = get_scenario("equivocating-leader").with_(
        faults=STALL_MAJORITY_ACKS,
        name="eq-buggy",
        protocol_options={"fast_quorum_delta": 1},
    )
    recorder = FlightRecorder()
    result = run_scenario(buggy, recorder=recorder)
    buggy_path = out_dir / "eq-buggy.jsonl"
    recorder.dump(str(buggy_path))
    print(f"outcome    : ok={result.ok}")
    print(f"violation  : {result.safety_violation}")
    print(f"dumped     : {buggy_path} ({recorder.emitted} events)")

    clean_recorder = FlightRecorder()
    clean_result = run_scenario(
        get_scenario("equivocating-leader"), recorder=clean_recorder
    )
    clean_path = out_dir / "eq-clean.jsonl"
    clean_recorder.dump(str(clean_path))
    unobserved = run_scenario(get_scenario("equivocating-leader"))
    assert clean_result.trace_digest == unobserved.trace_digest
    print(
        "recorder is digest-safe: observed clean run == unobserved run "
        f"({clean_result.trace_digest[:16]})"
    )
    return buggy_path, clean_path


def timeline(buggy_path: Path) -> None:
    print()
    print("=" * 72)
    print("2. timeline: the violating run, last 12 events")
    print("=" * 72)
    dump = load_dump(str(buggy_path))
    print(render_timeline(dump, limit=12))


def explain(buggy_path: Path) -> None:
    print()
    print("=" * 72)
    print("3. explain: the minimal causal cut behind the conflict")
    print("=" * 72)
    dump = load_dump(str(buggy_path))
    text, found = render_explanation(dump)
    assert found, "the explainer must find the recorded violation"
    print(text)


def diff(buggy_path: Path, clean_path: Path) -> None:
    print()
    print("=" * 72)
    print("4. diff: buggy run vs the same scenario without the bug")
    print("=" * 72)
    text, identical = render_diff(
        load_dump(str(clean_path)),
        load_dump(str(buggy_path)),
        "eq-clean",
        "eq-buggy",
    )
    assert not identical
    print(text)


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="postmortem-tour-") as tmp:
        out_dir = Path(tmp)
        buggy_path, clean_path = record(out_dir)
        timeline(buggy_path)
        explain(buggy_path)
        diff(buggy_path, clean_path)


if __name__ == "__main__":
    main()
