#!/usr/bin/env python3
"""Crash a durable replica mid-workload, recover it, verify the digests.

The durability subsystem (``repro.storage``) gives every SMR replica a
write-ahead log and periodic quorum-certified checkpoints.  This example
walks the whole recovery story by hand:

1. a 4-replica cluster serves a KV workload; replica 3 crashes partway
   through, and the other three keep committing (growing a lag);
2. replica 3 recovers **with its disk intact**: it restores the stable
   checkpoint, replays its WAL suffix, and fetches the lag tail from
   peers via the catchup protocol;
3. replica 3 crashes again, this time **losing its disk**: recovery
   starts from nothing and transfers everything — certified checkpoint
   plus decided suffix — from its peers;
4. after each rejoin, its application-state digest must equal a
   never-crashed replica's (the ``catchup-consistency`` oracle's check).

The same story runs as declarative scenarios (``durable-recovery``,
``lagging-replica-catchup``, ``byzantine-catchup-responder``) and as
experiment E17 (``python -m repro.experiments run E17``).
"""

from repro.analysis import format_table, run_catchup
from repro.scenarios import get_scenario, run_scenario


def manual_walkthrough() -> None:
    print("Crash / recover one replica, measured (disk retained vs lost):\n")
    rows = []
    for disk in ("retained", "lost"):
        result = run_catchup(
            backend="fbft", n=4, f=1,
            checkpoint_interval=4, warmup_requests=4, lag_requests=12,
            disk=disk,
        )
        rows.append(
            [
                disk, result.lag_slots, result.catchup_time,
                result.catchup_messages, result.catchup_bytes,
                result.stable_slot, result.wal_records,
                "EQUAL" if result.digests_equal else "DIVERGED",
            ]
        )
    print(
        format_table(
            ["disk", "lag slots", "catchup time", "msgs", "bytes",
             "stable slot", "wal records", "state digest"],
            rows,
        )
    )
    assert all(row[-1] == "EQUAL" for row in rows)


def scenario_walkthrough() -> None:
    print("\nThe same story as declarative scenarios with oracles:\n")
    for name in (
        "durable-recovery",
        "lagging-replica-catchup",
        "byzantine-catchup-responder",
    ):
        result = run_scenario(get_scenario(name))
        catchup = next(
            v for v in result.verdicts if v.name == "catchup-consistency"
        )
        print(f"  {name:<30} {'OK' if result.ok else 'FAIL'}  [{catchup}]")
        assert result.ok


def main() -> None:
    manual_walkthrough()
    scenario_walkthrough()
    print(
        "\nEvery recovered replica rebuilt the exact state of its peers — "
        "from its own disk when it had one, from the cluster when it did "
        "not, and despite a lying responder when one tried."
    )


if __name__ == "__main__":
    main()
