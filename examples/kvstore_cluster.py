#!/usr/bin/env python3
"""A replicated key-value store riding on fast Byzantine consensus.

The paper motivates consensus through state machine replication
(Section 1.1): agree on each next command and a group of processes acts
as one correct machine.  This example builds a 4-replica KV store
(f = 1, t = 1 — the minimal fast deployment), runs a workload through a
client, then crashes the leader mid-run and shows the cluster failing
over while keeping every replica's log identical.
"""

from repro import ProtocolConfig
from repro.crypto import KeyRegistry
from repro.sim import Cluster, SynchronousDelay
from repro.smr import KVStore, SMRClient, SMRReplica, fbft_instance_factory

N, F = 4, 1


def main() -> None:
    config = ProtocolConfig(n=N, f=F, t=1)
    registry = KeyRegistry.for_processes(range(N))
    factory = fbft_instance_factory(config, registry)
    replicas = [SMRReplica(pid, N, F, KVStore(), factory) for pid in range(N)]

    client = SMRClient(pid=N, replica_pids=range(N), f=F)
    client.load_workload(
        [
            ("set", "alice", 100),
            ("set", "bob", 50),
            ("get", "alice"),
            ("set", "alice", 75),   # the leader will crash around here
            ("get", "alice"),
            ("del", "bob"),
            ("get", "bob"),
        ]
    )

    cluster = Cluster(replicas + [client], delay_model=SynchronousDelay(1.0))
    cluster.start()
    # Crash the slot leader (replica 0) mid-workload.
    cluster.sim.schedule(14.0, replicas[0].crash)
    cluster.sim.run_until(lambda: client.all_completed, timeout=10_000)

    print("command results:")
    for outcome in client.outcomes.values():
        print(
            f"  {outcome.command!s:<22} -> {outcome.result!r:>6}  "
            f"(slot {outcome.slot}, latency {outcome.latency:.1f})"
        )

    live = replicas[1:]
    logs = {replica.log for replica in live}
    assert len(logs) == 1, "all live replicas hold the same log"
    print(f"\nreplica log ({len(live[0].log)} slots, identical on all live replicas):")
    for slot, command in live[0].log:
        print(f"  slot {slot}: {command}")
    print(f"\nfinal store state: {live[0].state_machine.snapshot()}")
    print("\nOK: leader crash mid-run; client saw every command complete.")


if __name__ == "__main__":
    main()
