"""Define a custom out-of-tree experiment and shard it over workers.

The registry's E1-E16 entries are not special: any
:class:`repro.experiments.ExperimentSpec` — yours included — runs
through the same parallel runner, digests, caching and formatting.
This example measures fbft common-case latency as a function of network
delay *variance* (something no canonical experiment covers): each grid
point runs a batch of seeded random-delay clusters, with the seeds
derived deterministically from the grid point itself, so the sharded run
is byte-identical to the serial one.

Run:

    PYTHONPATH=src python examples/experiment_grid.py
"""

from repro.analysis import build_protocol, format_table, repeat_latency
from repro.experiments import ExperimentSpec, TaskResult, grid, run_experiment
from repro.sim.network import RandomDelay


def latency_vs_variance(params, seed):
    """One grid point: mean latency at one (f, delay spread) setting."""
    f, spread, runs = params["f"], params["spread"], params["runs"]
    lo, hi = 1.0 - spread, 1.0 + spread
    stats = repeat_latency(
        lambda: build_protocol("fbft", f=f),
        runs=runs,
        # Mix the framework-derived seed in: distinct grid points sample
        # distinct delay sequences, yet every re-run (serial, parallel,
        # cached) sees the identical ones.
        delay_model_factory=lambda run: RandomDelay(lo, hi, seed=seed + run),
    )
    return TaskResult(
        rows=[
            (
                "main",
                [
                    f, spread, runs,
                    round(stats.mean, 3), round(stats.p95, 3),
                    round(stats.maximum, 3),
                ],
            )
        ]
    )


SPEC = ExperimentSpec(
    id="X1",
    name="latency-vs-variance",
    title="fbft common-case latency vs network delay variance",
    paper_ref="custom (out-of-tree example)",
    driver=latency_vs_variance,
    grid=grid(f=(1, 2), spread=(0.0, 0.25, 0.5, 0.9), runs=(12,)),
    quick_grid=grid(f=(1,), spread=(0.0, 0.5), runs=(6,)),
    columns={"main": ("f", "spread", "runs", "mean", "p95", "max")},
)


def main() -> int:
    parallel = run_experiment(SPEC, parallel=2)
    print(f"{SPEC.id} ({SPEC.name}): {SPEC.title}\n")
    print(format_table(list(SPEC.columns["main"]), parallel.rows("main")))
    print(
        f"\n{parallel.tasks_total} grid points over 2 workers, "
        f"grid digest {parallel.grid_digest[:16]}"
    )

    serial = run_experiment(SPEC, parallel=1)
    assert serial.grid_digest == parallel.grid_digest, "sharding changed rows!"
    print("serial re-run reproduced the digest — sharding is transparent")

    # The paper's fast path is two message delays; with delays in
    # [1-s, 1+s] the decision tracks the *slowest* of the two hops, so
    # the mean grows with the spread while staying under 2 * (1 + s).
    rows = parallel.rows("main")
    for f in (1, 2):
        means = [row[3] for row in rows if row[0] == f]
        assert means == sorted(means), "latency should grow with variance"
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
