#!/usr/bin/env python3
"""Quickstart: fast Byzantine consensus with just four processes.

The paper's headline: to tolerate one Byzantine fault with *optimal*
two-message-delay latency, you need only n = 5f - 1 = 4 processes —
previous fast protocols (FaB Paxos) needed 6.

This script runs the common case: process 0 is the first leader, proposes
its value, everyone acknowledges, and all four processes decide after
exactly two message delays.
"""

from repro import (
    Cluster,
    FastBFTProcess,
    KeyRegistry,
    ProtocolConfig,
    RoundSynchronousDelay,
    message_delays,
)


def main() -> None:
    # n = 4, f = 1 (t defaults to f): the minimal fast deployment.
    config = ProtocolConfig(n=4, f=1)
    print(f"configuration: {config.describe()}")

    registry = KeyRegistry.for_processes(config.process_ids)
    processes = [
        FastBFTProcess(pid, config, registry, input_value=f"value-from-p{pid}")
        for pid in config.process_ids
    ]

    # Lock-step rounds: every message takes exactly one DELTA, so the
    # decision time *is* the latency in message delays.
    cluster = Cluster(processes, delay_model=RoundSynchronousDelay(1.0))
    result = cluster.run_until_decided()

    print(f"decided value : {result.decision_value!r}")
    print(f"decision time : {result.decision_time} (simulated time units)")
    print(f"message delays: {message_delays(result.decision_time, 1.0)}")
    print(f"messages sent : {result.messages_sent}")
    print(f"breakdown     : {cluster.trace.messages_by_type()}")

    assert message_delays(result.decision_time, 1.0) == 2, "fast path is 2 steps"
    print("\nOK: all four processes decided in two message delays.")


if __name__ == "__main__":
    main()
