#!/usr/bin/env python3
"""Scenario tour: declarative fault injection against the paper's protocol.

Three stops:

1. a canonical library scenario (an equivocating leader, the paper's
   central misbehaviour) run through the invariant oracles;
2. a custom spec built inline — a healing partition plus a delay rule —
   showing the vocabulary the engine gives you;
3. a short fuzz campaign over random fault schedules.

Run:  PYTHONPATH=src python examples/scenario_tour.py
"""

from repro.scenarios import (
    DelaySpec,
    ScenarioSpec,
    get_scenario,
    run_fuzz,
    run_scenario,
)
from repro.scenarios.spec import DelayRuleOn, DelayRuleOff, PartitionHeal, PartitionStart


def main() -> None:
    print("=" * 64)
    print("1. canonical scenario: equivocating-leader")
    print("=" * 64)
    result = run_scenario(get_scenario("equivocating-leader"))
    print(result.summary())

    print()
    print("=" * 64)
    print("2. custom spec: partition that heals + stalled view changes")
    print("=" * 64)
    custom = ScenarioSpec(
        name="custom-demo",
        protocol="fbft",
        n=4, f=1,
        delay=DelaySpec(kind="synchronous"),
        faults=(
            PartitionStart(at=0.0, groups=((0, 1), (2, 3))),
            PartitionHeal(at=40.0),
            DelayRuleOn(at=0.0, name="slow-votes", payload_types=("Vote",),
                        extra_delay=3.0),
            DelayRuleOff(at=80.0, name="slow-votes"),
        ),
        timeout=2000.0,
        description="no quorum until the split heals at t = 40",
    )
    print(run_scenario(custom).summary())

    print()
    print("=" * 64)
    print("3. fuzz: 10 random survivable schedules, all oracles must pass")
    print("=" * 64)
    report = run_fuzz(seeds=10)
    print(report.summary())


if __name__ == "__main__":
    main()
