#!/usr/bin/env python3
"""The batched, pipelined SMR engine, before and after.

The seed engine decided one client command per slot, one slot at a time.
The replication engine packs up to ``batch_size`` commands into each
slot's :class:`~repro.smr.replica.Batch` and keeps ``pipeline_depth``
consensus instances in flight (execution stays strictly in slot order).
This example drives the identical closed-loop workload through both
configurations and prints the difference — same commands, same replies,
a fraction of the slots and the simulated time.
"""

from repro.analysis import format_table, run_smr_throughput

CONFIGS = [
    ("seed engine", dict(batch_size=1, pipeline_depth=1)),
    ("batched", dict(batch_size=8, pipeline_depth=1)),
    ("batched+pipelined", dict(batch_size=8, pipeline_depth=4)),
]


def main() -> None:
    rows = []
    results = {}
    for label, knobs in CONFIGS:
        result = run_smr_throughput(
            backend="fbft", n=4, f=1,
            clients=3, requests_per_client=10, window=10, **knobs,
        )
        results[label] = result
        rows.append(
            [
                label, result.batch_size, result.pipeline_depth,
                result.completed, result.slots_used, result.duration,
                round(result.ops_per_sec, 3),
                result.latency.p50, result.latency.p95,
            ]
        )
    print("30 KV commands, 3 closed-loop clients (window 10), n=4 f=1:\n")
    print(
        format_table(
            ["engine", "batch", "depth", "done", "slots", "time", "ops/t",
             "p50", "p95"],
            rows,
        )
    )
    speedup = (
        results["batched+pipelined"].ops_per_sec
        / results["seed engine"].ops_per_sec
    )
    print(f"\nbatching + pipelining sustains {speedup:.1f}x the seed throughput")
    print("(same client load, identical replica logs, strict slot-order execution)")


if __name__ == "__main__":
    main()
