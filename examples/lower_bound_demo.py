#!/usr/bin/env python3
"""Theorem 4.5, live: why n = 3f + 2t - 1 is tight.

Runs the paper's five-execution splice argument as an actual attack
against the real protocol implementation, at two system sizes:

* n = 3f + 2t - 2 (one process below the bound): the Byzantine leader of
  view 2 finds a vote subset under which the honest selection algorithm
  admits the conflicting value — two correct processes end up deciding
  differently;
* n = 3f + 2t - 1 (the bound): the *same* adversary finds no such
  subset — every admissible vote set pins the potentially-decided value
  and the system converges safely.

Also runs Lemma 4.4's influential-process search, which lands on the
first-view leader.
"""

from repro import FastBFTProcess, KeyRegistry, ProtocolConfig
from repro.core.quorums import min_processes_fast_bft
from repro.lowerbound import (
    find_influential_process,
    run_splice_attack,
)


def influential_demo() -> None:
    config = ProtocolConfig(n=4, f=1)
    registry = KeyRegistry.for_processes(config.process_ids)
    witness = find_influential_process(
        lambda pid, value: FastBFTProcess(pid, config, registry, value),
        n=4,
        t=1,
    )
    print("Lemma 4.4 — influential process search (n=4, t=1):")
    print(f"  influential process: p{witness.pid} (the view-1 leader)")
    print(f"  I0 = {witness.config0.inputs} with T0={witness.t0_set} "
          f"decides {witness.value0}")
    print(f"  I1 = {witness.config1.inputs} with T1={witness.t1_set} "
          f"decides {witness.value1}")
    assert witness.check()


def splice_demo(f: int, t: int) -> None:
    bound = min_processes_fast_bft(f, t)
    print(f"\nTheorem 4.5 — splice attack with f={f}, t={t} (bound: n={bound}):")
    below = run_splice_attack(f=f, t=t, n=bound - 1)
    label = "CONSISTENCY VIOLATED" if below.violated else "safe"
    print(f"  n={bound - 1}: {label}")
    if below.violated:
        deciders = [f"p{pid}={val!r}@{time}" for pid, val, time in below.fast_decisions]
        print(f"    fast deciders: {', '.join(deciders)}")
        print(f"    then: {below.detail}")
    at = run_splice_attack(f=f, t=t, n=bound)
    label = "CONSISTENCY VIOLATED" if at.violated else "safe"
    print(f"  n={bound}: {label} (converged on {at.final_value!r})")
    assert below.violated and at.safe


def main() -> None:
    influential_demo()
    splice_demo(f=2, t=2)  # vanilla protocol: 8 breaks, 9 = 5f - 1 holds
    splice_demo(f=3, t=2)  # generalized: 11 breaks, 12 = 3f + 2t - 1 holds
    print(
        "\nOK: the same adversary flips from harmless to fatal at exactly "
        "one process\nbelow the bound — 3f + 2t - 1 is tight, as the paper "
        "proves (and FaB Paxos's\nclaimed 3f + 2t + 1 was not the true bound)."
    )


if __name__ == "__main__":
    main()
