#!/usr/bin/env python3
"""Surviving an equivocating leader — the scenario behind Section 3.2.

A Byzantine leader of view 1 tells part of the cluster "x" and the rest
"y", and adds its own acknowledgment for "x" so that two correct
processes decide x on the fast path.  The remaining correct process saw
only "y" — the system must now converge on x, never y.

Watch the view-change machinery do exactly what the paper describes:
votes reach the new leader, the equivocation (two valid votes for the
same view) exposes the old leader as provably Byzantine, the selection
algorithm picks the potentially-decided value, certifiers counter-sign
it, and everyone decides x.
"""

from repro import ProtocolConfig
from repro.byzantine import EquivocatingLeader
from repro.core import FastBFTProcess, Propose, Vote
from repro.crypto import KeyRegistry
from repro.sim import Cluster, SynchronousDelay


def main() -> None:
    config = ProtocolConfig(n=4, f=1)
    registry = KeyRegistry.for_processes(config.process_ids)

    byzantine_leader = EquivocatingLeader(
        pid=0,
        registry=registry,
        config=config,
        view=1,
        assignments={1: "x", 2: "x", 3: "y"},  # the equivocation
        ack_value="x",
        ack_to=(1, 2),  # push x over the n - f = 3 ack line for p1, p2
        ack_time=1.0,
    )
    correct = [
        FastBFTProcess(pid, config, registry, input_value=f"input-{pid}")
        for pid in (1, 2, 3)
    ]
    cluster = Cluster([byzantine_leader] + correct,
                      delay_model=SynchronousDelay(1.0))
    result = cluster.run_until_decided(correct_pids=[1, 2, 3], timeout=500)

    print("decisions:")
    for pid in (1, 2, 3):
        decision = cluster.trace.decision_of(pid)
        print(f"  p{pid}: {decision.value!r} at time {decision.time}")

    fast = [d for d in cluster.trace.decisions if d.time <= 2.0]
    print(f"\nfast-path decisions (time <= 2): {[(d.pid, d.value) for d in fast]}")

    votes = [e for e in cluster.trace.sends if isinstance(e.payload, Vote)]
    reproposals = [
        e.payload for e in cluster.trace.sends
        if isinstance(e.payload, Propose) and e.payload.view > 1
    ]
    print(f"view-change votes sent: {len(votes)}")
    if reproposals:
        p = reproposals[0]
        print(
            f"view {p.view} proposal: value {p.value!r} with a progress "
            f"certificate of {len(p.cert.signatures)} signatures (= f + 1)"
        )

    value = cluster.trace.check_agreement([1, 2, 3])
    assert value == "x", "the potentially-decided value must win"
    print(f"\nOK: consistency held — everyone converged on {value!r}.")


if __name__ == "__main__":
    main()
