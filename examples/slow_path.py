#!/usr/bin/env python3
"""The generalized protocol's two speeds (Figure 5, Appendix A).

Deployment: n = 7 processes, tolerating f = 2 Byzantine faults, fast
threshold t = 1 (so n = 3f + 2t − 1).  Three runs:

* no faults        -> fast path, 2 message delays (n − t = 6 acks);
* 1 fault  (= t)   -> still the fast path, 2 delays;
* 2 faults (> t)   -> the slow path: every ack travels with a signature,
  ceil((n+f+1)/2) = 5 of them form a commit certificate, certificates
  are broadcast in Commit messages, and 5 Commits decide — 3 delays.

This also showcases the paper's "first of its kind" configuration:
n = 3f + 1 = 4 with t = 1 stays fast under one Byzantine fault at
optimal resilience.
"""

from repro import GeneralizedFBFTProcess, KeyRegistry, ProtocolConfig
from repro.byzantine import SilentProcess
from repro.sim import Cluster, RoundSynchronousDelay, message_delays


def run(n, f, t, faults):
    config = ProtocolConfig(n=n, f=f, t=t)
    registry = KeyRegistry.for_processes(config.process_ids)
    processes = []
    for pid in config.process_ids:
        if pid >= n - faults:
            processes.append(SilentProcess(pid))
        else:
            processes.append(
                GeneralizedFBFTProcess(pid, config, registry, "value")
            )
    cluster = Cluster(processes, delay_model=RoundSynchronousDelay(1.0))
    correct = range(n - faults)
    result = cluster.run_until_decided(correct_pids=correct, timeout=100)
    kinds = cluster.trace.messages_by_type()
    return message_delays(result.decision_time, 1.0), kinds


def main() -> None:
    print("Figure 5 configuration: n=7, f=2, t=1\n")
    for faults in (0, 1, 2):
        delays, kinds = run(7, 2, 1, faults)
        path = "fast" if delays == 2 else "slow"
        commits = kinds.get("Commit", 0)
        print(
            f"  {faults} fault(s): decided after {delays} message delays "
            f"({path} path; {commits} Commit messages)"
        )

    print("\nOptimal resilience, fast under one Byzantine fault: n=4, f=1, t=1")
    delays, _ = run(4, 1, 1, 1)
    print(f"  1 fault: decided after {delays} message delays")
    print(
        "\nReading: the crossover between the 2-delay fast path and the\n"
        "3-delay slow path sits exactly at t, as Appendix A claims."
    )


if __name__ == "__main__":
    main()
