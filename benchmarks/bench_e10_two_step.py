"""E10 — The t-two-step property (Section 4.1) checked empirically.

The lower bound applies to protocols that are *t-two-step*: for every
size-t fault set T there is a T-faulty two-step execution.  This
benchmark verifies our protocol has the property (including when the
fault set contains the first leader — the subtlety Section 4.3
discusses), that PBFT does not, and that Lemma 4.4's influential-process
search returns a valid witness.
"""

from conftest import emit

from repro.analysis import format_table
from repro.baselines.pbft import PBFTConfig, PBFTProcess
from repro.core.config import ProtocolConfig
from repro.core.fastbft import FastBFTProcess
from repro.core.generalized import GeneralizedFBFTProcess
from repro.crypto.keys import KeyRegistry
from repro.lowerbound import check_t_two_step, find_influential_process


def fbft_factory(n, f, t):
    config = ProtocolConfig(n=n, f=f, t=t)
    registry = KeyRegistry.for_processes(config.process_ids)
    cls = FastBFTProcess if config.is_vanilla else GeneralizedFBFTProcess
    return lambda pid, value: cls(pid, config, registry, value)


def pbft_factory(n, f):
    config = PBFTConfig(n=n, f=f)
    return lambda pid, value: PBFTProcess(pid, config, value)


def two_step_sweep():
    rows = []
    cases = [
        ("FBFT", fbft_factory(4, 1, 1), 4, 1, None),
        ("FBFT", fbft_factory(9, 2, 2), 9, 2, 20),
        ("FBFT gen", fbft_factory(7, 2, 1), 7, 1, None),
        ("FBFT gen", fbft_factory(12, 3, 2), 12, 2, 20),
        ("PBFT", pbft_factory(4, 1), 4, 1, None),
        ("PBFT", pbft_factory(10, 3), 10, 1, 10),
    ]
    for name, factory, n, t, limit in cases:
        report = check_t_two_step(
            factory, n=n, t=t, protocol_name=name, max_fault_sets=limit
        )
        rows.append(
            [
                name, n, t, report.executions,
                report.two_step_executions,
                "YES" if report.is_t_two_step else "no",
            ]
        )
    return rows


def test_e10_two_step_property(benchmark):
    rows = benchmark(two_step_sweep)
    emit(
        "E10: t-two-step property over all size-t fault sets",
        format_table(
            ["protocol", "n", "t", "executions", "two-step", "t-two-step?"],
            rows,
        ),
    )
    for name, n, t, execs, ok, verdict in rows:
        if name.startswith("FBFT"):
            assert verdict == "YES", (name, n, t)
            assert ok == execs
        else:
            assert verdict == "no"
            assert ok == 0


def test_e10_influential_process_witness(benchmark):
    witness = benchmark(
        lambda: find_influential_process(
            lambda pid, value: None or fbft_factory(4, 1, 1)(pid, value),
            n=4,
            t=1,
        )
    )
    emit(
        "E10b: Lemma 4.4 witness",
        f"influential process = p{witness.pid}; "
        f"T0={witness.t0_set} decides {witness.value0}, "
        f"T1={witness.t1_set} decides {witness.value1}",
    )
    assert witness is not None
    assert witness.check()
    assert witness.pid == 0  # the view-1 leader
