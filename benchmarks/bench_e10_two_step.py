"""E10 — The t-two-step property (Section 4.1) checked empirically.

Thin wrapper over the ``E10`` registry entry: the per-protocol fault-set
sweeps live in ``repro.experiments``.  The lower bound applies to
protocols that are *t-two-step*: for every size-t fault set T there is a
T-faulty two-step execution.  Ours has the property (including when the
fault set contains the first leader — the Section 4.3 subtlety), PBFT
does not, and Lemma 4.4's influential-process search returns a valid
witness.
"""

from conftest import emit, sections

from repro.analysis import format_table


def test_e10_two_step_property(benchmark):
    rows = benchmark(lambda: sections("E10", section="two_step")["two_step"])
    emit(
        "E10: t-two-step property over all size-t fault sets",
        format_table(
            ["protocol", "n", "t", "executions", "two-step", "t-two-step?"],
            rows,
        ),
    )
    assert len(rows) == 6
    for name, n, t, execs, ok, verdict in rows:
        if name.startswith("FBFT"):
            assert verdict == "YES", (name, n, t)
            assert ok == execs
        else:
            assert verdict == "no"
            assert ok == 0


def test_e10_influential_process_witness(benchmark):
    rows = benchmark(lambda: sections("E10", section="witness")["witness"])
    (row,) = rows
    pid, t0, value0, t1, value1, valid = row
    emit(
        "E10b: Lemma 4.4 witness",
        f"influential process = p{pid}; T0={t0} decides {value0}, "
        f"T1={t1} decides {value1}",
    )
    assert valid
    assert pid == 0  # the view-1 leader
