"""Perf-regression gate: BENCH ratios vs the committed trajectory.

Wall-clock rates are machine-dependent, so the gate never compares them
across machines.  What it *does* compare are the dimensionless ratios a
``BENCH_*.json`` record carries per workload.  Each gated bench has its
own tracked ratios and committed baseline (see :data:`GATES`):

* ``E20_accel`` — ``pure_wins_speedup`` (optimized/reference inside the
  pure backend) and ``backend_speedup`` (compiled/pure on the optimized
  variant, present only when the extension was built);
* ``E21_obsoverhead`` — ``recorder_on_ratio`` (flight-recorder-on /
  recorder-off rate per workload; the broadcast storm is the <= 10%
  overhead headline).

Each current ratio must stay within a tolerance band of the committed
baseline (``benchmarks/baselines/BENCH_<name>.json``): a ratio is a
regression when it falls below ``baseline * (1 - tolerance)``.  Ratios
*above* baseline never fail — improvements move the trajectory and the
baseline should be refreshed (rerun the bench script and copy the
record over the baseline) when they hold.

Usage (what CI runs after the bench scripts' ``--quick`` passes)::

    PYTHONPATH=src python benchmarks/perf_gate.py --current BENCH_E20_accel.json
    PYTHONPATH=src python benchmarks/perf_gate.py --current BENCH_E21_obsoverhead.json

The gate (tracked ratios + default baseline) is selected by the current
record's ``bench`` field.  Exit status: 0 when every tracked ratio is
inside the band, 1 on any regression (or an unreadable record).
"""

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro.analysis import format_table
from repro.analysis.profiling import load_bench_json

REPO_ROOT = Path(__file__).resolve().parents[1]
BASELINE_DIR = REPO_ROOT / "benchmarks" / "baselines"

#: Fraction a ratio may fall below its baseline before the gate fails.
#: Sized for single-core CI runners: per-run ratio noise observed on the
#: E20 workloads is ~15-25%, so 35% flags real regressions (a dropped
#: memo, an unbound fast path) without tripping on scheduler jitter.
DEFAULT_TOLERANCE = 0.35

#: Gated bench records: tracked per-workload ratio fields plus the
#: committed baseline, keyed by the record's ``bench`` name.
GATES = {
    "E20_accel": {
        "ratios": ("pure_wins_speedup", "backend_speedup"),
        "baseline": BASELINE_DIR / "BENCH_E20_accel.json",
    },
    "E21_obsoverhead": {
        "ratios": ("recorder_on_ratio",),
        "baseline": BASELINE_DIR / "BENCH_E21_obsoverhead.json",
    },
}

#: Backwards-compatible aliases (the pre-E21 single-gate module API).
TRACKED_RATIOS = GATES["E20_accel"]["ratios"]
DEFAULT_BASELINE = GATES["E20_accel"]["baseline"]


def compare(current: dict, baseline: dict, tolerance: float, ratios) -> list:
    """All (workload, ratio, current, baseline, floor, ok) comparisons.

    Workloads or ratios missing from the *current* record (e.g. no
    compiled backend on this runner) are skipped; ratios missing from
    the *baseline* have no band to enforce and are skipped too.
    """
    rows = []
    for workload, base_entry in sorted(baseline["results"].items()):
        cur_entry = current["results"].get(workload)
        if cur_entry is None:
            continue
        for ratio in ratios:
            if ratio not in base_entry or ratio not in cur_entry:
                continue
            floor = base_entry[ratio] * (1.0 - tolerance)
            rows.append(
                (
                    workload,
                    ratio,
                    cur_entry[ratio],
                    base_entry[ratio],
                    floor,
                    cur_entry[ratio] >= floor,
                )
            )
    return rows


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--current", default="BENCH_E20_accel.json",
        help="record produced by this run (a bench script's --output)",
    )
    parser.add_argument(
        "--baseline", default="",
        help="committed trajectory record to gate against "
             "(default: the gate's baseline for the current record's bench)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="allowed fractional drop below baseline (default %(default)s)",
    )
    args = parser.parse_args(argv)

    current = load_bench_json(args.current)
    bench = current.get("bench")
    gate = GATES.get(bench)
    if gate is None:
        print(
            f"current record is {bench!r}; no gate defined "
            f"(gated benches: {', '.join(sorted(GATES))})",
            file=sys.stderr,
        )
        return 1
    baseline_path = args.baseline or str(gate["baseline"])
    baseline = load_bench_json(baseline_path)
    if baseline.get("bench") != bench:
        print(
            f"baseline record is {baseline.get('bench')!r}, not {bench!r}",
            file=sys.stderr,
        )
        return 1

    rows = compare(current, baseline, args.tolerance, gate["ratios"])
    if not rows:
        print("no tracked ratios in common: nothing to gate", file=sys.stderr)
        return 1
    print(
        f"perf gate [{bench}]: {args.current} vs {baseline_path} "
        f"(tolerance {args.tolerance:.0%})"
    )
    print(
        format_table(
            ["workload", "ratio", "current", "baseline", "floor", "status"],
            [
                [
                    workload,
                    ratio,
                    f"{cur:.2f}x",
                    f"{base:.2f}x",
                    f"{floor:.2f}x",
                    "ok" if ok else "REGRESSION",
                ]
                for workload, ratio, cur, base, floor, ok in rows
            ],
        )
    )
    failed = [row for row in rows if not row[5]]
    if failed:
        print(
            f"\n{len(failed)} ratio(s) regressed beyond the "
            f"{args.tolerance:.0%} band",
            file=sys.stderr,
        )
        return 1
    print(f"\nall {len(rows)} tracked ratios within the band")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
