"""Perf-regression gate: BENCH_E20 ratios vs the committed trajectory.

Wall-clock rates are machine-dependent, so the gate never compares them
across machines.  What it *does* compare are the dimensionless ratios a
``BENCH_E20_accel.json`` record carries per workload:

* ``pure_wins_speedup``  — optimized/reference inside the pure backend
  (the guaranteed pure-Python wins);
* ``backend_speedup``    — compiled/pure on the optimized variant
  (present only when the extension was built).

Each current ratio must stay within a tolerance band of the committed
baseline (``benchmarks/baselines/BENCH_E20_accel.json``): a ratio is a
regression when it falls below ``baseline * (1 - tolerance)``.  Ratios
*above* baseline never fail — improvements move the trajectory and the
baseline should be refreshed (rerun ``bench_e20_accel.py`` and copy the
record over the baseline) when they hold.

Usage (what CI runs after ``bench_e20_accel.py --quick``)::

    PYTHONPATH=src python benchmarks/perf_gate.py --current BENCH_E20_accel.json

Exit status: 0 when every tracked ratio is inside the band, 1 on any
regression (or an unreadable record).
"""

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro.analysis import format_table
from repro.analysis.profiling import load_bench_json

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "baselines" / "BENCH_E20_accel.json"

#: Fraction a ratio may fall below its baseline before the gate fails.
#: Sized for single-core CI runners: per-run ratio noise observed on the
#: E20 workloads is ~15-25%, so 35% flags real regressions (a dropped
#: memo, an unbound fast path) without tripping on scheduler jitter.
DEFAULT_TOLERANCE = 0.35

#: The ratio fields a BENCH_E20 record tracks per workload.
TRACKED_RATIOS = ("pure_wins_speedup", "backend_speedup")


def compare(current: dict, baseline: dict, tolerance: float) -> list:
    """All (workload, ratio, current, baseline, floor, ok) comparisons.

    Workloads or ratios missing from the *current* record (e.g. no
    compiled backend on this runner) are skipped; ratios missing from
    the *baseline* have no band to enforce and are skipped too.
    """
    rows = []
    for workload, base_entry in sorted(baseline["results"].items()):
        cur_entry = current["results"].get(workload)
        if cur_entry is None:
            continue
        for ratio in TRACKED_RATIOS:
            if ratio not in base_entry or ratio not in cur_entry:
                continue
            floor = base_entry[ratio] * (1.0 - tolerance)
            rows.append(
                (
                    workload,
                    ratio,
                    cur_entry[ratio],
                    base_entry[ratio],
                    floor,
                    cur_entry[ratio] >= floor,
                )
            )
    return rows


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--current", default="BENCH_E20_accel.json",
        help="record produced by this run (bench_e20_accel.py --output)",
    )
    parser.add_argument(
        "--baseline", default=str(DEFAULT_BASELINE),
        help="committed trajectory record to gate against",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="allowed fractional drop below baseline (default %(default)s)",
    )
    args = parser.parse_args(argv)

    current = load_bench_json(args.current)
    baseline = load_bench_json(args.baseline)
    for record, label in ((current, "current"), (baseline, "baseline")):
        if record.get("bench") != "E20_accel":
            print(
                f"{label} record is {record.get('bench')!r}, not 'E20_accel'",
                file=sys.stderr,
            )
            return 1

    rows = compare(current, baseline, args.tolerance)
    if not rows:
        print("no tracked ratios in common: nothing to gate", file=sys.stderr)
        return 1
    print(
        f"perf gate: {args.current} vs {args.baseline} "
        f"(tolerance {args.tolerance:.0%})"
    )
    print(
        format_table(
            ["workload", "ratio", "current", "baseline", "floor", "status"],
            [
                [
                    workload,
                    ratio,
                    f"{cur:.2f}x",
                    f"{base:.2f}x",
                    f"{floor:.2f}x",
                    "ok" if ok else "REGRESSION",
                ]
                for workload, ratio, cur, base, floor, ok in rows
            ],
        )
    )
    failed = [row for row in rows if not row[5]]
    if failed:
        print(
            f"\n{len(failed)} ratio(s) regressed beyond the "
            f"{args.tolerance:.0%} band",
            file=sys.stderr,
        )
        return 1
    print(f"\nall {len(rows)} tracked ratios within the band")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
