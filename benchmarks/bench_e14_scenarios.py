"""E14 — Scenario engine: the canonical library and the fuzzer as benchmarks.

Thin wrapper over the ``E14`` registry entry: one grid point per
canonical scenario (sharded across workers by the parallel runner) plus
seed-chunked fuzz campaigns, all through the
:func:`repro.scenarios.run_scenarios` batch API.
"""

from conftest import emit, sections

from repro.analysis import format_table


def test_e14_canonical_library(benchmark):
    rows = benchmark(lambda: sections("E14", section="library")["library"])
    emit(
        "E14: the canonical scenario library (all oracles must pass)",
        format_table(
            ["scenario", "protocol", "ok", "steps", "msgs", "bytes",
             "trace digest"],
            [row[:6] + [row[6][:16]] for row in rows],
        ),
    )
    for row in rows:
        assert row[2], f"{row[0]}: oracle failure"
    by_name = {row[0]: row for row in rows}
    # The library pins the headline latency claims (steps column).
    assert by_name["fast-path-clean"][3] == 2
    assert by_name["crash-quorum-edge"][3] == 2
    assert by_name["pbft-clean"][3] == 3
    assert by_name["fab-fast-path"][3] == 2
    assert by_name["slow-path-commit"][3] == 3


def test_e14_fuzz_throughput(benchmark):
    rows = benchmark(lambda: sections("E14", section="fuzz")["fuzz"])
    emit(
        "E14: fuzz campaign (seed chunks)",
        format_table(["start", "seeds", "ok", "failures"], rows),
    )
    assert sum(row[1] for row in rows) == 20
    for start, seeds, ok, failures in rows:
        assert ok and failures == 0, f"fuzz chunk at seed {start} failed"
