"""E14 — Scenario engine: the canonical library and the fuzzer as benchmarks.

Two questions: (1) what does each canonical fault mix cost the protocol
(latency in message delays, messages, bytes on the wire), and (2) how
many randomized scenarios per second can the engine chew through — the
number that bounds how hard CI can fuzz on every push.
"""

from conftest import emit

from repro.analysis import format_scenario_results
from repro.scenarios import SCENARIOS, run_fuzz, run_scenario


def run_library():
    return [run_scenario(spec) for spec in SCENARIOS.values()]


def test_e14_canonical_library(benchmark):
    results = benchmark(run_library)
    emit(
        "E14: the canonical scenario library (all oracles must pass)",
        format_scenario_results(results),
    )
    for result in results:
        assert result.ok, f"{result.spec.name}: {result.failures}"
    by_name = {result.spec.name: result for result in results}
    # The library pins the headline latency claims.
    assert by_name["fast-path-clean"].steps == 2
    assert by_name["crash-quorum-edge"].steps == 2
    assert by_name["pbft-clean"].steps == 3
    assert by_name["fab-fast-path"].steps == 2
    assert by_name["slow-path-commit"].steps == 3


def test_e14_fuzz_throughput(benchmark):
    report = benchmark(lambda: run_fuzz(seeds=20, shrink=False))
    emit("E14: fuzz campaign", report.summary())
    assert report.ok, report.summary()
    assert report.seeds_run == 20
